#!/usr/bin/env python3
"""Customising the ULMT per application (the paper's Section 5.2).

The central flexibility argument for software prefetching: the same memory
processor runs a *different* algorithm for each application.  This example
reproduces the paper's three Table 5 customisations and then goes one step
further, building a bespoke composition through the public
``build_algorithm`` spec language:

* ``"repl@levels=4"``      — deeper far-ahead prefetching for MST/Mcf;
* ``"seq1+repl"`` verbose  — stream-assisted prefetching for CG;
* ``"seq4+repl@succ=4"``   — your own combination, one line of code.

Usage::

    python examples/custom_prefetcher.py [scale]
"""

import sys

from repro import SystemConfig, run_simulation
from repro.params import CONVEN4_PARAMS


def evaluate(app: str, label: str, config, scale: float,
             baseline_time: int) -> None:
    result = run_simulation(app, config, scale=scale)
    speedup = baseline_time / result.execution_time
    print(f"  {label:30s} speedup {speedup:5.2f}  "
          f"coverage {result.coverage():4.2f}")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4

    for app in ("mcf", "mst"):
        print(f"\n=== {app} ===")
        baseline = run_simulation(app, "nopref", scale=scale)
        evaluate(app, "repl (default, 3 levels)", "repl", scale,
                 baseline.execution_time)
        # Table 5: prefetch one more level of successors.
        deeper = SystemConfig(name="repl4", ulmt_algorithm="repl@levels=4",
                              conven=CONVEN4_PARAMS)
        evaluate(app, "repl@levels=4 + conven4", deeper, scale,
                 baseline.execution_time)
        # A user experiment: wider successor lists instead of more levels.
        wider = SystemConfig(name="repl-wide", ulmt_algorithm="repl@succ=4")
        evaluate(app, "repl@succ=4 (wider rows)", wider, scale,
                 baseline.execution_time)

    print("\n=== cg ===")
    baseline = run_simulation("cg", "nopref", scale=scale)
    evaluate("cg", "conven4 only", "conven4", scale,
             baseline.execution_time)
    evaluate("cg", "conven4+repl (non-verbose)", "conven4+repl", scale,
             baseline.execution_time)
    # Table 5: let the ULMT watch the processor prefetches (Verbose) and
    # front a single-stream sequential prefetcher before Replicated.
    custom = SystemConfig(name="cg-custom", ulmt_algorithm="seq1+repl",
                          conven=CONVEN4_PARAMS, verbose=True)
    evaluate("cg", "seq1+repl, verbose + conven4", custom, scale,
             baseline.execution_time)


if __name__ == "__main__":
    main()
