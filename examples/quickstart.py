#!/usr/bin/env python3
"""Quickstart: simulate one application with and without ULMT prefetching.

Runs Mcf (the paper's flagship irregular workload) under four
configurations and prints the execution-time breakdown and speedups —
a miniature Figure 7 column.

Usage::

    python examples/quickstart.py [scale]

``scale`` defaults to 0.4 (seconds of wall clock); use 1.0 for the
full-size workload.
"""

import sys

from repro import run_simulation

APP = "mcf"
CONFIGS = ["nopref", "conven4", "base", "repl", "conven4+repl"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4

    print(f"Simulating {APP!r} at scale {scale} ...\n")
    baseline = run_simulation(APP, "nopref", scale=scale)
    base_time = baseline.execution_time

    header = (f"{'config':>14s} {'cycles':>12s} {'speedup':>8s} "
              f"{'busy':>6s} {'uptoL2':>7s} {'beyondL2':>9s} {'coverage':>9s}")
    print(header)
    print("-" * len(header))
    for config in CONFIGS:
        result = (baseline if config == "nopref"
                  else run_simulation(APP, config, scale=scale))
        bd = result.normalized_breakdown(base_time)
        print(f"{config:>14s} {result.execution_time:12,d} "
              f"{base_time / result.execution_time:8.2f} "
              f"{bd['busy']:6.2f} {bd['uptol2']:7.2f} {bd['beyondl2']:9.2f} "
              f"{result.coverage():9.2f}")

    repl = run_simulation(APP, "repl", scale=scale)
    timing = repl.ulmt_timing
    print(f"\nULMT (Replicated): response {timing.avg_response:.0f} cycles, "
          f"occupancy {timing.avg_occupancy:.0f} cycles, "
          f"IPC {timing.ipc:.2f}")
    print(f"Bus utilisation: {baseline.bus_utilization():.0%} (NoPref) -> "
          f"{repl.bus_utilization():.0%} (Repl), of which "
          f"{repl.bus_prefetch_utilization():.0%} is prefetch traffic")


if __name__ == "__main__":
    main()
