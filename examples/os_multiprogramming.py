#!/usr/bin/env python3
"""Multiprogramming with per-application ULMTs (the paper's Section 3.4).

    "A better approach is to associate a different ULMT, with its own
    table, to each application.  This eliminates interference in the
    tables.  In addition, it enables the customization of each ULMT to
    its own application."

This example runs an OS-level scenario on one memory processor:

1. three applications register (each picking up its Table 5 customisation
   automatically — CG gets Seq1+Repl in Verbose mode, Mcf gets
   Repl-with-4-levels, Tree gets plain Repl);
2. the scheduler round-robins them, switching the active ULMT with each
   application (transient state resets, the in-memory tables survive);
3. the VM subsystem re-maps one of Mcf's pages and the ULMT relocates the
   affected correlation-table rows;
4. the aggregate table memory is reported (the paper's "8 applications
   need ~32 MB" arithmetic).

Usage::

    python examples/os_multiprogramming.py
"""

from repro.core.os_support import UlmtRegistry
from repro.memsys.controller import MemoryController
from repro.analysis import collect_miss_stream


def main() -> None:
    controller = MemoryController()
    registry = UlmtRegistry(controller)

    apps = ("cg", "mcf", "tree")
    for app in apps:
        entry = registry.register(app)
        print(f"registered {app:5s} -> algorithm {entry.ulmt.algorithm.name!r}"
              f"{' (verbose)' if entry.ulmt.verbose else ''}")

    # Capture a slice of each application's miss stream once.  Each
    # scheduling round re-delivers the same slice — the application is in
    # a loop nest, re-touching the same working set every quantum.
    print("\ncollecting miss streams (NoPref runs, scaled down)...")
    streams = {app: collect_miss_stream(app, scale=0.2)[-1500:]
               for app in apps}

    # Round-robin scheduling: each quantum delivers the active
    # application's misses to its ULMT.
    now = 0
    for round_idx in range(3):
        for app in apps:
            registry.switch_to(app)
            for miss in streams[app]:
                registry.observe_miss(miss, now)
                now += 400

    print("\nafter 3 scheduling rounds:")
    for app in apps:
        entry = registry.get(app)
        stats = entry.ulmt.stats
        print(f"  {app:5s} observed={stats.misses_observed:5d} "
              f"prefetches={stats.prefetches_generated:5d} "
              f"context switches={entry.context_switches}")

    # A page of Mcf's data is re-mapped by the OS.
    sample_line = streams["mcf"][100]
    old_page = sample_line // 64
    moved = registry.remap_page("mcf", old_page=old_page,
                                new_page=old_page + 10_000)
    print(f"\npage re-map for mcf: page {old_page:#x} -> "
          f"{old_page + 10_000:#x}, {moved} table rows relocated")

    total_mb = registry.total_table_bytes() / (1024 * 1024)
    print(f"\naggregate correlation-table memory for {len(apps)} "
          f"applications: {total_mb:.1f} MB")
    print("(the paper budgets ~4 MB per application, a modest fraction "
          "of main memory)")


if __name__ == "__main__":
    main()
