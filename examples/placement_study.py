#!/usr/bin/env python3
"""Where should the memory processor live? (the paper's Figure 8)

Compares the two integration points of Figure 1: a core inside a DRAM chip
(fast, 21/56-cycle round trips, needs new DRAM designs) versus a core in
the North Bridge chip (65/100-cycle round trips plus a 25-cycle prefetch
request delay, but compatible with commodity DRAM).  The paper's
conclusion — reproduced here — is that Replicated prefetches far enough
ahead that the cheaper North Bridge placement loses very little.

Usage::

    python examples/placement_study.py [scale] [app ...]
"""

import sys

from repro import run_simulation


def main() -> None:
    args = sys.argv[1:]
    scale = float(args[0]) if args else 0.4
    apps = args[1:] or ["mcf", "mst", "tree"]

    header = (f"{'app':>8s} {'DRAM speedup':>13s} {'NB speedup':>11s} "
              f"{'DRAM resp':>10s} {'NB resp':>8s} {'DRAM occ':>9s} "
              f"{'NB occ':>7s}")
    print(header)
    print("-" * len(header))
    for app in apps:
        baseline = run_simulation(app, "nopref", scale=scale)
        dram = run_simulation(app, "repl", scale=scale)
        nb = run_simulation(app, "replMC", scale=scale)
        print(f"{app:>8s} "
              f"{baseline.execution_time / dram.execution_time:13.2f} "
              f"{baseline.execution_time / nb.execution_time:11.2f} "
              f"{dram.ulmt_timing.avg_response:10.0f} "
              f"{nb.ulmt_timing.avg_response:8.0f} "
              f"{dram.ulmt_timing.avg_occupancy:9.0f} "
              f"{nb.ulmt_timing.avg_occupancy:7.0f}")
    print("\nThe North Bridge core sees slower memory (its response time "
          "roughly doubles),\nbut far-ahead Replicated prefetching keeps "
          "the end speedup close — the paper's\nargument for the "
          "cost-effective North Bridge design.")


if __name__ == "__main__":
    main()
