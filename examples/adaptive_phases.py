#!/usr/bin/env python3
"""Adaptive algorithm selection across program phases (Section 3.3.3).

    "Another approach is to adaptively decide the algorithm on-the-fly, as
    the application executes.  In fact, this approach can also be used to
    execute different algorithms in different parts of one application."

This example builds a two-phase synthetic application — a streaming phase
(sequential misses) followed by a pointer-chasing phase (repeating
irregular misses) — and shows the adaptive ULMT switching from the
sequential algorithm to Replicated as the phase changes, tracking whichever
specialist fits.

Usage::

    python examples/adaptive_phases.py
"""

import random

from repro import Trace, build_algorithm, run_simulation
from repro.workloads.trace import MemRef


def two_phase_trace(lines_per_phase: int = 12000, rounds: int = 2) -> Trace:
    """Streaming sweep, then a repeated scattered chase, alternating."""
    rng = random.Random(42)
    chase_order = list(range(200_000, 200_000 + lines_per_phase))
    rng.shuffle(chase_order)
    refs = []
    for _ in range(rounds):
        # Phase A: sequential streaming (arrays).
        for line in range(0, lines_per_phase):
            refs.append(MemRef(line * 64, False, 4, False))
        # Phase B: pointer chase over scattered lines, same order each round.
        for line in chase_order:
            refs.append(MemRef(line * 64, False, 4, True))
    return Trace(refs, name="two-phase")


def offline_selection_demo() -> None:
    """Drive the adaptive algorithm directly on the two miss patterns."""
    adaptive = build_algorithm("adaptive:seq4|repl")
    adaptive.epoch = 128

    print("Phase A (streaming):")
    for miss in range(50_000, 51_000):
        adaptive.prefetch_step(miss)
        adaptive.learn(miss)
    print(f"  selected: {adaptive.selected.name}   "
          f"accuracies: { {k: round(v, 2) for k, v in adaptive.accuracies().items()} }")

    print("Phase B (repeating pointer chase):")
    rng = random.Random(7)
    chase = [rng.randrange(10**6) for _ in range(300)]
    for _ in range(8):
        for miss in chase:
            adaptive.prefetch_step(miss)
            adaptive.learn(miss)
    print(f"  selected: {adaptive.selected.name}   "
          f"switches so far: {adaptive.switches}")


def end_to_end_demo() -> None:
    """Full-system comparison on the two-phase trace."""
    trace = two_phase_trace()
    baseline = run_simulation(trace, "nopref")
    print(f"\nTwo-phase trace, {len(trace):,} references:")
    from repro import SystemConfig
    for label, config in (
            ("seq4 only", "seq4"),
            ("repl only", "repl"),
            ("adaptive seq4|repl",
             SystemConfig(name="adaptive",
                          ulmt_algorithm="adaptive:seq4|repl"))):
        result = run_simulation(trace, config)
        print(f"  {label:20s} speedup "
              f"{baseline.execution_time / result.execution_time:5.2f}  "
              f"coverage {result.coverage():4.2f}")


if __name__ == "__main__":
    offline_selection_demo()
    end_to_end_demo()
