#!/usr/bin/env python3
"""Using a ULMT for application profiling (the paper's Section 3.3.3).

Besides prefetching, a user-level memory thread can observe the L2 miss
stream and infer higher-level information: cache performance, access
patterns, hot pages, and page/set conflicts.  This example attaches a
:class:`ProfilingAlgorithm` (wrapping the Replicated prefetcher, so
prefetching continues to work) to three applications and prints what the
thread learned — including the miss-pattern characterisation that backs
the paper's Figure 5/6 discussion.

Usage::

    python examples/miss_profiling.py [scale]
"""

import sys

from repro import ProfilingAlgorithm, ReplicatedPrefetcher
from repro.analysis import collect_miss_stream, measure_predictability
from repro.sim.stats import MISS_DISTANCE_LABELS
from repro.sim.driver import run_simulation


def profile(app: str, scale: float) -> None:
    print(f"\n=== {app} ===")

    # 1. Capture the L2 miss stream a ULMT in observation mode would see.
    stream = collect_miss_stream(app, scale=scale)
    print(f"L2 misses observed by the ULMT: {len(stream):,}")

    # 2. Feed it to a profiling ULMT wrapping the Replicated prefetcher.
    profiler = ProfilingAlgorithm(inner=ReplicatedPrefetcher())
    for miss in stream:
        profiler.prefetch_step(miss)
        profiler.learn(miss)

    hot = profiler.hot_pages(3)
    print("Hottest pages (page, misses):",
          ", ".join(f"({p:#x}, {n})" for p, n in hot))
    conflicts = profiler.conflict_sets(threshold_fraction=0.005)
    print(f"L2 sets with conflict pressure: {len(conflicts)}")

    # 3. Characterise predictability (what Figure 5 reports).
    for predictor in ("seq4", "repl"):
        result = measure_predictability(stream, predictor)
        levels = "  ".join(f"L{k + 1}={v:.0%}"
                           for k, v in enumerate(result.levels))
        print(f"Predictability via {predictor:5s}: {levels}")

    # 4. Inter-miss timing (what Figure 6 reports).
    sim = run_simulation(app, "nopref", scale=scale)
    fractions = sim.miss_distance_fractions()
    timing = "  ".join(f"{label}={frac:.0%}" for label, frac
                       in zip(MISS_DISTANCE_LABELS, fractions))
    print(f"Inter-miss distances: {timing}")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    for app in ("mcf", "cg", "tree"):
        profile(app, scale)


if __name__ == "__main__":
    main()
