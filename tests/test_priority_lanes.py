"""Tests for the demand/prefetch priority lanes on the bus and channels.

The paper gives queue 3 (prefetches) lower priority than queue 1 (demand);
these tests pin the property that makes that matter: prefetch and
write-back traffic can never delay a demand fetch.
"""

import pytest

from repro.memsys.bus import Bus
from repro.memsys.controller import MemoryController
from repro.memsys.dram import Dram
from repro.params import MemoryParams


class TestBusLanes:
    def test_prefetch_never_delays_demand(self):
        bus = Bus()
        bus.schedule(0, 1000, "prefetch")     # long prefetch transfer
        end = bus.schedule(0, 32, "demand")
        assert end == 32                      # demand unaffected

    def test_demand_delays_prefetch(self):
        bus = Bus()
        bus.schedule(0, 100, "demand")
        end = bus.schedule(0, 32, "prefetch")
        assert end == 132                     # prefetch waits for demand

    def test_writebacks_share_low_lane(self):
        bus = Bus()
        bus.schedule(0, 100, "writeback")
        end = bus.schedule(0, 32, "prefetch")
        assert end == 132                     # serialized with write-back

    def test_demand_serializes_with_demand(self):
        bus = Bus()
        bus.schedule(0, 32, "demand")
        assert bus.schedule(0, 32, "demand") == 64

    def test_busy_until_is_overall_horizon(self):
        bus = Bus()
        bus.schedule(0, 10, "demand")
        bus.schedule(0, 100, "prefetch")
        assert bus.busy_until == 110


class TestChannelLanes:
    def test_prefetch_transfer_never_delays_demand(self):
        p = MemoryParams()
        dram = Dram(p)
        # Prefetch occupies the channel of line 0; a demand to another
        # row on the same channel must not queue behind its transfer.
        pf = dram.access(0, 0, low_priority=True)
        # Same channel (line-interleaved: lines 0, 2, 4... on channel 0),
        # different bank: use an address 2 rows away.
        other = p.row_bytes * p.num_channels
        demand = dram.access(other, 0, low_priority=False)
        solo = Dram(p).access(other, 0)
        assert demand.data_ready == solo.data_ready

    def test_demand_transfer_delays_prefetch(self):
        p = MemoryParams()
        dram = Dram(p)
        other = p.row_bytes * p.num_channels
        demand = dram.access(0, 0)
        pf = dram.access(other, 0, low_priority=True)
        solo = Dram(p).access(other, 0, low_priority=True)
        assert pf.data_ready > solo.data_ready

    def test_bank_occupancy_is_shared(self):
        """A started row activation cannot be preempted: same-bank demand
        after a prefetch does wait for the bank (not the channel)."""
        p = MemoryParams()
        dram = Dram(p)
        dram.access(0, 0, low_priority=True)
        demand = dram.access(128, 0)    # same bank, same row
        solo = Dram(p).access(128, 0)
        assert demand.data_ready > solo.data_ready


class TestControllerPriorities:
    def test_push_storm_does_not_slow_demand(self):
        ctrl = MemoryController()
        # Saturate with pushes to distinct rows.
        for k in range(20):
            ctrl.push_prefetch(k * 64, 0)
        # A demand fetch issued at the same instant still sees
        # contention-free service on its own lane; pick an address in a
        # different bank so the shared bank does not apply either.
        p = MemoryParams()
        far = 3 * p.row_bytes * p.num_channels   # bank 3, untouched
        completion = ctrl.demand_fetch(far, 0)
        solo = MemoryController().demand_fetch(far, 0)
        assert completion == solo

    def test_processor_prefetch_requests_use_low_lane(self):
        ctrl = MemoryController()
        ctrl.demand_fetch(0, 0, low_priority=True)
        assert ctrl.bus.stats.prefetch_cycles > 0
        assert ctrl.bus.stats.demand_cycles == 0
