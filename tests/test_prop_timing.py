"""Property-based tests on the timing model's accounting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.processor import (
    LEVEL_L2,
    LEVEL_MEM,
    AccessResult,
    MainProcessor,
)
from repro.params import MainProcessorParams
from repro.workloads.trace import MemRef, Trace


class ScriptedMemory:
    """Deterministic memory with per-address latencies and levels."""

    def __init__(self, latency_mod: int = 7) -> None:
        self.latency_mod = latency_mod

    def access(self, l2_line, is_write, now, is_prefetch):
        latency = 20 + (l2_line % self.latency_mod) * 40
        level = LEVEL_MEM if l2_line % 3 else LEVEL_L2
        return AccessResult(now + latency, level)


refs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 20),   # line number
        st.booleans(),                                 # is_write
        st.integers(min_value=0, max_value=30),        # comp cycles
        st.booleans(),                                 # dependent
    ),
    min_size=1, max_size=400,
)


def to_trace(raw) -> Trace:
    return Trace([MemRef(line * 32, w, c, d) for line, w, c, d in raw])


class TestAccountingIdentity:
    @given(refs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_time_equals_busy_plus_stalls(self, raw):
        """Every cycle of execution time is attributed to exactly one of
        Busy / UptoL2 / BeyondL2 — the identity Figure 7's stacked bars
        depend on."""
        proc = MainProcessor(ScriptedMemory())
        stats = proc.run(to_trace(raw))
        assert stats.finish_time == (stats.busy_cycles + stats.uptol2_stall
                                     + stats.beyondl2_stall)

    @given(refs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_time_is_monotone_nonnegative(self, raw):
        proc = MainProcessor(ScriptedMemory())
        stats = proc.run(to_trace(raw))
        assert stats.finish_time >= 0
        assert stats.busy_cycles == sum(c for _, _, c, _ in raw)
        assert stats.refs == len(raw)

    @given(refs_strategy)
    @settings(max_examples=30, deadline=None)
    def test_l1_accounting(self, raw):
        proc = MainProcessor(ScriptedMemory())
        stats = proc.run(to_trace(raw))
        assert (stats.l1_hits + stats.l1_misses + stats.l1_prefetch_hits
                == stats.refs)

    @given(refs_strategy, st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_smaller_rob_never_faster(self, raw, rob):
        """Shrinking the run-ahead window can only slow execution."""
        small = MainProcessor(ScriptedMemory(),
                              params=MainProcessorParams(rob_refs=rob))
        large = MainProcessor(ScriptedMemory(),
                              params=MainProcessorParams(rob_refs=rob + 8))
        t_small = small.run(to_trace(raw)).finish_time
        t_large = large.run(to_trace(raw)).finish_time
        assert t_small >= t_large

    @given(refs_strategy)
    @settings(max_examples=30, deadline=None)
    def test_dependent_version_never_faster(self, raw):
        """Marking every reference dependent can only add stalls."""
        proc_free = MainProcessor(ScriptedMemory())
        t_free = proc_free.run(to_trace(raw)).finish_time
        all_dep = [(line, w, c, True) for line, w, c, _ in raw]
        proc_dep = MainProcessor(ScriptedMemory())
        t_dep = proc_dep.run(to_trace(all_dep)).finish_time
        assert t_dep >= t_free
