"""Tests for the crash-safe executor (:mod:`repro.perf.resilient`).

The contract: results of surviving tasks are bit-identical to the fast
pool path; crashes and errors retry with the deterministic backoff
schedule; poison tasks quarantine as typed rows without sinking the run;
a journal replays finished tasks (including their attempt counts) so a
resumed run is byte-equivalent; a stop request drains instead of losing
work.  Worker failures are injected through ``REPRO_PROCESS_FAULTS``
(:mod:`repro.faults.process`), which only fires inside worker processes.
"""

import threading

import pytest

from repro.faults.process import PROCESS_FAULTS_ENV
from repro.perf.journal import RunJournal
from repro.perf.pool import run_tasks, sim_task
from repro.perf.resilient import (fault_label, run_tasks_resilient,
                                  task_digest)
from repro.perf.retry import RetryPolicy

SCALE = 0.02

TASKS = [
    sim_task("tree", "nopref", SCALE),
    sim_task("tree", "repl", SCALE),
]

#: Fast retries so injected-failure tests don't sleep for real.
FAST = RetryPolicy(max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.02,
                   jitter=0.0)


@pytest.fixture(scope="module")
def pool_results():
    return run_tasks(list(TASKS), jobs=1)


class TestParity:
    def test_matches_fast_pool_path(self, pool_results):
        run = run_tasks_resilient(list(TASKS), jobs=2)
        assert run.results == pool_results
        assert run.attempts == [1, 1]
        assert not run.failures
        assert not run.interrupted
        assert run.counters["completed"] == 2

    def test_warm_cache_short_circuits(self, pool_results, tmp_path):
        from repro.perf.cache import ResultCache
        cache = ResultCache(tmp_path / "cache")
        run_tasks_resilient(list(TASKS), cache=cache)
        warm = run_tasks_resilient(list(TASKS), cache=cache)
        assert warm.results == pool_results
        assert warm.counters["cache_hits"] == 2
        assert warm.attempts == [0, 0]


class TestFaultHandling:
    def test_crash_is_retried_to_success(self, pool_results, monkeypatch):
        label = fault_label(TASKS[0])
        monkeypatch.setenv(PROCESS_FAULTS_ENV, f"{label}@1=kill")
        run = run_tasks_resilient(list(TASKS), policy=FAST)
        assert run.results == pool_results
        assert run.attempts[0] == 2
        assert run.counters["crashes"] == 1
        assert run.counters["retries"] == 1
        assert not run.failures

    def test_poison_task_is_quarantined(self, pool_results, monkeypatch,
                                        capsys):
        label = fault_label(TASKS[0])
        monkeypatch.setenv(PROCESS_FAULTS_ENV, f"{label}@*=raise")
        run = run_tasks_resilient(list(TASKS), policy=FAST)
        # The poison task fails terminally; its sibling still completes.
        assert run.results[0] is None
        assert run.results[1] == pool_results[1]
        assert [f.index for f in run.failures] == [0]
        assert run.failures[0].kind == "error"
        assert run.failures[0].attempts == FAST.max_attempts
        assert run.counters["quarantined"] == 1
        assert "QUARANTINED" in capsys.readouterr().err

    def test_hung_task_times_out(self, monkeypatch):
        label = fault_label(TASKS[0])
        monkeypatch.setenv(PROCESS_FAULTS_ENV, f"{label}@*=sleep:30")
        policy = RetryPolicy(max_attempts=1, timeout_s=0.5)
        run = run_tasks_resilient([TASKS[0]], policy=policy)
        assert run.results == [None]
        assert run.failures[0].kind == "timeout"
        assert run.counters["timeouts"] == 1


class TestJournalResume:
    def test_resume_replays_results_and_attempts(self, pool_results,
                                                 tmp_path, monkeypatch):
        journal = RunJournal(tmp_path / "journal.jsonl")
        label = fault_label(TASKS[0])
        monkeypatch.setenv(PROCESS_FAULTS_ENV, f"{label}@1=exit")
        first = run_tasks_resilient(list(TASKS), policy=FAST,
                                    journal=journal)
        monkeypatch.delenv(PROCESS_FAULTS_ENV)
        assert first.results == pool_results

        resumed = run_tasks_resilient(list(TASKS), journal=journal)
        assert resumed.results == pool_results
        assert resumed.counters["resumed"] == 2
        assert resumed.counters["completed"] == 0
        # Attempt counts come from the journal, not from this run, so a
        # downstream run table is byte-identical either way.
        assert resumed.attempts == first.attempts
        assert resumed.attempts[0] == 2

    def test_torn_tail_only_loses_the_torn_task(self, pool_results,
                                                tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        run_tasks_resilient(list(TASKS), journal=journal)
        lines = journal.path.read_text().splitlines(keepends=True)
        # Keep the first finish, tear the second mid-line (SIGKILL shape).
        finishes = [line for line in lines if '"finish"' in line]
        with open(journal.path, "w") as fh:
            fh.write(finishes[0])
            fh.write(finishes[1][:len(finishes[1]) // 2])
        resumed = run_tasks_resilient(list(TASKS), journal=journal)
        assert resumed.results == pool_results
        assert resumed.counters["resumed"] == 1
        assert resumed.counters["completed"] == 1


class TestGracefulShutdown:
    def test_preset_stop_event_runs_nothing(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        stop = threading.Event()
        stop.set()
        run = run_tasks_resilient(list(TASKS), journal=journal,
                                  stop_event=stop, drain_s=0.1)
        assert run.interrupted
        assert run.results == [None, None]
        assert run.counters["completed"] == 0
        events = [r["event"] for r in journal.load()]
        assert events[-1] == "shutdown"


class TestIdentity:
    def test_digest_matches_cache_identity(self):
        from repro.perf.cache import fingerprint
        from repro.perf.pool import task_cache_key
        task = TASKS[0]
        assert task_digest(task) == fingerprint(task.kind,
                                                task_cache_key(task))

    def test_fault_label_distinguishes_repetitions(self):
        bare = sim_task("tree", "repl", SCALE)
        seeded = sim_task("tree", "repl", SCALE, seed=3)
        assert fault_label(bare) == "tree/repl"
        assert fault_label(seeded) == "tree/repl#3"
