"""Tests for the nine workload trace generators."""

import pytest

from repro.workloads import APP_ORDER, get_trace, list_workloads, workload_info
from repro.workloads.heap import Heap, array_index_addr, strided_addrs
from repro.workloads.trace import MemRef, Trace, TraceBuilder

SMALL = 0.05


class TestTraceBuilder:
    def test_compute_accumulates_until_next_ref(self):
        tb = TraceBuilder()
        tb.compute(3)
        tb.compute(4)
        tb.load(100)
        tb.store(200)
        trace = tb.build("t")
        assert trace[0] == MemRef(100, False, 7, False)
        assert trace[1] == MemRef(200, True, 0, False)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder().compute(-1)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder().load(-5)

    def test_trace_stats(self):
        tb = TraceBuilder()
        tb.load(0)
        tb.store(64, dependent=True)
        tb.compute(10)
        tb.load(128, dependent=True)
        t = tb.build()
        assert t.num_loads == 2
        assert t.num_stores == 1
        assert t.num_dependent == 2
        assert t.total_comp_cycles == 10
        assert t.footprint_lines(64) == 3
        assert t.line_addresses(64) == [0, 1, 2]


class TestHeap:
    def test_alignment(self):
        h = Heap()
        addr = h.alloc(10, align=64)
        assert addr % 64 == 0

    def test_bump_allocation_disjoint(self):
        h = Heap()
        a = h.alloc(100)
        b = h.alloc(100)
        assert b >= a + 100

    def test_shuffled_nodes_are_permutation(self):
        import random
        h = Heap()
        addrs = h.alloc_nodes(50, 64, random.Random(1))
        assert len(set(addrs)) == 50

    def test_validation(self):
        h = Heap()
        with pytest.raises(ValueError):
            h.alloc(0)
        with pytest.raises(ValueError):
            h.alloc(8, align=3)

    def test_helpers(self):
        assert array_index_addr(1000, 3, 8) == 1024
        assert list(strided_addrs(0, 3, 64)) == [0, 64, 128]


class TestRegistry:
    def test_nine_applications(self):
        assert len(list_workloads()) == 9
        assert tuple(list_workloads()) == APP_ORDER

    def test_metadata_present(self):
        for name in list_workloads():
            info = workload_info(name)
            assert info.suite and info.problem and info.input_desc

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_info("doom")

    def test_trace_caching(self):
        t1 = get_trace("tree", scale=SMALL)
        t2 = get_trace("tree", scale=SMALL)
        assert t1 is t2

    def test_determinism(self):
        t1 = get_trace("mcf", scale=SMALL, seed=3, cache=False)
        t2 = get_trace("mcf", scale=SMALL, seed=3, cache=False)
        assert t1.refs == t2.refs


@pytest.mark.parametrize("app", APP_ORDER)
class TestEveryWorkload:
    def test_generates_nonempty_trace(self, app):
        trace = get_trace(app, scale=SMALL)
        assert len(trace) > 500
        assert trace.name == app

    def test_addresses_positive_and_varied(self, app):
        trace = get_trace(app, scale=SMALL)
        assert all(r.addr > 0 for r in trace)
        assert trace.footprint_lines() > 50

    def test_has_compute_cycles(self, app):
        trace = get_trace(app, scale=SMALL)
        assert trace.total_comp_cycles > 0


class TestPatternCharacter:
    """Miss-pattern character claims the paper's Figure 5 depends on."""

    def test_pointer_workloads_have_dependent_refs(self):
        for app in ("mcf", "mst", "tree", "parser"):
            trace = get_trace(app, scale=SMALL)
            assert trace.num_dependent / len(trace) > 0.2, app

    def test_cg_is_mostly_independent(self):
        trace = get_trace("cg", scale=SMALL)
        assert trace.num_dependent == 0

    def test_repeating_structure_in_mcf(self):
        """Mcf walks the same thread order each iteration: the same line
        must appear in multiple well-separated trace positions."""
        trace = get_trace("mcf", scale=SMALL)
        lines = trace.line_addresses()
        first_line = lines[5]
        occurrences = [i for i, l in enumerate(lines) if l == first_line]
        assert len(occurrences) >= 2
