"""Tests for the retry/backoff/time-budget primitives (:mod:`repro.perf.retry`).

The contract: backoff schedules are a pure function of (policy, task
digest, attempt) — deterministic across calls and processes, independent
of every other RNG stream in the repo — and :func:`time_budget` bounds a
block's wall-clock time on both its SIGALRM and its timer-thread path.
"""

import random
import time

import pytest

from repro.perf.retry import (FAILURE_KINDS, RetryPolicy, TaskFailure,
                              TimeBudgetExceeded, backoff_delay,
                              backoff_schedule, time_budget)

POLICY = RetryPolicy(max_attempts=4, backoff_base_s=0.5, backoff_cap_s=30.0,
                     jitter=0.5)


class TestBackoffDeterminism:
    def test_same_inputs_same_delay(self):
        assert backoff_delay(POLICY, "digest-a", 1) \
            == backoff_delay(POLICY, "digest-a", 1)
        assert backoff_schedule(POLICY, "digest-a") \
            == backoff_schedule(POLICY, "digest-a")

    def test_distinct_tasks_get_distinct_jitter(self):
        assert backoff_delay(POLICY, "digest-a", 1) \
            != backoff_delay(POLICY, "digest-b", 1)

    def test_schedule_is_one_delay_per_possible_retry(self):
        assert len(backoff_schedule(POLICY, "d")) == POLICY.max_attempts - 1

    def test_exponential_envelope_with_cap(self):
        policy = RetryPolicy(max_attempts=12, backoff_base_s=1.0,
                             backoff_cap_s=8.0, jitter=0.25)
        for attempt, delay in enumerate(backoff_schedule(policy, "d"), 1):
            base = min(8.0, 1.0 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.25

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base_s=2.0, jitter=0.0)
        assert backoff_delay(policy, "d", 1) == 2.0
        assert backoff_delay(policy, "d", 2) == 4.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(POLICY, "d", 0)


class TestStreamIndependence:
    """Same rule as FaultInjector's per-kind streams: dedicated
    ``random.Random`` instances, never the process-global RNG."""

    def test_global_rng_untouched(self):
        random.seed(1234)
        expected = [random.random() for _ in range(4)]
        random.seed(1234)
        backoff_schedule(POLICY, "digest-a")
        backoff_schedule(POLICY, "digest-b")
        assert [random.random() for _ in range(4)] == expected

    def test_delays_independent_of_global_seed(self):
        random.seed(1)
        first = backoff_schedule(POLICY, "digest-a")
        random.seed(99999)
        assert backoff_schedule(POLICY, "digest-a") == first

    def test_per_attempt_streams_are_separate(self):
        # Jitter for attempt 2 must not be "the next draw" of attempt 1's
        # stream: each (digest, attempt) pair seeds its own Random.
        a1 = backoff_delay(POLICY, "d", 1) / 0.5 - 1.0
        a2 = backoff_delay(POLICY, "d", 2) / 1.0 - 1.0
        chained = random.Random("d:retry:1")
        chained.random()
        assert abs(a2 / POLICY.jitter - chained.random()) > 1e-12


class TestRetryPolicyValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_durations(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestTaskFailure:
    def test_round_trip(self):
        failure = TaskFailure(index=3, label="tree/repl", kind="crash",
                              attempts=2, message="exit code -9")
        assert TaskFailure.from_dict(failure.to_dict()) == failure

    def test_unknown_kind_rejected(self):
        data = TaskFailure(0, "x", FAILURE_KINDS[0], 1, "m").to_dict()
        data["kind"] = "mystery"
        with pytest.raises(ValueError):
            TaskFailure.from_dict(data)


class TestTimeBudget:
    def test_sigalrm_path_raises(self):
        with pytest.raises(TimeBudgetExceeded):
            with time_budget(0.05):
                time.sleep(5)

    def test_timer_thread_path_raises(self):
        with pytest.raises(TimeBudgetExceeded):
            with time_budget(0.05, use_sigalrm=False):
                time.sleep(5)

    def test_fast_block_passes_both_paths(self):
        with time_budget(5.0):
            pass
        with time_budget(5.0, use_sigalrm=False):
            pass

    def test_zero_disables(self):
        with time_budget(0.0):
            time.sleep(0.01)

    def test_genuine_interrupt_propagates_on_timer_path(self):
        # A KeyboardInterrupt the timer did NOT fire must come through
        # unchanged (Ctrl-C beats the budget conversion).
        with pytest.raises(KeyboardInterrupt):
            with time_budget(60.0, use_sigalrm=False):
                raise KeyboardInterrupt
