"""Tests for the DASP-style memory-side pull prefetcher baseline."""

import pytest

from repro.memsys.controller import MemoryController
from repro.memsys.dasp import DaspEngine
from repro.sim.config import preset
from repro.sim.driver import run_simulation
from repro.sim.system import System
from repro.workloads.trace import MemRef, Trace


def stream_trace(lines: int = 8000, comp: int = 20) -> Trace:
    """Independent streaming (bandwidth-bound once MLP saturates)."""
    return Trace([MemRef(i * 64, False, comp, False) for i in range(lines)],
                 name="stream")


def list_walk_trace(lines: int = 8000, comp: int = 8) -> Trace:
    """A linked list laid out sequentially: dependent but strided — the one
    irregular-looking pattern a stride engine *can* serve."""
    return Trace([MemRef(i * 64, False, comp, True) for i in range(lines)],
                 name="listwalk")


def chase_trace(lines: int = 12000, repeats: int = 3) -> Trace:
    import random
    rng = random.Random(2)
    order = list(range(lines))
    rng.shuffle(order)
    refs = [MemRef(line * 64, False, 4, True)
            for _ in range(repeats) for line in order]
    return Trace(refs, name="chase")


class TestDaspEngine:
    def test_stream_misses_hit_buffer(self):
        ctrl = MemoryController()
        dasp = DaspEngine(ctrl)
        t = 0
        for line in range(200):
            dasp.demand_fetch(line, t)
            t += 500
        assert dasp.stats.buffer_hits > 100
        assert dasp.stats.hit_rate > 0.5

    def test_buffer_hit_is_faster_than_dram(self):
        ctrl = MemoryController()
        dasp = DaspEngine(ctrl)
        t = 0
        latencies = []
        for line in range(40):
            completion = dasp.demand_fetch(line, t)
            latencies.append(completion - t)
            t += 10_000
        # Early misses pay the full round trip; buffered hits save the
        # bank + channel portion.
        assert min(latencies[10:]) < max(latencies[:3])

    def test_random_misses_never_hit(self):
        import random
        rng = random.Random(1)
        dasp = DaspEngine(MemoryController())
        t = 0
        for _ in range(300):
            dasp.demand_fetch(rng.randrange(10**6), t)
            t += 500
        assert dasp.stats.buffer_hits == 0

    def test_buffer_capacity_bounded(self):
        dasp = DaspEngine(MemoryController(), buffer_lines=8)
        t = 0
        for line in range(500):
            dasp.demand_fetch(line, t)
            t += 300
        assert len(dasp._buffer) <= 8


class TestDaspSystem:
    def test_preset_exists(self):
        assert preset("dasp").dasp

    def test_dasp_speeds_up_sequential_list_walk(self):
        """Dependent misses expose the full round trip; serving them from
        the North Bridge buffer saves the DRAM portion."""
        nopref = run_simulation(list_walk_trace(), "nopref")
        dasp = run_simulation(list_walk_trace(), "dasp")
        assert dasp.speedup_over(nopref) > 1.2

    def test_dasp_useless_on_irregular_but_push_ulmt_works(self):
        """The paper's core related-work point: hardwired stride engines
        have narrow scope; the ULMT covers irregular patterns too."""
        trace = chase_trace()
        nopref = run_simulation(trace, "nopref")
        dasp = run_simulation(trace, "dasp")
        repl = run_simulation(chase_trace(), "repl")
        assert abs(dasp.speedup_over(nopref) - 1.0) < 0.05
        assert repl.speedup_over(nopref) > 1.2

    def test_pull_saves_less_than_push(self):
        """Pull serves from the NB buffer (the processor still waits a bus
        round trip); push places lines in the L2 ahead of use — the paper's
        argument for push prefetching (Section 2.1)."""
        trace = list_walk_trace()
        nopref = run_simulation(trace, "nopref")
        dasp = run_simulation(trace, "dasp")
        seq_push = run_simulation(trace, "seq4")
        assert seq_push.speedup_over(nopref) >= dasp.speedup_over(nopref) - 0.05
