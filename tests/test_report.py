"""Tests for the EXPERIMENTS.md report renderer (synthetic data, no sims)."""

import json

import pytest

from repro.experiments.report import _md_table, render_markdown


def synthetic_data() -> dict:
    apps = ["cg", "mcf", "tree"]
    configs = ["conven4", "base", "chain", "repl", "conven4+repl", "custom"]
    return {
        "scale": 1.0,
        "generated": "2026-07-05",
        "table2": [{"app": a, "num_rows": 65536, "misses": 1000,
                    "mb": {"base": 1.25, "chain": 0.75, "repl": 1.75}}
                   for a in apps],
        "fig5": {
            "apps": {a: {p: [0.8, 0.7, 0.6] for p in
                         ("seq1", "seq4", "base", "chain", "repl",
                          "seq4+repl")} for a in apps},
            "averages": {p: [0.7, 0.6, 0.5] for p in
                         ("seq1", "seq4", "base", "chain", "repl",
                          "seq4+repl")},
        },
        "fig6": {"apps": {a: [0.1, 0.2, 0.6, 0.1] for a in apps},
                 "average": [0.1, 0.2, 0.6, 0.1]},
        "fig7": {
            "apps": {a: {c: {"speedup": 1.3, "busy": 0.2, "uptol2": 0.1,
                             "beyondl2": 0.5} for c in configs}
                     for a in apps},
            "avg_speedups": {c: 1.3 for c in configs},
        },
        "fig8": {"apps": {a: {"conven4+repl": 1.4, "conven4+replMC": 1.35}
                          for a in apps},
                 "avg": {"conven4+repl": 1.4, "conven4+replMC": 1.35}},
        "fig9": {c: {"avg-other-7": {"hits": 0.3, "delayed_hits": 0.1,
                                     "nonpref_misses": 0.6,
                                     "replaced": 0.2, "redundant": 0.2,
                                     "coverage": 0.4}}
                 for c in ("base", "chain", "repl")},
        "fig10": [{"config": c, "response": 70.0, "occupancy": 95.0,
                   "response_mem": 50.0, "occupancy_mem": 55.0, "ipc": 0.6}
                  for c in ("base", "chain", "repl", "replMC")],
        "fig11": [{"config": c, "utilization": 0.3, "prefetch_part": 0.1}
                  for c in ("nopref", "repl")],
        "validation": [
            {"source": "Fig 7", "statement": "claim A", "passed": True,
             "measured": "x=1"},
            {"source": "Fig 9", "statement": "claim B", "passed": False,
             "measured": "y=2"},
        ],
    }


class TestMdTable:
    def test_structure(self):
        lines = _md_table(["a", "b"], [["1", "2"]])
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestRenderMarkdown:
    def test_renders_all_sections(self):
        md = render_markdown(synthetic_data())
        for heading in ("# EXPERIMENTS", "## Table 2", "## Figure 5",
                        "## Figure 6", "## Figure 7", "## Figure 8",
                        "## Figure 9", "## Figure 10", "## Figure 11",
                        "## Shape validation", "## Known deviations"):
            assert heading in md, heading

    def test_validation_counts(self):
        md = render_markdown(synthetic_data())
        assert "**1/2 claims reproduced**" in md
        assert "PASS" in md and "FAIL" in md

    def test_paper_reference_numbers_present(self):
        md = render_markdown(synthetic_data())
        assert "1.32" in md   # paper Repl average
        assert "1.46" in md   # paper Conven4+Repl average
        assert "1.53" in md   # paper custom average

    def test_data_is_json_serialisable(self):
        json.dumps(synthetic_data())
