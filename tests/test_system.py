"""Integration tests: the full system end to end on small traces."""

import pytest

from repro.sim.config import PRESETS, SystemConfig, custom_config, preset
from repro.sim.driver import (
    arithmetic_mean,
    geometric_mean,
    run_matrix,
    run_simulation,
)
from repro.sim.stats import distance_bin
from repro.sim.system import System
from repro.workloads.trace import MemRef, Trace

SMALL = 0.05


def chase_trace(lines: int = 12000, repeats: int = 3) -> Trace:
    """A pointer-chase loop over scattered lines (footprint well beyond the
    512 KB L2), repeated identically: the ideal correlation-prefetching
    workload."""
    import random
    rng = random.Random(5)
    order = list(range(lines))
    rng.shuffle(order)
    refs = []
    for _ in range(repeats):
        for line in order:
            refs.append(MemRef(line * 64, False, 4, True))
    return Trace(refs, name="chase")


class TestPresets:
    def test_known_presets(self):
        for name in ("nopref", "conven4", "base", "chain", "repl",
                     "conven4+repl", "conven4+replMC"):
            assert preset(name).name == name

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("hyperspeed")

    def test_custom_config_resolves_table5(self):
        cfg = custom_config("cg")
        assert cfg.ulmt_algorithm == "seq1+repl"
        assert cfg.verbose
        assert custom_config("mcf").ulmt_algorithm == "repl@levels=4"
        # No Table 5 entry: fall back to conven4+repl.
        assert custom_config("gap").name == "conven4+repl"


class TestEndToEnd:
    def test_nopref_runs(self):
        result = run_simulation(chase_trace(), "nopref")
        assert result.execution_time > 0
        assert result.l2.nonpref_misses > 0
        assert result.ulmt is None

    def test_repl_speeds_up_pointer_chase(self):
        nopref = run_simulation(chase_trace(), "nopref")
        repl = run_simulation(chase_trace(), "repl")
        assert repl.speedup_over(nopref) > 1.2
        assert repl.coverage() > 0.3

    def test_algorithm_ordering_on_repeating_misses(self):
        """The paper's central qualitative claim: Repl >= Chain >= Base."""
        results = {cfg: run_simulation(chase_trace(), cfg)
                   for cfg in ("nopref", "base", "chain", "repl")}
        t = {k: v.execution_time for k, v in results.items()}
        assert t["repl"] <= t["chain"] * 1.05
        assert t["chain"] <= t["base"] * 1.10
        assert t["repl"] < t["nopref"]

    def test_prefetching_preserves_functionality(self):
        """Same trace, same demand reference count, with and without ULMT."""
        a = run_simulation(chase_trace(), "nopref")
        b = run_simulation(chase_trace(), "repl")
        assert a.processor.refs == b.processor.refs

    def test_nb_placement_slower_but_close(self):
        dram = run_simulation(chase_trace(), "repl")
        nb = run_simulation(chase_trace(), "replMC")
        assert nb.execution_time >= dram.execution_time
        # Figure 8: the impact of the placement is small.
        assert nb.execution_time < dram.execution_time * 1.3

    def test_verbose_flag_reaches_ulmt(self):
        cfg = SystemConfig(name="v", ulmt_algorithm="repl", verbose=True)
        system = System(cfg)
        assert system.memproc.ulmt.verbose

    def test_bus_utilization_grows_with_prefetching(self):
        nopref = run_simulation(chase_trace(), "nopref")
        repl = run_simulation(chase_trace(), "repl")
        assert repl.bus_utilization() > 0
        assert repl.bus_prefetch_utilization() > 0
        assert nopref.bus_prefetch_utilization() == 0.0

    def test_miss_distance_histogram_dependent_chase(self):
        """Dependent misses land in the [200, 280) round-trip bin."""
        result = run_simulation(chase_trace(), "nopref")
        fractions = result.miss_distance_fractions()
        assert fractions[2] > 0.5

    def test_ulmt_timing_within_budget(self):
        result = run_simulation(chase_trace(), "repl")
        assert result.ulmt_timing.avg_occupancy < 200
        assert 0 < result.ulmt_timing.avg_response <= result.ulmt_timing.avg_occupancy
        assert result.ulmt_timing.ipc > 0


class TestDriver:
    def test_run_by_name(self):
        result = run_simulation("tree", "nopref", scale=SMALL)
        assert result.workload == "tree"

    def test_run_matrix(self):
        results = run_matrix(["tree"], ["nopref", "repl"], scale=SMALL)
        assert set(results) == {("tree", "nopref"), ("tree", "repl")}

    def test_means(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert arithmetic_mean([1.0, 2.0]) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0])

    def test_distance_bins(self):
        assert distance_bin(0) == 0
        assert distance_bin(79) == 0
        assert distance_bin(80) == 1
        assert distance_bin(199) == 1
        assert distance_bin(200) == 2
        assert distance_bin(279) == 2
        assert distance_bin(280) == 3
        assert distance_bin(10**9) == 3


class TestNormalization:
    def test_breakdown_normalizes_to_baseline(self):
        nopref = run_simulation(chase_trace(), "nopref")
        repl = run_simulation(chase_trace(), "repl")
        bd = repl.normalized_breakdown(nopref.execution_time)
        assert sum(bd.values()) == pytest.approx(
            repl.execution_time / nopref.execution_time, rel=0.05)

    def test_miss_breakdown_categories(self):
        repl = run_simulation(chase_trace(), "repl")
        mb = repl.miss_breakdown()
        assert set(mb) == {"hits", "delayed_hits", "nonpref_misses",
                           "replaced", "redundant"}
        coverage = mb["hits"] + mb["delayed_hits"]
        assert coverage == pytest.approx(repl.coverage(), abs=1e-9)
