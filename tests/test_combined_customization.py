"""Tests for algorithm composition and the Table 5 customisation registry."""

import pytest

from repro.core.algorithms import BasePrefetcher, ReplicatedPrefetcher
from repro.core.combined import CombinedUlmtPrefetcher
from repro.core.customization import (
    CUSTOMIZATIONS,
    ProfilingAlgorithm,
    build_algorithm,
    customization_for,
)
from repro.core.sequential import SequentialUlmtPrefetcher


class TestCombined:
    def test_prefetches_concatenate_in_order(self):
        combined = build_algorithm("seq1+repl")
        # Train the sequential part with a stream and the repl part by
        # learning the same misses.  After miss 102 the stream has
        # prefetched up to line 108 (NumPref=6).
        for miss in (100, 101, 102):
            combined.prefetch_step(miss)
            combined.learn(miss)
        batch = combined.prefetch_step(103)
        # Sequential contribution comes first (low response time): the
        # consumption of line 103 tops the stream window up to 109.
        assert batch[0] == 109

    def test_batches_per_component(self):
        combined = build_algorithm("seq1+repl")
        for miss in (100, 101, 102):
            combined.prefetch_step(miss)
            combined.learn(miss)
        batches = list(combined.prefetch_batches(103))
        assert len(batches) == 2

    def test_batch_dedup_across_components(self):
        combined = build_algorithm("seq1+repl")
        for miss in (100, 101, 102, 103):
            combined.prefetch_step(miss)
            combined.learn(miss)
        batches = list(combined.prefetch_batches(100))
        flat = [a for b in batches for a in b]
        assert len(flat) == len(set(flat))

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            CombinedUlmtPrefetcher([])

    def test_name(self):
        assert build_algorithm("seq1+repl").name == "seq1+repl"


class TestBuildAlgorithm:
    def test_simple_names(self):
        assert isinstance(build_algorithm("base"), BasePrefetcher)
        assert isinstance(build_algorithm("repl"), ReplicatedPrefetcher)
        assert isinstance(build_algorithm("seq4"), SequentialUlmtPrefetcher)

    def test_overrides(self):
        repl4 = build_algorithm("repl@levels=4")
        assert repl4.params.num_levels == 4
        small = build_algorithm("repl@rows=1024")
        assert small.params.num_rows == 1024

    def test_num_rows_argument(self):
        algo = build_algorithm("base", num_rows=2048)
        assert algo.params.num_rows == 2048

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_algorithm("magic")

    def test_malformed_override_rejected(self):
        with pytest.raises(ValueError):
            build_algorithm("repl@levels")

    def test_components_get_distinct_table_addresses(self):
        combined = build_algorithm("repl+base")
        addr0 = combined.components[0].table.base_addr
        addr1 = combined.components[1].table.base_addr
        assert addr0 != addr1


class TestTable5:
    def test_cg_runs_seq1_repl_verbose(self):
        c = customization_for("cg")
        assert c.algorithm == "seq1+repl"
        assert c.verbose

    def test_mst_mcf_run_repl_levels4(self):
        for app in ("mst", "mcf"):
            c = customization_for(app)
            assert c.algorithm == "repl@levels=4"
            assert not c.verbose

    def test_other_apps_have_no_customization(self):
        for app in ("equake", "ft", "gap", "parser", "sparse", "tree"):
            assert customization_for(app) is None

    def test_registry_has_exactly_three_entries(self):
        assert set(CUSTOMIZATIONS) == {"cg", "mst", "mcf"}


class TestProfiling:
    def test_collects_page_histogram(self):
        p = ProfilingAlgorithm(page_lines=4)
        for miss in (0, 1, 2, 3, 4, 8):
            p.learn(miss)
        assert p.page_misses[0] == 4
        assert p.page_misses[1] == 1
        assert p.page_misses[2] == 1
        assert p.hot_pages(1) == [(0, 4)]

    def test_conflict_sets(self):
        p = ProfilingAlgorithm(l2_sets=4)
        for _ in range(99):
            p.learn(8)   # set 0
        p.learn(1)
        assert p.conflict_sets(threshold_fraction=0.5) == [0]

    def test_standalone_never_prefetches(self):
        p = ProfilingAlgorithm()
        p.learn(1)
        assert p.prefetch_step(1) == []

    def test_wraps_inner_algorithm(self):
        inner = build_algorithm("repl")
        p = ProfilingAlgorithm(inner=inner)
        for miss in (100, 200, 100):
            p.prefetch_step(miss)
            p.learn(miss)
        assert p.total_misses == 3
        assert p.prefetch_step(100) == [200]
