"""Tests for the main-processor timing model."""

import pytest

from repro.cpu.processor import (
    LEVEL_L2,
    LEVEL_MEM,
    AccessResult,
    MainProcessor,
)
from repro.cpu.stream_prefetcher import HardwareStreamPrefetcher
from repro.params import MainProcessorParams
from repro.workloads.trace import MemRef, Trace


class FixedLatencyMemory:
    """Everything below L1 answers with a fixed latency."""

    def __init__(self, latency: int = 200, level: str = LEVEL_MEM) -> None:
        self.latency = latency
        self.level = level
        self.accesses: list[tuple[int, bool, int, bool]] = []

    def access(self, l2_line, is_write, now, is_prefetch):
        self.accesses.append((l2_line, is_write, now, is_prefetch))
        return AccessResult(now + self.latency, self.level)


def run(refs, memory=None, **params):
    memory = memory or FixedLatencyMemory()
    proc = MainProcessor(memory, params=MainProcessorParams(**params))
    stats = proc.run(Trace(refs))
    return stats, memory


class TestBusyAccounting:
    def test_pure_compute(self):
        refs = [MemRef(addr=i * 32, is_write=False, comp_cycles=10,
                       dependent=False) for i in range(4)]
        stats, mem = run(refs, FixedLatencyMemory(latency=0))
        assert stats.busy_cycles == 40

    def test_l1_hits_do_not_stall(self):
        refs = [MemRef(0, False, 5, False) for _ in range(10)]
        stats, mem = run(refs, FixedLatencyMemory(latency=1000))
        # Only the first access leaves the L1.
        assert len(mem.accesses) == 1


class TestDependentStalls:
    def test_dependent_load_waits_full_latency(self):
        refs = [
            MemRef(0 * 64, False, 0, False),
            MemRef(1000 * 64, False, 0, True),   # must wait for ref 0
        ]
        stats, _ = run(refs, FixedLatencyMemory(latency=200))
        assert stats.beyondl2_stall >= 200

    def test_independent_loads_overlap(self):
        refs = [MemRef(i * 1000 * 32, False, 0, False) for i in range(4)]
        stats, _ = run(refs, FixedLatencyMemory(latency=200))
        # Four independent misses overlap within the window; the drain at
        # the end pays one latency, not four.
        assert stats.total_cycles < 4 * 200

    def test_stall_attribution_l2_vs_mem(self):
        refs = [
            MemRef(0, False, 0, False),
            MemRef(64, False, 0, True),
        ]
        stats_l2, _ = run(refs, FixedLatencyMemory(latency=19, level=LEVEL_L2))
        stats_mem, _ = run(refs, FixedLatencyMemory(latency=200, level=LEVEL_MEM))
        assert stats_l2.uptol2_stall > 0 and stats_l2.beyondl2_stall == 0
        assert stats_mem.beyondl2_stall > 0 and stats_mem.uptol2_stall == 0


class TestWindows:
    def test_pending_load_limit_blocks(self):
        refs = [MemRef(i * 1000 * 32, False, 0, False) for i in range(20)]
        stats, _ = run(refs, FixedLatencyMemory(latency=10_000),
                       pending_loads=2, rob_refs=1000)
        # With only 2 pending loads, the processor repeatedly stalls.
        assert stats.beyondl2_stall > 0

    def test_rob_limit_bounds_runahead(self):
        refs = [MemRef(i * 1000 * 32, False, 1, False) for i in range(30)]
        tight, _ = run(refs, FixedLatencyMemory(latency=500), rob_refs=2)
        loose, _ = run(refs, FixedLatencyMemory(latency=500), rob_refs=1000)
        assert tight.total_cycles > loose.total_cycles

    def test_stores_do_not_block_on_rob(self):
        """Stores use the 16-deep store buffer, not the load ROB limit, so
        a store stream stalls far less than the same stream of loads."""
        stores = [MemRef(i * 1000 * 32, True, 1, False) for i in range(30)]
        loads = [MemRef(i * 1000 * 32, False, 1, False) for i in range(30)]
        s_stats, _ = run(stores, FixedLatencyMemory(latency=500), rob_refs=2)
        l_stats, _ = run(loads, FixedLatencyMemory(latency=500), rob_refs=2)
        assert s_stats.beyondl2_stall < l_stats.beyondl2_stall

    def test_drain_pays_outstanding(self):
        refs = [MemRef(0, False, 0, False)]
        stats, _ = run(refs, FixedLatencyMemory(latency=300))
        assert stats.finish_time >= 300


class TestStreamPrefetcherIntegration:
    def test_prefetches_issued_on_stream(self):
        mem = FixedLatencyMemory(latency=100)
        proc = MainProcessor(mem, stream_prefetcher=HardwareStreamPrefetcher())
        refs = [MemRef(i * 32, False, 2, False) for i in range(10)]
        proc.run(Trace(refs))
        prefetches = [a for a in mem.accesses if a[3]]
        assert prefetches, "a unit-stride L1 miss stream must trigger prefetches"

    def test_prefetched_lines_hit_l1_later(self):
        mem = FixedLatencyMemory(latency=10)
        proc = MainProcessor(mem, stream_prefetcher=HardwareStreamPrefetcher())
        refs = [MemRef(i * 32, False, 50, False) for i in range(20)]
        stats = proc.run(Trace(refs))
        demand = [a for a in mem.accesses if not a[3]]
        # Far fewer demand requests than L1 lines touched.
        assert len(demand) < 20

    def test_no_prefetcher_no_prefetch_traffic(self):
        mem = FixedLatencyMemory()
        proc = MainProcessor(mem)
        refs = [MemRef(i * 32, False, 2, False) for i in range(10)]
        proc.run(Trace(refs))
        assert all(not a[3] for a in mem.accesses)


class TestL1Granularity:
    def test_two_l1_lines_per_l2_line(self):
        mem = FixedLatencyMemory(latency=0)
        proc = MainProcessor(mem)
        proc.run(Trace([MemRef(0, False, 0, False),
                        MemRef(32, False, 0, False)]))
        # Both L1 misses, same L2 line 0.
        assert [a[0] for a in mem.accesses] == [0, 0]
