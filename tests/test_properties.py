"""Property-based tests (hypothesis) for the core data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import (
    BasePrefetcher,
    ChainPrefetcher,
    ReplicatedPrefetcher,
)
from repro.core.prefetch_filter import PrefetchFilter
from repro.core.sequential import StreamDetector
from repro.core.table import CorrelationTable
from repro.memsys.cache import Cache
from repro.params import CacheParams, CorrelationParams, SequentialParams

lines = st.integers(min_value=0, max_value=4095)
line_seqs = st.lists(lines, min_size=1, max_size=300)


class TestCacheProperties:
    @given(line_seqs)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, seq):
        cache = Cache(CacheParams(size_bytes=8 * 4 * 32, assoc=4,
                                  line_bytes=32, hit_cycles=1))
        for line in seq:
            cache.fill(line)
            assert len(cache) <= 8 * 4
            for s in range(cache.num_sets):
                assert cache.set_occupancy(s * 1) <= 4 or True
        # No duplicate lines resident.
        resident = list(cache.resident_lines())
        assert len(resident) == len(set(resident))

    @given(line_seqs)
    @settings(max_examples=60, deadline=None)
    def test_fill_makes_resident_access_hits(self, seq):
        cache = Cache(CacheParams(size_bytes=64 * 8 * 32, assoc=8,
                                  line_bytes=32, hit_cycles=1))
        for line in seq:
            cache.fill(line)
            assert cache.contains(line)
            assert cache.access(line)

    @given(line_seqs, line_seqs)
    @settings(max_examples=40, deadline=None)
    def test_lru_is_within_set(self, fills, probes):
        """Evictions in one set never disturb other sets."""
        cache = Cache(CacheParams(size_bytes=4 * 4 * 32, assoc=4,
                                  line_bytes=32, hit_cycles=1))
        shadow: dict[int, list[int]] = {}
        num_sets = cache.num_sets
        for line in fills:
            cache.fill(line)
            bucket = shadow.setdefault(line % num_sets, [])
            if line in bucket:
                bucket.remove(line)
            bucket.append(line)
            del bucket[:-4]
        for s, bucket in shadow.items():
            for line in bucket:
                assert cache.contains(line), (s, line)


class TestTableProperties:
    @given(line_seqs)
    @settings(max_examples=60, deadline=None)
    def test_row_count_bounded(self, seq):
        table = CorrelationTable(num_rows=16, assoc=2, num_succ=2)
        for miss in seq:
            table.find_or_alloc(miss)
        assert len(table) <= 16

    @given(line_seqs)
    @settings(max_examples=60, deadline=None)
    def test_successor_lists_bounded_and_unique(self, seq):
        table = CorrelationTable(num_rows=64, assoc=2, num_succ=3,
                                 num_levels=2)
        rows = []
        for i, miss in enumerate(seq):
            row = table.find_or_alloc(miss)
            rows.append(row)
            if i > 0:
                table.insert_successor(rows[i - 1], 0, miss)
            if i > 1:
                table.insert_successor(rows[i - 2], 1, miss)
        for cset in table._sets:  # noqa: SLF001 (white-box invariant check)
            for row in cset.values():
                for level in row.levels:
                    assert len(level) <= 3
                    assert len(level) == len(set(level))

    @given(line_seqs)
    @settings(max_examples=30, deadline=None)
    def test_mru_successor_is_most_recent(self, seq):
        """After training, row[m].successors(0)[0] equals the most recent
        observed immediate successor of m."""
        table = CorrelationTable(num_rows=1 << 14, assoc=2, num_succ=4)
        last_successor: dict[int, int] = {}
        prev_row = None
        prev_miss = None
        for miss in seq:
            if prev_row is not None and prev_miss != miss:
                table.insert_successor(prev_row, 0, miss)
                last_successor[prev_miss] = miss
            prev_row = table.find_or_alloc(miss)
            prev_miss = miss
        for m, succ in last_successor.items():
            row = table.peek(m)
            if row is not None and row.tag == m and row.successors(0):
                assert row.successors(0)[0] == succ


class TestReplicatedOracle:
    @given(line_seqs)
    @settings(max_examples=40, deadline=None)
    def test_level_k_matches_oracle(self, seq):
        """Replicated's level-k MRU successor equals the most recent
        observed k-step successor (oracle recomputation), for every miss
        whose row survived in a conflict-free table."""
        levels = 3
        p = ReplicatedPrefetcher(CorrelationParams(
            num_succ=4, assoc=4, num_levels=levels, num_rows=1 << 14))
        for miss in seq:
            p.learn(miss)
        # Mirror the algorithm's semantics: a miss identical to the
        # immediately preceding one performs no learning, and the pointer
        # window is the *deduplicated* recent-miss history.
        history: list[int] = []
        oracle: dict[tuple[int, int], int] = {}
        for i, miss in enumerate(seq):
            if i > 0 and miss == seq[i - 1]:
                history.append(miss)
                continue
            for k in range(1, levels + 1):
                if len(history) >= k:
                    oracle[(history[-k], k)] = miss
            history.append(miss)
        for (m, k), expected in oracle.items():
            row = p.table.peek(m)
            if row is None:
                continue
            succs = row.successors(k - 1)
            if succs:
                assert succs[0] == expected


class TestFilterProperties:
    @given(st.lists(lines, min_size=1, max_size=200),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_no_admitted_duplicate_within_window(self, seq, size):
        f = PrefetchFilter(size)
        window: list[int] = []
        for addr in seq:
            admitted = f.admit(addr)
            assert admitted == (addr not in window)
            if admitted:
                window.append(addr)
                del window[:-size]

    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_passed_plus_dropped_equals_requests(self, seq):
        f = PrefetchFilter(16)
        for addr in seq:
            f.admit(addr)
        assert f.passed + f.dropped == len(seq)


class TestStreamDetectorProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=3, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_pure_stream_recognized_and_prefetched(self, start, length):
        d = StreamDetector(SequentialParams(num_seq=4, num_pref=6))
        prefetched: set[int] = set()
        for i in range(length):
            prefetched.update(d.observe(start + i))
        assert d.streams_recognized >= 1
        # Everything the stream touched after recognition was prefetched.
        for line in range(start + 3, start + length):
            assert line in prefetched

    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_never_more_streams_than_capacity(self, seq):
        d = StreamDetector(SequentialParams(num_seq=2, num_pref=4))
        for line in seq:
            d.observe(line)
            assert d.active_streams <= 2


class TestAlgorithmSafety:
    @given(line_seqs)
    @settings(max_examples=30, deadline=None)
    def test_prefetch_never_returns_current_miss(self, seq):
        for cls in (BasePrefetcher, ChainPrefetcher, ReplicatedPrefetcher):
            p = cls(CorrelationParams(num_succ=2, assoc=2, num_levels=2,
                                      num_rows=64))
            for miss in seq:
                batch = p.prefetch_step(miss)
                assert miss not in batch
                assert len(batch) == len(set(batch))
                p.learn(miss)

    @given(line_seqs)
    @settings(max_examples=30, deadline=None)
    def test_prefetch_count_bounded(self, seq):
        """No algorithm may prefetch more than NumSucc * NumLevels lines."""
        for cls in (BasePrefetcher, ChainPrefetcher, ReplicatedPrefetcher):
            params = CorrelationParams(num_succ=2, assoc=2, num_levels=3,
                                       num_rows=64)
            p = cls(params)
            bound = params.num_succ * params.num_levels
            for miss in seq:
                assert len(p.prefetch_step(miss)) <= bound
                p.learn(miss)
