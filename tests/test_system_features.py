"""Integration tests for system-level features: verbose mode, config
overrides, wrapped algorithms in the full system."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.driver import run_simulation
from repro.sim.system import System
from repro.params import CONVEN4_PARAMS
from repro.workloads.trace import MemRef, Trace


def stream_then_chase(stream_lines: int = 8000,
                      chase_lines: int = 12000) -> Trace:
    """A unit-stride stream phase (L1-line granularity, so Conven4 can
    latch on) followed by a repeated pointer chase whose footprint
    exceeds the 512 KB L2 (so misses repeat and correlation learns)."""
    import random
    rng = random.Random(9)
    order = list(range(40_000, 40_000 + chase_lines))
    rng.shuffle(order)
    refs = [MemRef(i * 32, False, 6, False) for i in range(stream_lines)]
    refs += [MemRef(l * 64, False, 6, True) for _ in range(2) for l in order]
    return Trace(refs, name="mix")


class TestVerboseMode:
    def test_verbose_ulmt_observes_processor_prefetches(self):
        base_cfg = SystemConfig(name="nv", ulmt_algorithm="repl",
                                conven=CONVEN4_PARAMS, verbose=False)
        verbose_cfg = SystemConfig(name="v", ulmt_algorithm="repl",
                                   conven=CONVEN4_PARAMS, verbose=True)
        trace = stream_then_chase()
        nv = run_simulation(trace, base_cfg)
        v = run_simulation(trace, verbose_cfg)
        # In verbose mode the ULMT sees strictly more events (the stream
        # phase generates processor prefetch requests).
        assert v.ulmt.misses_observed > nv.ulmt.misses_observed


class TestConfigOverrides:
    def test_queue_depth_override_reaches_queues(self):
        cfg = SystemConfig(name="q", ulmt_algorithm="repl", queue_depth=4)
        system = System(cfg)
        assert system.prefetch_queue.depth == 4
        assert system.memproc.ulmt.obs_queue.depth == 4

    def test_filter_override(self):
        cfg = SystemConfig(name="f", ulmt_algorithm="repl",
                           filter_entries=8)
        system = System(cfg)
        assert system.memproc.ulmt.filter.entries == 8

    def test_rob_override(self):
        cfg = SystemConfig(name="r", rob_refs=3)
        system = System(cfg)
        assert system.processor.params.rob_refs == 3

    def test_num_rows_override(self):
        cfg = SystemConfig(name="n", ulmt_algorithm="repl", num_rows=256)
        system = System(cfg)
        assert system.memproc.algorithm.table.num_rows == 256


class TestWrappedAlgorithmsInSystem:
    def test_conflict_wrapped_repl_runs_end_to_end(self):
        trace = stream_then_chase()
        result = run_simulation(
            trace, SystemConfig(name="c", ulmt_algorithm="conflict:repl"))
        assert result.execution_time > 0
        assert result.ulmt.misses_observed > 0

    def test_adaptive_runs_end_to_end(self):
        trace = stream_then_chase()
        nopref = run_simulation(trace, "nopref")
        result = run_simulation(
            trace, SystemConfig(name="a",
                                ulmt_algorithm="adaptive:seq4|repl"))
        assert result.speedup_over(nopref) > 1.0

    def test_repl_levels4_runs_end_to_end(self):
        trace = stream_then_chase()
        result = run_simulation(
            trace, SystemConfig(name="l4", ulmt_algorithm="repl@levels=4"))
        assert result.ulmt.prefetches_generated > 0


class TestDeterminism:
    def test_same_trace_same_result(self):
        trace = stream_then_chase()
        a = run_simulation(trace, "repl")
        b = run_simulation(trace, "repl")
        assert a.execution_time == b.execution_time
        assert a.l2.prefetch_hits == b.l2.prefetch_hits

    def test_prefetching_never_changes_reference_count(self):
        trace = stream_then_chase()
        for cfg in ("nopref", "conven4", "repl", "dasp"):
            result = run_simulation(trace, cfg)
            assert result.processor.refs == len(trace)
