"""Tests for the persistent on-disk result cache (:mod:`repro.perf.cache`).

Covers the hit/miss/invalidation contract, corrupted-entry fallback, the
content-addressing properties the parallel engine relies on, and the
``cached_run`` integration in :mod:`repro.experiments.common`.
"""

import dataclasses
import json
import os

import pytest

from repro.experiments import common
from repro.faults.plan import FaultPlan
from repro.perf.cache import (CACHE_DIR_ENV, CACHE_FORMAT_VERSION,
                              ResultCache, default_cache_dir, fingerprint,
                              sim_cache_key)
from repro.perf.pool import (encode_payload, sim_task, task_cache_key)
from repro.sim.config import preset
from repro.sim.driver import run_simulation

KEY = {"app": "tree", "scale": 0.02, "seed": None}
PAYLOAD = {"misses": 123, "rows": [1, 2, 3]}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestHitMissStore:
    def test_fresh_cache_misses(self, cache):
        assert cache.get("sim", KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_put_then_get_hits(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        assert cache.get("sim", KEY) == PAYLOAD
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_kind_namespaces_do_not_collide(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        assert cache.get("fig5", KEY) is None

    def test_last_writer_wins(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        cache.put("sim", KEY, {"misses": 999})
        assert cache.get("sim", KEY) == {"misses": 999}
        assert len(cache) == 1

    def test_no_temp_files_left_behind(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        assert [p for p in cache.directory.iterdir()
                if p.suffix == ".tmp"] == []

    def test_clear(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        cache.put("sim", {"other": 1}, PAYLOAD)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("sim", KEY) is None


class TestInvalidation:
    """Content addressing: any key change lands on a different file, so
    stale entries are never read — there is no in-place invalidation."""

    def test_config_change_invalidates(self, cache):
        key_a = sim_cache_key("tree", preset("repl"), 0.02)
        key_b = sim_cache_key("tree", preset("base"), 0.02)
        cache.put("sim", key_a, PAYLOAD)
        assert cache.get("sim", key_b) is None
        assert cache.get("sim", key_a) == PAYLOAD

    def test_fault_plan_change_invalidates(self, cache):
        config = preset("repl")
        chaotic = dataclasses.replace(
            config, fault_plan=FaultPlan.uniform(1e-4, seed=7))
        cache.put("sim", sim_cache_key("tree", config, 0.02), PAYLOAD)
        assert cache.get(
            "sim", sim_cache_key("tree", chaotic, 0.02)) is None

    def test_scale_and_seed_change_invalidate(self, cache):
        cache.put("sim", sim_cache_key("tree", preset("repl"), 0.02), PAYLOAD)
        assert cache.get(
            "sim", sim_cache_key("tree", preset("repl"), 0.04)) is None
        assert cache.get(
            "sim", sim_cache_key("tree", preset("repl"), 0.02, seed=1)) is None

    def test_identical_configs_share_an_entry(self, cache):
        """Two separately constructed but equal configs must hit the same
        file — that is what deduplicates matrix cells across figures."""
        cache.put("sim", sim_cache_key("tree", preset("repl"), 0.02), PAYLOAD)
        assert cache.get(
            "sim", sim_cache_key("tree", preset("repl"), 0.02)) == PAYLOAD


class TestCorruptFallback:
    def entry_path(self, cache, kind="sim", key=KEY):
        return cache._path(kind, fingerprint(kind, key))

    def test_truncated_json_is_a_miss_and_removed(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        self.entry_path(cache).write_text('{"format": 1, "payl')
        assert cache.get("sim", KEY) is None
        assert cache.stats.corrupt == 1
        assert not self.entry_path(cache).exists()
        # Recompute-and-store works after the drop.
        cache.put("sim", KEY, PAYLOAD)
        assert cache.get("sim", KEY) == PAYLOAD

    def test_wrong_format_version_is_a_miss(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        entry = json.loads(self.entry_path(cache).read_text())
        entry["format"] = CACHE_FORMAT_VERSION + 1
        self.entry_path(cache).write_text(json.dumps(entry))
        assert cache.get("sim", KEY) is None
        assert cache.stats.corrupt == 1

    def test_wrong_kind_is_a_miss(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        entry = json.loads(self.entry_path(cache).read_text())
        entry["kind"] = "fig5"
        self.entry_path(cache).write_text(json.dumps(entry))
        assert cache.get("sim", KEY) is None

    def test_missing_payload_key_is_a_miss(self, cache):
        cache.put("sim", KEY, PAYLOAD)
        entry = {"format": CACHE_FORMAT_VERSION, "kind": "sim"}
        self.entry_path(cache).write_text(json.dumps(entry))
        assert cache.get("sim", KEY) is None


class TestFingerprint:
    def test_dict_order_is_immaterial(self):
        assert (fingerprint("sim", {"a": 1, "b": 2})
                == fingerprint("sim", {"b": 2, "a": 1}))

    def test_kind_and_format_fold_in(self):
        assert fingerprint("sim", KEY) != fingerprint("fig5", KEY)

    def test_stable_across_processes(self):
        """The digest must depend only on content (it names files shared
        between runs), so no per-process hash randomisation may leak in."""
        assert fingerprint("sim", {"app": "tree"}) == fingerprint(
            "sim", {"app": "tree"})


class TestDefaultDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_default_name(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == ".repro-cache"


class TestCachedRunIntegration:
    """``common.cached_run`` goes through the installed disk cache."""

    def test_disk_hit_skips_simulation(self, cache):
        task = sim_task("tree", "nopref", 0.02)
        result = run_simulation("tree", "nopref", scale=0.02)
        cache.put("sim", task_cache_key(task), encode_payload(task, result))
        previous = common.set_disk_cache(cache)
        try:
            common.clear_result_cache()
            loaded = common.cached_run("tree", "nopref", scale=0.02)
        finally:
            common.set_disk_cache(previous)
            common.clear_result_cache()
        assert loaded == result
        assert cache.stats.hits == 1

    def test_miss_computes_and_stores(self, cache):
        previous = common.set_disk_cache(cache)
        try:
            common.clear_result_cache()
            computed = common.cached_run("tree", "nopref", scale=0.02)
        finally:
            common.set_disk_cache(previous)
            common.clear_result_cache()
        assert computed.workload == "tree"
        assert len(cache) == 1
        task = sim_task("tree", "nopref", 0.02)
        assert cache.get("sim", task_cache_key(task)) is not None
