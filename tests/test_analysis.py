"""Tests for the figure-backing analyses (prediction, distances, coverage,
table sizing)."""

import pytest

from repro.analysis.coverage import (
    CoverageBreakdown,
    average_breakdowns,
    breakdown_from_result,
)
from repro.analysis.missdist import MissDistanceResult, average_fractions
from repro.analysis.prediction import (
    PREDICTORS,
    build_predictor,
    measure_predictability,
)
from repro.analysis.tablesize import replacement_fraction, size_num_rows


def cyclic_stream(lines: int, repeats: int) -> list[int]:
    order = [(i * 37) % 1009 + 10_000 for i in range(lines)]
    return order * repeats


class TestPredictability:
    def test_repeating_stream_fully_predictable(self):
        stream = cyclic_stream(50, 8)
        result = measure_predictability(stream, "repl")
        assert result.levels[0] > 0.8
        assert result.levels[1] > 0.8
        assert result.levels[2] > 0.8

    def test_random_stream_unpredictable(self):
        import random
        rng = random.Random(3)
        stream = [rng.randrange(1_000_000) for _ in range(2000)]
        result = measure_predictability(stream, "repl")
        assert result.levels[0] < 0.05

    def test_sequential_stream_seq_predictor(self):
        stream = list(range(1000, 1400))
        result = measure_predictability(stream, "seq4")
        assert result.levels[0] > 0.9
        assert result.levels[1] > 0.9

    def test_sequential_stream_invisible_to_nothing(self):
        """A pure stream is also predictable for pair-based predictors."""
        stream = list(range(1000, 1200)) * 3
        result = measure_predictability(stream, "base")
        assert result.levels[0] > 0.5

    def test_base_has_no_deep_levels(self):
        stream = cyclic_stream(50, 6)
        result = measure_predictability(stream, "base")
        assert result.levels[1] == 0.0
        assert result.levels[2] == 0.0

    def test_repl_beats_chain_on_branching_paths(self):
        """The paper's a,b,c / b,e,b,f motif: Chain loses level-2 accuracy."""
        a, b, c, e, f = 1, 2, 3, 4, 5
        stream = ([a, b, c] + [b, e, b, f]) * 60
        repl = measure_predictability(stream, "repl")
        chain = measure_predictability(stream, "chain")
        assert repl.levels[1] >= chain.levels[1]

    def test_combined_predictor_unions(self):
        stream = list(range(100, 300))
        combined = measure_predictability(stream, "seq4+repl")
        seq_only = measure_predictability(stream, "seq4")
        assert combined.levels[0] >= seq_only.levels[0] - 1e-9

    def test_all_figure5_predictors_constructible(self):
        for name in PREDICTORS:
            assert build_predictor(name) is not None

    def test_unknown_predictor(self):
        with pytest.raises(ValueError):
            build_predictor("oracle")


class TestMissDistances:
    def test_average_fractions(self):
        results = [
            MissDistanceResult("a", (0.1, 0.2, 0.6, 0.1), 100),
            MissDistanceResult("b", (0.3, 0.2, 0.4, 0.1), 100),
        ]
        avg = average_fractions(results)
        assert avg == pytest.approx((0.2, 0.2, 0.5, 0.1))

    def test_dominant_bin(self):
        r = MissDistanceResult("a", (0.1, 0.2, 0.6, 0.1), 100)
        assert r.dominant_bin == "[200,280)"

    def test_empty_average_rejected(self):
        with pytest.raises(ValueError):
            average_fractions([])


class TestCoverageBreakdown:
    def make(self, **kw):
        defaults = dict(app="x", config="repl", hits=0.5, delayed_hits=0.2,
                        nonpref_misses=0.4, replaced=0.3, redundant=0.2)
        defaults.update(kw)
        return CoverageBreakdown(**defaults)

    def test_coverage_is_hits_plus_delayed(self):
        assert self.make().coverage == pytest.approx(0.7)

    def test_conflict_misses_above_unity(self):
        b = self.make(hits=0.5, delayed_hits=0.2, nonpref_misses=0.4)
        assert b.conflict_misses == pytest.approx(0.1)
        b2 = self.make(hits=0.3, delayed_hits=0.2, nonpref_misses=0.4)
        assert b2.conflict_misses == 0.0

    def test_average(self):
        a = self.make(hits=0.4)
        b = self.make(hits=0.6)
        avg = average_breakdowns([a, b], label="avg")
        assert avg.hits == pytest.approx(0.5)
        assert avg.app == "avg"

    def test_empty_average_rejected(self):
        with pytest.raises(ValueError):
            average_breakdowns([])


class TestTableSizing:
    def test_small_footprint_needs_min_rows(self):
        stream = cyclic_stream(100, 5)
        assert size_num_rows(stream, min_rows=1024) == 1024

    def test_large_footprint_needs_more_rows(self):
        stream = [i * 7 for i in range(20_000)]
        rows = size_num_rows(stream, min_rows=1024)
        assert rows > 1024
        assert rows & (rows - 1) == 0  # power of two

    def test_replacement_fraction_monotone_in_rows(self):
        stream = [i * 13 for i in range(5000)]
        small = replacement_fraction(stream, 1024)
        large = replacement_fraction(stream, 8192)
        assert large <= small

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            size_num_rows([])
