"""Robustness tests: seed sensitivity and the memory-latency what-if."""

import pytest

from repro.experiments.ablations import sweep_memory_latency
from repro.sim.driver import SeedStudy, run_seeds


class TestSeedStudy:
    def test_speedup_shape_robust_across_seeds(self):
        """The mcf Repl speedup must not be an artifact of one heap layout."""
        study = run_seeds("mcf", "repl", seeds=(1, 2, 3), scale=0.3)
        assert study.mean > 1.1
        assert all(s > 1.0 for s in study.speedups)
        # Seeds change layouts, not the story.
        assert study.spread < 0.5 * study.mean

    def test_empty_study_rejected(self):
        with pytest.raises(ValueError):
            SeedStudy("x", [])

    def test_repr(self):
        s = SeedStudy("mcf", [1.2, 1.4])
        assert "mcf" in repr(s)
        assert s.mean == pytest.approx(1.3)
        assert s.spread == pytest.approx(0.2)


class TestLatencySweep:
    def test_prefetch_value_grows_with_latency(self):
        points = sweep_memory_latency("mcf", scale=0.3,
                                      extra_fixed=(0, 200))
        assert len(points) == 2
        # A wider processor-memory gap makes prefetching more valuable.
        assert points[1].speedup >= points[0].speedup - 0.02

    def test_round_trip_labels(self):
        points = sweep_memory_latency("tree", scale=0.2, extra_fixed=(0,))
        assert points[0].detail == "RT=208"
