"""Property battery for metrics-snapshot merging (:mod:`repro.obs.metrics`).

The parallel pool merges per-worker snapshots in task order; the claim
that this equals the serial run's registry rests on three algebraic
properties of :func:`merge_snapshots` — associativity, commutativity,
and :func:`empty_snapshot` as identity — plus partition-independence:
splitting one operation stream across any number of registries and
merging the snapshots reproduces the single-registry snapshot.  Each is
checked here over hypothesis-generated operation streams.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.obs.metrics import (  # noqa: E402
    MetricsRegistry,
    SNAPSHOT_VERSION,
    empty_snapshot,
    merge_all,
    merge_snapshots,
    validate_snapshot,
)

NAMES = st.sampled_from(
    ["q2.depth", "q3.depth", "ulmt.response", "filter.accept", "mem.push"])

#: One registry operation: a counter bump or a histogram sample.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("count"), NAMES, st.integers(1, 9)),
        st.tuples(st.just("observe"), NAMES, st.integers(0, 1 << 20)),
    ),
    max_size=64)


def snapshot_of(ops) -> dict:
    reg = MetricsRegistry()
    for op, name, value in ops:
        getattr(reg, op)(name, value)
    return reg.snapshot()


SNAPSHOTS = OPS.map(snapshot_of)


class TestAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(SNAPSHOTS, SNAPSHOTS)
    def test_commutative(self, a, b):
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @settings(max_examples=60, deadline=None)
    @given(SNAPSHOTS, SNAPSHOTS, SNAPSHOTS)
    def test_associative(self, a, b, c):
        assert (merge_snapshots(merge_snapshots(a, b), c)
                == merge_snapshots(a, merge_snapshots(b, c)))

    @settings(max_examples=60, deadline=None)
    @given(SNAPSHOTS)
    def test_identity(self, a):
        assert merge_snapshots(a, empty_snapshot()) == a
        assert merge_snapshots(empty_snapshot(), a) == a

    @settings(max_examples=60, deadline=None)
    @given(SNAPSHOTS)
    def test_merge_output_is_valid_input(self, a):
        validate_snapshot(merge_snapshots(a, a))


class TestPartitionIndependence:
    """Sharding one op stream across workers changes nothing."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(OPS, max_size=6))
    def test_sharded_merge_equals_serial(self, shards):
        serial = snapshot_of([op for shard in shards for op in shard])
        assert merge_all(snapshot_of(shard) for shard in shards) == serial

    @settings(max_examples=60, deadline=None)
    @given(st.lists(SNAPSHOTS, max_size=6))
    def test_merge_order_irrelevant(self, snaps):
        assert merge_all(snaps) == merge_all(reversed(snaps))

    @settings(max_examples=40, deadline=None)
    @given(OPS)
    def test_histogram_bounds_survive_split(self, ops):
        """min/max over a merge equal min/max over the union of samples."""
        half = len(ops) // 2
        merged = merge_snapshots(snapshot_of(ops[:half]),
                                 snapshot_of(ops[half:]))
        samples: dict[str, list[int]] = {}
        for op, name, value in ops:
            if op == "observe":
                samples.setdefault(name, []).append(value)
        for name, values in samples.items():
            hist = merged["histograms"][name]
            assert hist["min"] == min(values)
            assert hist["max"] == max(values)
            assert hist["sum"] == sum(values)
            assert hist["count"] == len(values)


class TestValidation:
    def test_version_mismatch_rejected(self):
        bad = empty_snapshot()
        bad["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(ValueError):
            validate_snapshot(bad)
        with pytest.raises(ValueError):
            merge_snapshots(bad, empty_snapshot())

    def test_missing_sections_rejected(self):
        for key in ("counters", "histograms"):
            bad = empty_snapshot()
            del bad[key]
            with pytest.raises(ValueError):
                validate_snapshot(bad)

    def test_negative_observation_clamps_to_zero(self):
        reg = MetricsRegistry()
        reg.observe("x", -5)
        hist = reg.snapshot()["histograms"]["x"]
        assert hist["min"] == 0 and hist["max"] == 0
        assert hist["bins"] == {"0": 1}

    def test_zero_lands_in_a_defined_bucket(self):
        """Regression: value 0 has its own bin (0.bit_length() == 0), not
        a dropped sample or a share of the [1, 2) bin."""
        reg = MetricsRegistry()
        reg.observe("x", 0)
        reg.observe("x", 1)
        hist = reg.snapshot()["histograms"]["x"]
        assert hist["bins"] == {"0": 1, "1": 1}
        assert hist["count"] == 2 and hist["sum"] == 1

    def test_all_zero_histograms_merge_like_any_other(self):
        a = MetricsRegistry()
        a.observe("x", 0)
        b = MetricsRegistry()
        b.observe("x", 0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["histograms"]["x"]["bins"] == {"0": 2}

    def test_disjoint_bucket_sets_merge_without_keyerror(self):
        """Regression: two snapshots of the same metric whose bin sets do
        not overlap must merge pointwise, never raise KeyError."""
        a = MetricsRegistry()
        a.observe("x", 0)          # bin "0"
        b = MetricsRegistry()
        b.observe("x", 1 << 19)    # bin "20"
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        hist = merged["histograms"]["x"]
        assert hist["bins"] == {"0": 1, "20": 1}
        assert hist["min"] == 0 and hist["max"] == 1 << 19
        # And in both argument orders (commutativity over disjoint bins).
        assert merge_snapshots(b.snapshot(), a.snapshot()) == merged

    def test_malformed_histogram_raises_valueerror_not_keyerror(self):
        reg = MetricsRegistry()
        reg.observe("x", 3)
        good = reg.snapshot()
        for drop in ("bins", "count", "sum", "min", "max"):
            bad = reg.snapshot()
            del bad["histograms"]["x"][drop]
            with pytest.raises(ValueError):
                validate_snapshot(bad)
            with pytest.raises(ValueError):
                merge_snapshots(good, bad)
        not_a_dict = reg.snapshot()
        not_a_dict["histograms"]["x"] = [1, 2, 3]
        with pytest.raises(ValueError):
            merge_snapshots(good, not_a_dict)
        bad_bins = reg.snapshot()
        bad_bins["histograms"]["x"]["bins"] = "3"
        with pytest.raises(ValueError):
            validate_snapshot(bad_bins)
