"""Tests for repro.params: the Table 3/4 constants and latency identities."""

import pytest

from repro.params import (
    BASE_PARAMS,
    CHAIN_PARAMS,
    CONVEN4_PARAMS,
    MAIN_L1,
    MAIN_L2,
    MEMPROC_L1,
    MEMORY,
    REPL_PARAMS,
    ROW_BYTES,
    SEQ1_PARAMS,
    SEQ4_PARAMS,
    CacheParams,
    CorrelationParams,
    MemProcessorParams,
    MemProcLocation,
    MemoryParams,
)


class TestRoundTripIdentities:
    """The decomposed latencies must reproduce the paper's Table 3 RTs."""

    def test_main_processor_row_hit(self):
        assert MEMORY.main_round_trip(row_hit=True) == 208

    def test_main_processor_row_miss(self):
        assert MEMORY.main_round_trip(row_hit=False) == 243

    def test_memproc_in_dram_row_hit(self):
        assert MEMORY.memproc_round_trip(MemProcLocation.DRAM, True) == 21

    def test_memproc_in_dram_row_miss(self):
        assert MEMORY.memproc_round_trip(MemProcLocation.DRAM, False) == 56

    def test_memproc_in_north_bridge_row_hit(self):
        assert MEMORY.memproc_round_trip(MemProcLocation.NORTH_BRIDGE, True) == 65

    def test_memproc_in_north_bridge_row_miss(self):
        assert MEMORY.memproc_round_trip(MemProcLocation.NORTH_BRIDGE, False) == 100

    def test_row_miss_penalty_is_35_cycles(self):
        p = MemoryParams()
        assert p.bank_service_row_miss - p.bank_service_row_hit == 35


class TestCacheGeometry:
    def test_main_l1_is_16kb_2way_32b(self):
        assert MAIN_L1.size_bytes == 16 * 1024
        assert MAIN_L1.assoc == 2
        assert MAIN_L1.line_bytes == 32
        assert MAIN_L1.hit_cycles == 3
        assert MAIN_L1.num_sets == 256

    def test_main_l2_is_512kb_4way_64b(self):
        assert MAIN_L2.size_bytes == 512 * 1024
        assert MAIN_L2.assoc == 4
        assert MAIN_L2.line_bytes == 64
        assert MAIN_L2.hit_cycles == 19
        assert MAIN_L2.num_sets == 2048

    def test_memproc_l1_is_32kb_2way_32b(self):
        assert MEMPROC_L1.size_bytes == 32 * 1024
        assert MEMPROC_L1.assoc == 2
        assert MEMPROC_L1.line_bytes == 32
        assert MEMPROC_L1.hit_cycles == 4

    def test_num_sets_formula(self):
        params = CacheParams(size_bytes=1024, assoc=2, line_bytes=32,
                             hit_cycles=1)
        assert params.num_sets == 16


class TestAlgorithmParameters:
    """Table 4 of the paper."""

    def test_base(self):
        assert BASE_PARAMS.num_succ == 4
        assert BASE_PARAMS.assoc == 4
        assert BASE_PARAMS.num_levels == 1

    def test_chain(self):
        assert CHAIN_PARAMS.num_succ == 2
        assert CHAIN_PARAMS.assoc == 2
        assert CHAIN_PARAMS.num_levels == 3

    def test_repl(self):
        assert REPL_PARAMS.num_succ == 2
        assert REPL_PARAMS.assoc == 2
        assert REPL_PARAMS.num_levels == 3

    def test_sequential(self):
        assert SEQ1_PARAMS.num_seq == 1
        assert SEQ4_PARAMS.num_seq == 4
        assert CONVEN4_PARAMS.num_seq == 4
        for p in (SEQ1_PARAMS, SEQ4_PARAMS, CONVEN4_PARAMS):
            assert p.num_pref == 6

    def test_row_bytes_32bit_machine(self):
        assert ROW_BYTES == {"base": 20, "chain": 12, "repl": 28}

    def test_replaced_creates_modified_copy(self):
        modified = REPL_PARAMS.replaced(num_levels=4)
        assert modified.num_levels == 4
        assert modified.num_succ == REPL_PARAMS.num_succ
        assert REPL_PARAMS.num_levels == 3  # original untouched


class TestProcessorParameters:
    def test_clock_ratio(self):
        assert MemProcessorParams().cycles_per_main_cycle == 2
