"""Tests for the Filter module (Figure 3)."""

import pytest

from repro.core.prefetch_filter import PrefetchFilter


class TestFilter:
    def test_first_occurrence_admitted(self):
        f = PrefetchFilter(4)
        assert f.admit(1)
        assert f.passed == 1

    def test_repeat_dropped(self):
        f = PrefetchFilter(4)
        f.admit(1)
        assert not f.admit(1)
        assert f.dropped == 1

    def test_fifo_eviction_reopens_address(self):
        f = PrefetchFilter(2)
        f.admit(1)
        f.admit(2)
        f.admit(3)  # evicts 1
        assert not f.contains(1)
        assert f.admit(1)

    def test_drop_leaves_list_unmodified(self):
        """Per the paper: a filtered request does not refresh its entry."""
        f = PrefetchFilter(2)
        f.admit(1)
        f.admit(2)
        f.admit(1)       # dropped, 1 stays at the FIFO head
        f.admit(3)       # evicts 1 (not 2)
        assert not f.contains(1)
        assert f.contains(2)
        assert f.contains(3)

    def test_reset(self):
        f = PrefetchFilter(4)
        f.admit(1)
        f.reset()
        assert len(f) == 0
        assert f.admit(1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            PrefetchFilter(0)

    def test_default_is_32_entries(self):
        f = PrefetchFilter()
        assert f.entries == 32
        for i in range(32):
            assert f.admit(i)
        assert not f.admit(0)   # still resident
        assert f.admit(32)      # evicts 0
        assert f.admit(0)
