"""Golden-trace regression battery (see ``docs/OBSERVABILITY.md``).

Each golden file under ``tests/golden/`` freezes one traced cell —
2 workloads x 2 configs — as a digest: event count, SHA-256 of the full
JSON-lines stream, per-kind counts, the metrics snapshot, and the first
lines of the stream for debuggability.  The stream itself is megabytes
per cell, so the digest is what is committed; SHA-256 equality is
equivalent to byte equality of the full stream.

The parity tests then assert the acceptance criterion directly: the
serial run, a ``--jobs 2`` pool run, and a warm-cache replay of the same
cells produce *byte-identical* event streams and metric summaries.

Regenerate the goldens after an intentional schema or model change::

    PYTHONPATH=src python tests/test_obs_golden.py
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.obs.events import EVENT_KINDS
from repro.obs.metrics import merge_all, summary_lines
from repro.obs.runner import TRACE_FORMAT_VERSION, TraceRun, run_traced
from repro.perf.cache import ResultCache
from repro.sim.driver import run_matrix

SCALE = 0.05
APPS = ["tree", "cg"]
CONFIGS = ["nopref", "repl"]
CELLS = [(app, config) for app in APPS for config in CONFIGS]
GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_path(app: str, config: str) -> Path:
    return GOLDEN_DIR / f"trace_{app}_{config}.json"


def digest(app: str, config: str, run: TraceRun) -> dict:
    """The committed shape of one traced cell."""
    jsonl = run.jsonl()
    lines = jsonl.splitlines()
    counts: dict[str, int] = {}
    for event in run.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return {
        "app": app,
        "config": config,
        "scale": SCALE,
        "trace_format_version": TRACE_FORMAT_VERSION,
        "events": len(run.events),
        "sha256": hashlib.sha256(jsonl.encode("ascii")).hexdigest(),
        "execution_time": run.result.execution_time,
        "kind_counts": {k: counts[k] for k in sorted(counts)},
        "metrics": run.metrics,
        "head": lines[:10],
    }


@pytest.fixture(scope="module")
def serial_runs():
    return {(app, config): run_traced(app, config, scale=SCALE)
            for app, config in CELLS}


class TestGoldenSerial:
    @pytest.mark.parametrize("app,config", CELLS)
    def test_cell_matches_golden(self, app, config, serial_runs):
        path = golden_path(app, config)
        assert path.exists(), (
            f"missing golden {path}; regenerate with "
            f"`PYTHONPATH=src python tests/test_obs_golden.py`")
        golden = json.loads(path.read_text())
        got = digest(app, config, serial_runs[(app, config)])
        # Compare the cheap fields first for a readable failure, then the
        # byte-identity proxy (the stream hash) and the full snapshot.
        assert got["events"] == golden["events"]
        assert got["kind_counts"] == golden["kind_counts"]
        assert got["execution_time"] == golden["execution_time"]
        assert got["head"] == golden["head"]
        assert got["metrics"] == golden["metrics"]
        assert got["sha256"] == golden["sha256"]

    def test_streams_only_use_schema_kinds(self, serial_runs):
        for run in serial_runs.values():
            assert {e.kind for e in run.events} <= EVENT_KINDS


class TestParity:
    """Serial == ``--jobs 2`` == warm-cache, byte for byte."""

    def test_parallel_pool_matches_serial(self, serial_runs):
        matrix = run_matrix(APPS, CONFIGS, scale=SCALE, jobs=2, trace=True)
        for app, config in CELLS:
            run = matrix[(app, config)]
            want = serial_runs[(app, config)]
            assert run.jsonl() == want.jsonl()
            assert run.metrics == want.metrics
            assert run.result.to_dict() == want.result.to_dict()

    def test_merged_summary_matches_serial(self, serial_runs):
        matrix = run_matrix(APPS, CONFIGS, scale=SCALE, jobs=2, trace=True)
        parallel = summary_lines(merge_all(
            matrix[cell].metrics for cell in CELLS))
        serial = summary_lines(merge_all(
            serial_runs[cell].metrics for cell in CELLS))
        assert parallel == serial

    def test_warm_cache_matches_serial(self, serial_runs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_matrix(APPS, CONFIGS, scale=SCALE, cache=cache,
                          trace=True)
        assert cache.stats.stores == len(CELLS)
        warm = run_matrix(APPS, CONFIGS, scale=SCALE, cache=cache,
                          trace=True)
        assert cache.stats.hits == len(CELLS)
        for app, config in CELLS:
            want = serial_runs[(app, config)]
            assert cold[(app, config)].jsonl() == want.jsonl()
            assert warm[(app, config)].jsonl() == want.jsonl()
            assert warm[(app, config)].metrics == want.metrics

    def test_traced_result_identical_to_untraced(self, serial_runs):
        """Tracing is pure observation: the SimResult cannot move."""
        from repro.sim.driver import run_simulation
        plain = run_simulation("tree", "repl", scale=SCALE)
        assert (serial_runs[("tree", "repl")].result.to_dict()
                == plain.to_dict())


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for app, config in CELLS:
        run = run_traced(app, config, scale=SCALE)
        path = golden_path(app, config)
        path.write_text(json.dumps(digest(app, config, run), indent=2,
                                   sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    _regen()
