"""Tests for the trace analysis tier (:mod:`repro.obs.analysis`).

Lane model totality, timeline folding/rendering, collapsed stacks, the
trace-diff engine's classification rules, and the ``repro timeline`` /
``repro tracediff`` CLI exit codes.
"""

from pathlib import Path

import pytest

from repro.obs.analysis.cli import timeline_main, tracediff_main
from repro.obs.analysis.diff import diff_streams, report_lines
from repro.obs.analysis.lanes import (
    KIND_TO_LANE,
    LANES,
    fold_stream,
    lane_of,
    load_event_records,
    load_event_stream,
)
from repro.obs.analysis.timeline import collapsed_stacks, render_timeline
from repro.obs.events import EVENT_KINDS, L2_DROP_RULES
from repro.obs.runner import run_traced

SCALE = 0.05
GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def tree_nopref():
    return run_traced("tree", "nopref", scale=SCALE)


@pytest.fixture(scope="module")
def tree_repl():
    return run_traced("tree", "repl", scale=SCALE)


class TestLaneModel:
    def test_every_event_kind_has_exactly_one_lane(self):
        assert set(KIND_TO_LANE) == EVENT_KINDS
        per_lane = [kind for lane in LANES for kind in lane.kinds]
        assert len(per_lane) == len(set(per_lane))

    def test_lane_names_are_unique(self):
        names = [lane.name for lane in LANES]
        assert len(names) == len(set(names))

    def test_unknown_kind_degrades_to_question_mark(self):
        assert lane_of("l2.push.redundant") == "l2.drop"
        assert lane_of("future.event") == "?"


class TestFoldStream:
    def test_events_land_in_the_right_columns(self):
        events = [("q1.issue", 0), ("q2.enqueue", 50), ("q1.issue", 99)]
        activity = fold_stream(events, width=10)
        assert activity.width == 10
        assert activity.first_cycle == 0 and activity.last_cycle == 99
        assert activity.cycles_per_column == 10
        assert activity.columns["q1"][0] == 1
        assert activity.columns["q1"][9] == 1
        assert activity.columns["q2"][5] == 1
        assert activity.total_events == 3
        assert activity.lane_total("q1") == 2

    def test_totals_always_add_up_even_for_unknown_kinds(self):
        events = [("q1.issue", 1), ("future.event", 2)]
        activity = fold_stream(events, width=4)
        assert sum(activity.lane_total(name) for name in activity.columns) == 2
        assert activity.lane_total("?") == 1

    def test_empty_stream_folds_to_all_idle(self):
        activity = fold_stream([], width=8)
        assert activity.total_events == 0
        assert all(sum(cols) == 0 for cols in activity.columns.values())

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            fold_stream([("q1.issue", 0)], width=0)


class TestRenderTimeline:
    def test_render_is_deterministic_and_row_aligned(self, tree_repl):
        pairs = [(e.kind, e.cycle) for e in tree_repl.events]
        activity = fold_stream(pairs, width=48)
        first = render_timeline(activity, title="tree/repl")
        second = render_timeline(activity, title="tree/repl")
        assert first == second
        # Header + one row per schema lane + ruler.
        assert len(first) == 1 + len(LANES) + 1
        assert f"{activity.total_events:,} events" in first[0]

    def test_lane_subset_orders_rows(self):
        activity = fold_stream([("q1.issue", 0), ("mem.push", 5)], width=4)
        lines = render_timeline(activity, lanes=["mem", "q1"])
        assert lines[1].startswith("mem")
        assert lines[2].startswith("q1 ")

    def test_unknown_lane_is_an_error(self):
        activity = fold_stream([("q1.issue", 0)], width=4)
        with pytest.raises(ValueError, match="unknown lane"):
            render_timeline(activity, lanes=["bogus"])

    def test_ansi_mode_wraps_rows_in_escapes(self):
        activity = fold_stream([("q1.issue", 0)], width=4)
        lines = render_timeline(activity, ansi=True)
        assert "\x1b[" in lines[1]


class TestCollapsedStacks:
    def test_event_weights_sum_to_stream_length(self, tree_repl):
        records = [e.to_dict() for e in tree_repl.events]
        lines = collapsed_stacks(records, root="tree/repl")
        weights = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert sum(weights) == len(records)
        assert lines == sorted(lines)
        assert all(line.startswith("tree/repl;") for line in lines)

    def test_cycle_weights_use_duration_fields(self):
        records = [
            {"kind": "ulmt.prefetch_step", "cycle": 1, "response": 70},
            {"kind": "ulmt.prefetch_step", "cycle": 2, "response": 30},
            {"kind": "q1.issue", "cycle": 3},
        ]
        lines = collapsed_stacks(records, root="r", weight="cycles")
        assert "r;ulmt;prefetch_step 100" in lines
        assert "r;q1;issue 1" in lines

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            collapsed_stacks([], weight="bytes")


def _record(kind, cycle, addr=None):
    record = {"kind": kind, "cycle": cycle}
    if addr is not None:
        record["addr"] = addr
    return record


class TestDiffStreams:
    def test_identical_streams_report_zero_divergences(self, tree_repl):
        records = [e.to_dict() for e in tree_repl.events]
        report = diff_streams(records, list(records))
        assert report.identical
        assert report.divergences == 0
        assert report.first_divergence is None
        assert report.matched == len(records)
        lines = report_lines(report)
        assert any("IDENTICAL" in line for line in lines)

    def test_classification_of_retimed_missing_extra(self):
        a = [_record("q1.issue", 1, 10), _record("q1.issue", 5, 20),
             _record("mem.push", 7, 30)]
        b = [_record("q1.issue", 1, 10), _record("q1.issue", 6, 20),
             _record("filter.accept", 9, 40)]
        report = diff_streams(a, b)
        assert not report.identical
        assert report.matched == 1
        assert report.retimed == 1      # q1.issue@20 moved 5 -> 6
        assert report.missing == 1      # mem.push only in A
        assert report.extra == 1        # filter.accept only in B
        index, line_a, line_b = report.first_divergence
        assert index == 1 and line_a is not None and line_b is not None
        assert report.per_kind["q1.issue"].retimed == 1
        assert report.per_kind["mem.push"].delta == -1
        assert report.per_kind["filter.accept"].delta == 1

    def test_length_mismatch_marks_end_of_stream(self):
        a = [_record("q1.issue", 1, 10)]
        report = diff_streams(a, [])
        index, line_a, line_b = report.first_divergence
        assert index == 0 and line_b is None
        assert any("<end of stream>" in line for line in report_lines(report))

    def test_drop_rules_always_in_per_kind_table(self):
        report = diff_streams([], [])
        for rule in L2_DROP_RULES:
            assert f"l2.push.{rule}" in report.per_kind

    def test_nopref_vs_repl_attributes_deltas_per_kind(self, tree_nopref,
                                                       tree_repl):
        report = diff_streams((e.to_dict() for e in tree_nopref.events),
                              (e.to_dict() for e in tree_repl.events))
        assert not report.identical
        # NoPref never pushes, so every push-side kind is all "extra".
        assert report.per_kind["ulmt.prefetch_step"].count_a == 0
        assert report.per_kind["ulmt.prefetch_step"].delta > 0
        rendered = "\n".join(report_lines(report, "tree/nopref", "tree/repl"))
        for rule in L2_DROP_RULES:
            assert f"l2.push.{rule}" in rendered


class TestAnalysisClis:
    @pytest.fixture()
    def stream_file(self, tmp_path, tree_repl):
        path = tmp_path / "tree_repl.jsonl"
        path.write_text(tree_repl.jsonl(), encoding="ascii")
        return path

    def test_loaders_accept_jsonl_and_golden_digests(self, stream_file):
        records = load_event_records(stream_file)
        assert len(records) > 0 and "kind" in records[0]
        pairs = load_event_stream(stream_file)
        assert pairs[0] == (records[0]["kind"], records[0]["cycle"])
        golden = sorted(GOLDEN_DIR.glob("trace_*.json"))
        assert golden, "golden digests must be committed"
        head = load_event_records(golden[0])
        assert head and "kind" in head[0]

    def test_loader_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("not a trace\n")
        with pytest.raises(ValueError):
            load_event_records(bad)

    def test_timeline_cli_exit_codes(self, capsys, stream_file, tmp_path):
        assert timeline_main([str(stream_file)]) == 0
        out = capsys.readouterr().out
        assert "timeline — tree_repl" in out
        assert timeline_main([str(stream_file), "--flame"]) == 0
        capsys.readouterr()
        assert timeline_main([str(tmp_path / "missing.jsonl")]) == 2
        assert timeline_main([str(stream_file), "--lanes", "bogus"]) == 2

    def test_timeline_cli_renders_golden_digests(self, capsys):
        for golden in sorted(GOLDEN_DIR.glob("trace_*.json")):
            assert timeline_main([str(golden)]) == 0
        assert capsys.readouterr().out

    def test_tracediff_cli_exit_codes(self, capsys, stream_file, tmp_path,
                                      tree_nopref):
        same = tmp_path / "copy.jsonl"
        same.write_text(stream_file.read_text(), encoding="ascii")
        assert tracediff_main([str(stream_file), str(same)]) == 0
        assert "IDENTICAL" in capsys.readouterr().out
        other = tmp_path / "tree_nopref.jsonl"
        other.write_text(tree_nopref.jsonl(), encoding="ascii")
        assert tracediff_main([str(other), str(stream_file)]) == 1
        assert "DIVERGENT" in capsys.readouterr().out
        assert tracediff_main([str(stream_file),
                               str(tmp_path / "missing.jsonl")]) == 2

    def test_main_module_forwards_timeline_and_tracediff(self, capsys,
                                                         stream_file):
        from repro.__main__ import main
        assert main(["timeline", str(stream_file)]) == 0
        assert "timeline" in capsys.readouterr().out
        assert main(["tracediff", str(stream_file), str(stream_file)]) == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_trace_cli_diff_modes(self, capsys):
        from repro.obs import cli
        assert cli.main(["tree", "--diff", "repl", "repl",
                         "--scale", str(SCALE)]) == 0
        assert "IDENTICAL" in capsys.readouterr().out
        assert cli.main(["tree", "--diff", "nopref", "repl",
                         "--scale", str(SCALE)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENT" in out
        for rule in L2_DROP_RULES:
            assert f"l2.push.{rule}" in out

    def test_trace_cli_diff_rejects_bad_combinations(self):
        from repro.obs import cli
        with pytest.raises(SystemExit):
            cli.main(["tree,cg", "--diff", "nopref", "repl"])
        with pytest.raises(SystemExit):
            cli.main(["tree", "--diff", "nopref", "repl", "--stream"])
        with pytest.raises(SystemExit):
            cli.main(["tree", "--diff", "nopref", "repl", "--jobs", "2"])
