"""Tests for the append-only run journal (:mod:`repro.perf.journal`).

The contract: a SIGKILL at any instant leaves a loadable journal (at
most one torn final line, which is dropped); corruption anywhere else is
an error, not a guess; ``finish`` records alone are enough to replay a
task's result.
"""

import json

import pytest

from repro.perf.journal import (JOURNAL_FORMAT_VERSION, JournalError,
                                RunJournal, finished_payloads,
                                recorded_failures)


@pytest.fixture
def journal(tmp_path):
    return RunJournal(tmp_path / "journal.jsonl")


class TestAppendLoad:
    def test_round_trip_in_order(self, journal):
        journal.write_header({"campaign": {"apps": ["tree"]}})
        journal.task_start("d1", "tree/repl", 1)
        journal.task_finish("d1", "tree/repl", attempts=1,
                            payload={"x": 1})
        records = journal.load()
        assert [r["event"] for r in records] == ["header", "start", "finish"]
        assert records[0]["format"] == JOURNAL_FORMAT_VERSION
        assert records[2]["payload"] == {"x": 1}

    def test_missing_file_loads_empty(self, journal):
        assert journal.load() == []
        assert not journal.exists()

    def test_records_need_an_event_field(self, journal):
        with pytest.raises(ValueError):
            journal.append({"task": "d1"})

    def test_one_line_per_record(self, journal):
        journal.task_start("d1", "a", 1)
        journal.task_start("d2", "b", 1)
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["event"] == "start" for line in lines)


class TestCrashShape:
    def test_torn_final_line_is_dropped(self, journal):
        journal.task_start("d1", "a", 1)
        journal.task_finish("d1", "a", attempts=1, payload={})
        with open(journal.path, "a") as fh:
            fh.write('{"event":"finish","task":"d2","payl')  # kill mid-append
        records = journal.load()
        assert [r["event"] for r in records] == ["start", "finish"]

    def test_mid_file_corruption_raises(self, journal):
        journal.task_start("d1", "a", 1)
        with open(journal.path, "a") as fh:
            fh.write("not json at all\n")
        journal.task_start("d2", "b", 1)
        with pytest.raises(JournalError):
            journal.load()

    def test_non_record_line_raises(self, journal):
        with open(journal.path, "w") as fh:
            fh.write('{"no_event": true}\n{"event":"start"}\n')
        with pytest.raises(JournalError):
            journal.load()

    def test_incompatible_format_raises(self, journal):
        with open(journal.path, "w") as fh:
            fh.write(json.dumps({"event": "header", "format": 999}) + "\n")
        with pytest.raises(JournalError):
            journal.load()


class TestHeader:
    def test_header_round_trip(self, journal):
        journal.write_header({"campaign": {"apps": ["tree"]}})
        header = journal.header()
        assert header is not None
        assert header["campaign"] == {"apps": ["tree"]}

    def test_headerless_journal_is_legal(self, journal):
        # A bare run_tasks_resilient journal has no header; only the
        # campaign layer requires one.
        journal.task_start("d1", "a", 1)
        assert journal.header() is None
        assert len(journal.load()) == 1


class TestReplayIndexes:
    def test_finished_payloads_last_wins(self, journal):
        journal.task_finish("d1", "a", attempts=1, payload={"v": 1})
        journal.task_finish("d1", "a", attempts=2, payload={"v": 2})
        journal.task_finish("d2", "b", attempts=1, payload={"v": 3})
        finished = finished_payloads(journal.load())
        assert set(finished) == {"d1", "d2"}
        assert finished["d1"]["payload"] == {"v": 2}
        assert finished["d1"]["attempts"] == 2

    def test_recorded_failures(self, journal):
        journal.task_failure("d1", "a", attempts=3, kind="error",
                             message="boom")
        failures = recorded_failures(journal.load())
        assert failures["d1"]["kind"] == "error"
