"""Smoke tests for the table/figure reproduction modules (small subsets)."""

import pytest

from repro.experiments import (
    common,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
    table4,
    table5,
)

SCALE = 0.4
ONE_APP = ["mcf"]


@pytest.fixture(autouse=True)
def keep_cache():
    """Share the result cache across these tests (same scale/app)."""
    yield


class TestTables:
    def test_table1_matches_paper(self):
        assert table1.verify_against_paper(table1.run())

    def test_table2_sizing(self):
        sizings = table2.run(scale=SCALE, apps=ONE_APP)
        assert len(sizings) == 1
        s = sizings[0]
        assert s.num_rows & (s.num_rows - 1) == 0
        assert s.size_mbytes("repl") > s.size_mbytes("chain")
        # Row-size arithmetic: 28/12 bytes per row.
        assert s.size_mbytes("repl") / s.size_mbytes("chain") == pytest.approx(28 / 12)

    def test_table3_round_trips(self):
        assert table3.verify_round_trips()
        groups = table3.run()
        assert "Main processor" in groups

    def test_table4_six_rows(self):
        assert len(table4.run()) == 6

    def test_table5_groups(self):
        rows = table5.run()
        apps = "".join(a for a, _ in rows)
        assert "CG" in apps and "MCF" in apps and "MST" in apps


class TestFigures:
    def test_fig5_one_app(self):
        result = fig5.run(scale=SCALE, apps=ONE_APP,
                          predictors=("seq4", "repl"))
        levels = result["apps"]["mcf"]["repl"].levels
        assert len(levels) == 3
        # Mcf: pair-based predicts, sequential does not (paper Figure 5).
        assert levels[0] > result["apps"]["mcf"]["seq4"].levels[0]

    def test_fig6_one_app(self):
        result = fig6.run(scale=SCALE, apps=ONE_APP)
        fractions = result["apps"][0].fractions
        assert sum(fractions) == pytest.approx(1.0)
        # Mcf is dependent-miss bound: the round-trip bin dominates.
        assert fractions[2] == max(fractions)

    def test_fig7_one_app(self):
        result = fig7.run(scale=SCALE, apps=ONE_APP,
                          configs=("nopref", "base", "repl"),
                          include_custom=False)
        bars = {b.config: b for b in result["bars"]["mcf"]}
        assert bars["nopref"].normalized_time == pytest.approx(1.0)
        assert bars["repl"].speedup > bars["base"].speedup * 0.95
        assert bars["repl"].speedup > 1.1

    def test_fig8_one_app(self):
        result = fig8.run(scale=SCALE, apps=ONE_APP)
        dram = result["avg_speedups"]["conven4+repl"]
        nb = result["avg_speedups"]["conven4+replMC"]
        assert nb <= dram * 1.05
        assert nb > dram * 0.7

    def test_fig9_one_app(self):
        result = fig9.run(scale=SCALE, apps=ONE_APP, configs=("repl",))
        group = result["groups"]["repl"]
        assert "avg-other-7" in group
        breakdown = group["avg-other-7"]
        assert 0.0 < breakdown.coverage <= 1.0

    def test_fig10_one_app(self):
        bars = fig10.run(scale=SCALE, apps=ONE_APP,
                         configs=("repl", "replMC"))
        by_name = {b.config: b for b in bars}
        assert by_name["repl"].occupancy < 200
        assert by_name["replMC"].response > by_name["repl"].response
        assert by_name["repl"].ipc > 0

    def test_fig11_one_app(self):
        bars = fig11.run(scale=SCALE, apps=ONE_APP,
                         configs=("nopref", "repl"))
        by_name = {b.config: b for b in bars}
        assert by_name["nopref"].prefetch_part == 0.0
        assert by_name["repl"].prefetch_part > 0.0
        assert 0 < by_name["repl"].utilization < 1


class TestCommon:
    def test_format_table(self):
        text = common.format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                                   title="T")
        assert "T" in text and "333" in text

    def test_resolve_scale(self):
        assert common.resolve_scale(0.5) == 0.5
        assert common.resolve_scale(None) == common.DEFAULT_SCALE

    def test_cached_run_reuses_results(self):
        r1 = common.cached_run("mcf", "nopref", SCALE)
        r2 = common.cached_run("mcf", "nopref", SCALE)
        assert r1 is r2

    def test_fmt_pct(self):
        assert common.fmt(1.234) == "1.23"
        assert common.pct(0.5) == "50%"
