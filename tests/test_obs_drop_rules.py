"""Direct unit tests for the four Section-2.1 L2 drop rules via trace events.

Each rule is driven in isolation against a small L2 with the tracer
installed (schema checking on), asserting the ``l2.push.<rule>`` event,
the metrics counter, and the matching ``L2Stats`` field all move
together.  The steal and fill outcomes get the same treatment, plus the
event-schema invariants the golden battery relies on.
"""

import pytest

from repro.memsys.l2 import L2Cache
from repro.obs.events import EVENT_KINDS, L2_DROP_RULES, TraceEvent, make_info
from repro.obs.tracer import Tracer, event_json_line
from repro.params import CacheParams

#: 4 KB, 2-way, 64 B lines -> 32 sets: small enough to exercise set
#: pressure with a handful of addresses.
SMALL_L2 = CacheParams(size_bytes=4 * 1024, assoc=2, line_bytes=64,
                       hit_cycles=19)


def make_l2(mshr_capacity: int = 4) -> tuple[L2Cache, Tracer]:
    l2 = L2Cache(SMALL_L2, mshr_capacity=mshr_capacity)
    tracer = Tracer(check_kinds=True)
    l2.tracer = tracer
    return l2, tracer


def push_events(tracer: Tracer) -> list[TraceEvent]:
    return [e for e in tracer.events if e.kind.startswith("l2.push.")]


class TestDropRules:
    def test_rule1_redundant(self):
        """The cache already holds the line."""
        l2, tracer = make_l2()
        assert l2.accept_prefetch(5, now=10) == "filled"
        assert l2.accept_prefetch(5, now=20) == "redundant"
        assert l2.stats.redundant_prefetches == 1
        last = push_events(tracer)[-1]
        assert last.kind == "l2.push.redundant"
        assert last.cycle == 20 and last.addr == 5
        assert tracer.metrics.snapshot()["counters"]["l2.push.redundant"] == 1

    def test_rule2_writeback_match(self):
        """The write-back queue holds the line."""
        l2, tracer = make_l2()
        l2.writeback_queue.push(7)
        assert l2.accept_prefetch(7, now=0) == "writeback_match"
        assert l2.stats.dropped_writeback_match == 1
        assert push_events(tracer)[-1].kind == "l2.push.writeback_match"

    def test_rule3_mshr_full(self):
        """All MSHRs are busy with other lines."""
        l2, tracer = make_l2(mshr_capacity=2)
        l2.register_demand_miss(1, False, now=0, completion_time=1000)
        l2.register_demand_miss(2, False, now=0, completion_time=1000)
        assert l2.accept_prefetch(3, now=10) == "mshr_full"
        assert l2.stats.dropped_mshr_full == 1
        assert push_events(tracer)[-1].kind == "l2.push.mshr_full"

    def test_rule4_set_pending(self):
        """Every line in the target set is transaction-pending."""
        l2, tracer = make_l2(mshr_capacity=4)
        # Lines 32 and 64 both map to set 0 (32 sets); assoc is 2, so two
        # pending transactions saturate the set while MSHRs stay half free.
        l2.register_demand_miss(32, False, now=0, completion_time=1000)
        l2.register_demand_miss(64, False, now=0, completion_time=1000)
        assert not l2.mshrs.full
        assert l2.accept_prefetch(96, now=10) == "set_pending"
        assert l2.stats.dropped_set_pending == 1
        assert push_events(tracer)[-1].kind == "l2.push.set_pending"

    def test_rule_order_redundant_before_writeback(self):
        """Rules fire in the order the hardware checks them."""
        l2, tracer = make_l2()
        assert l2.accept_prefetch(5, now=0) == "filled"
        l2.writeback_queue.push(5)
        assert l2.accept_prefetch(5, now=1) == "redundant"

    def test_every_drop_rule_has_an_event_kind(self):
        for rule in L2_DROP_RULES:
            assert f"l2.push.{rule}" in EVENT_KINDS


class TestStealAndFill:
    def test_mshr_steal(self):
        """A push for a pending demand line acts as its reply."""
        l2, tracer = make_l2()
        l2.register_demand_miss(9, False, now=0, completion_time=1000)
        assert l2.accept_prefetch(9, now=5) == "steal"
        assert l2.mshrs.lookup(9) is None          # MSHR freed early
        assert l2.cache.contains(9)                # line installed
        assert push_events(tracer)[-1].kind == "l2.push.steal"

    def test_fill_counts_accepted(self):
        l2, tracer = make_l2()
        assert l2.accept_prefetch(11, now=0) == "filled"
        assert l2.stats.accepted_prefetches == 1
        assert push_events(tracer)[-1].kind == "l2.push.filled"

    def test_untraced_l2_emits_nothing(self):
        """The disabled path: same outcomes, no tracer, no events."""
        l2 = L2Cache(SMALL_L2, mshr_capacity=4)
        assert l2.tracer is None
        assert l2.accept_prefetch(5, now=0) == "filled"
        assert l2.accept_prefetch(5, now=1) == "redundant"
        assert l2.stats.redundant_prefetches == 1


class TestEventSchema:
    def test_unknown_kind_rejected_by_checking_tracer(self):
        tracer = Tracer(check_kinds=True)
        with pytest.raises(ValueError):
            tracer.emit("l2.push.nonsense", 0, 1)

    def test_unknown_kind_rejected_on_decode(self):
        with pytest.raises(ValueError):
            TraceEvent.from_dict({"kind": "nope", "cycle": 0})

    def test_event_roundtrip(self):
        event = TraceEvent(kind="q2.enqueue", cycle=42, addr=7,
                           info=make_info(depth=3))
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_info_keys_sorted_regardless_of_call_order(self):
        tracer = Tracer()
        tracer.emit("q1.issue", 1, 2, source="demand", complete=9)
        tracer.emit("q1.issue", 1, 2, complete=9, source="demand")
        assert tracer.events[0] == tracer.events[1]
        assert event_json_line(tracer.events[0]) == event_json_line(
            tracer.events[1])

    def test_json_line_is_compact_and_sorted(self):
        event = TraceEvent(kind="q1.issue", cycle=5, addr=3,
                           info=make_info(source="demand"))
        assert event_json_line(event) == (
            '{"addr":3,"cycle":5,"kind":"q1.issue","source":"demand"}')

    def test_kind_counts_sorted(self):
        tracer = Tracer()
        tracer.emit("q3.enqueue", 0, 1)
        tracer.emit("q1.issue", 1, 2)
        tracer.emit("q3.enqueue", 2, 3)
        assert tracer.kind_counts() == {"q1.issue": 1, "q3.enqueue": 2}
        assert len(tracer) == 3
