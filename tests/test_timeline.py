"""Tests for the interval/phase analysis."""

import pytest

from repro.analysis.timeline import Interval, Timeline, measure_timeline
from repro.workloads.trace import MemRef, Trace


def two_phase_trace() -> Trace:
    """Phase A: tiny working set (hits).  Phase B: streaming misses."""
    refs = [MemRef((i % 8) * 64, False, 4, False) for i in range(4000)]
    refs += [MemRef((1000 + i) * 64, False, 4, False) for i in range(4000)]
    return Trace(refs, name="phases")


class TestInterval:
    def test_miss_rate(self):
        iv = Interval(index=0, refs=100, l2_misses=25)
        assert iv.miss_rate == pytest.approx(0.25)

    def test_coverage(self):
        iv = Interval(index=0, refs=100, l2_misses=30, prefetch_hits=50,
                      delayed_hits=20)
        assert iv.coverage == pytest.approx(0.7)

    def test_empty_interval(self):
        iv = Interval(index=0)
        assert iv.miss_rate == 0.0
        assert iv.coverage == 0.0


class TestMeasureTimeline:
    def test_phase_structure_visible(self):
        timeline = measure_timeline(two_phase_trace(), "nopref",
                                    intervals=8)
        rates = [iv.miss_rate for iv in timeline.intervals]
        # First half nearly no misses; second half misses heavily.
        assert max(rates[:3]) < 0.05
        assert min(rates[5:]) > 0.2

    def test_interval_refs_sum_to_trace(self):
        trace = two_phase_trace()
        timeline = measure_timeline(trace, "nopref", intervals=7)
        assert sum(iv.refs for iv in timeline.intervals) == len(trace)

    def test_hottest_interval(self):
        timeline = measure_timeline(two_phase_trace(), "nopref",
                                    intervals=8)
        assert timeline.hottest_interval().index >= 4

    def test_coverage_trend_with_prefetching(self):
        """Coverage ramps up as the table warms (repeated chase)."""
        import random
        rng = random.Random(4)
        order = list(range(12000))
        rng.shuffle(order)
        refs = [MemRef(l * 64, False, 4, True)
                for _ in range(3) for l in order]
        timeline = measure_timeline(Trace(refs, name="chase"), "repl",
                                    intervals=6)
        trend = timeline.coverage_trend()
        # Later intervals (iterations 2-3) covered; the first is cold.
        assert trend[0] < 0.2
        assert max(trend[2:]) > 0.4

    def test_named_workload(self):
        timeline = measure_timeline("tree", "nopref", intervals=4,
                                    scale=0.05)
        assert timeline.workload == "tree"
        assert len(timeline.intervals) == 4
