"""Tests for the ULMT loop and its cost model."""

import pytest

from repro.core.cost_model import CostConstants, UlmtCostModel
from repro.core.customization import build_algorithm
from repro.core.ulmt import Ulmt
from repro.memsys.controller import MemoryController
from repro.params import QueueParams


def make_ulmt(algorithm="repl", verbose=False,
              queue_depth=16) -> Ulmt:
    ctrl = MemoryController()
    cm = UlmtCostModel(ctrl)
    return Ulmt(build_algorithm(algorithm), cm,
                queue_params=QueueParams(queue_depth=queue_depth),
                verbose=verbose)


class TestObservationFlow:
    def test_first_miss_generates_no_prefetches(self):
        u = make_ulmt()
        assert u.observe_miss(100, now=0) == []

    def test_repeating_sequence_generates_prefetches(self):
        u = make_ulmt()
        seq = [100, 200, 300, 400]
        t = 0
        for miss in seq:
            u.observe_miss(miss, t)
            t += 1000
        issued = u.observe_miss(100, t)
        addrs = [p.line_addr for p in issued]
        assert addrs == [200, 300, 400]

    def test_prefetch_issue_time_after_response(self):
        u = make_ulmt()
        seq = [100 * k for k in range(1, 40)]  # long enough to roll the
        t = 0                                  # 32-entry Filter window over
        for miss in seq:
            u.observe_miss(miss, t)
            t += 1000
        issued = u.observe_miss(seq[0], t)
        assert issued and all(p.issue_time > t for p in issued)

    def test_busy_ulmt_queues_misses(self):
        u = make_ulmt()
        u.observe_miss(100, 0)
        assert u.free_at > 0
        # A miss arriving while the thread is busy waits in queue 2.
        u.observe_miss(200, 1)
        assert len(u.obs_queue) == 1

    def test_queue_overflow_drops(self):
        u = make_ulmt(queue_depth=2)
        u.observe_miss(100, 0)   # processing
        for addr in (200, 300, 400, 500):
            u.observe_miss(addr, 1)
        assert u.stats.misses_dropped > 0
        assert len(u.obs_queue) == 2

    def test_drain_processes_backlog(self):
        u = make_ulmt()
        u.observe_miss(100, 0)
        u.observe_miss(200, 1)
        u.observe_miss(300, 2)
        u.drain(up_to=10_000_000)
        assert u.stats.misses_processed == 3
        assert len(u.obs_queue) == 0

    def test_drain_all(self):
        u = make_ulmt()
        u.observe_miss(100, 0)
        u.observe_miss(200, 1)
        u.drain_all()
        assert len(u.obs_queue) == 0


class TestVerboseMode:
    def test_non_verbose_ignores_processor_prefetches(self):
        u = make_ulmt(verbose=False)
        u.observe_miss(100, 0, is_processor_prefetch=True)
        assert u.stats.misses_observed == 0

    def test_verbose_sees_processor_prefetches(self):
        u = make_ulmt(verbose=True)
        u.observe_miss(100, 0, is_processor_prefetch=True)
        assert u.stats.misses_observed == 1


class TestFilterIntegration:
    def test_repeated_prefetches_filtered(self):
        u = make_ulmt()
        t = 0
        for _ in range(3):
            for miss in (100, 200, 300):
                u.observe_miss(miss, t)
                t += 1000
        # The same successors keep being generated; the Filter drops the
        # repeats that fall within its 32-entry window.
        assert u.stats.prefetches_filtered > 0


class TestCancelObservation:
    def test_cross_match_removes_queued_miss(self):
        u = make_ulmt()
        u.observe_miss(100, 0)
        u.observe_miss(200, 1)   # queued
        assert u.cancel_observation(200)
        u.drain_all()
        assert u.stats.misses_processed == 1


class TestCostModel:
    def test_response_within_occupancy(self):
        ctrl = MemoryController()
        cm = UlmtCostModel(ctrl)
        u = Ulmt(build_algorithm("repl"), cm)
        for t, miss in enumerate([100, 200, 300, 100, 200, 300]):
            u.observe_miss(miss, t * 2000)
        assert cm.avg_response <= cm.avg_occupancy
        assert cm.avg_response > 0

    def test_occupancy_accumulates_learning(self):
        ctrl = MemoryController()
        cm = UlmtCostModel(ctrl)
        cm.begin(0)
        cm.charge_search(2, 0x8000_0000)
        cm.mark_response()
        cm.charge_row_access(0x8000_0040)
        obs = cm.end()
        assert obs.occupancy > obs.response

    def test_second_mark_response_ignored(self):
        cm = UlmtCostModel(MemoryController())
        cm.begin(0)
        cm.charge_instructions(10)
        cm.mark_response()
        first = cm._response
        cm.charge_instructions(100)
        cm.mark_response()
        assert cm._response == first

    def test_table_cache_miss_stalls(self):
        cm = UlmtCostModel(MemoryController())
        cm.begin(0)
        cm.charge_row_access(0x8000_0000)   # cold: memory round trip
        obs1 = cm.end()
        cm.begin(10_000)
        cm.charge_row_access(0x8000_0000)   # now cached
        obs2 = cm.end()
        assert obs1.mem_stall > 0
        assert obs2.mem_stall == 0

    def test_ipc_definition(self):
        cm = UlmtCostModel(MemoryController(),
                           CostConstants(issue_ipc=1.0, cache_hit_cycles=0))
        cm.begin(0)
        cm.charge_instructions(50)
        cm.end()
        # 50 instructions at issue_ipc=1 -> 50 memproc cycles, no stalls.
        assert cm.ipc == pytest.approx(1.0)
