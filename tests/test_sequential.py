"""Tests for stream detection and the Seq1/Seq4 ULMT algorithms."""

import pytest

from repro.core.sequential import SequentialUlmtPrefetcher, StreamDetector
from repro.params import SequentialParams

P4 = SequentialParams(num_seq=4, num_pref=6)
P1 = SequentialParams(num_seq=1, num_pref=6)


class TestRecognition:
    def test_third_miss_recognizes_stream(self):
        d = StreamDetector(P4)
        assert d.observe(100) == []
        assert d.observe(101) == []
        burst = d.observe(102)
        assert burst == [103, 104, 105, 106, 107, 108]
        assert d.streams_recognized == 1

    def test_negative_stride(self):
        d = StreamDetector(P4)
        d.observe(100)
        d.observe(99)
        burst = d.observe(98)
        assert burst == [97, 96, 95, 94, 93, 92]

    def test_random_misses_never_recognize(self):
        d = StreamDetector(P4)
        for addr in (10, 500, 90, 7000, 42, 333):
            assert d.observe(addr) == []
        assert d.streams_recognized == 0

    def test_interleaved_streams(self):
        """Two interleaved streams are both recognised (the unscrambling
        case the paper's CG customisation discusses)."""
        d = StreamDetector(P4)
        bursts = []
        for i in range(4):
            bursts.append(d.observe(100 + i))
            bursts.append(d.observe(9000 + i))
        assert d.streams_recognized == 2

    def test_stream_capacity_lru(self):
        d = StreamDetector(SequentialParams(num_seq=1, num_pref=2))
        d.observe(100), d.observe(101), d.observe(102)
        d.observe(900), d.observe(901), d.observe(902)
        assert d.active_streams == 1  # stream 100 was evicted


class TestTopUp:
    def test_miss_at_window_edge_continues_stream(self):
        d = StreamDetector(P4)
        d.observe(100), d.observe(101)
        d.observe(102)  # burst 103..108, next_pf = 109
        burst = d.observe(109)
        assert burst[0] == 109
        assert len(burst) == 6

    def test_consumed_tops_up_lookahead(self):
        d = StreamDetector(P4)
        d.observe(100), d.observe(101), d.observe(102)
        # Consuming line 103 (late prefetch) keeps lookahead at 6 lines.
        extra = d.consumed(103)
        assert extra == [109]

    def test_consumed_outside_window_is_noop(self):
        d = StreamDetector(P4)
        d.observe(100), d.observe(101), d.observe(102)
        assert d.consumed(500) == []

    def test_miss_inside_window_partial_topup(self):
        d = StreamDetector(P4)
        d.observe(100), d.observe(101), d.observe(102)  # next_pf = 109
        burst = d.observe(106)
        assert burst == [109, 110, 111, 112]  # lookahead back to 6


class TestPredictionMode:
    def test_observe_for_prediction_tracks_stream(self):
        d = StreamDetector(P4)
        for addr in (100, 101, 102):
            d.observe_for_prediction(addr)
        preds = d.predict_levels(3)
        assert preds[0] == [103]
        assert preds[1] == [104]
        assert preds[2] == [105]

    def test_prediction_advances_one_line_at_a_time(self):
        d = StreamDetector(P4)
        for addr in (100, 101, 102, 103):
            d.observe_for_prediction(addr)
        assert d.predict_levels(1)[0] == [104]


class TestSequentialUlmtPrefetcher:
    def test_name_reflects_streams(self):
        assert SequentialUlmtPrefetcher(P1).name == "seq1"
        assert SequentialUlmtPrefetcher(P4).name == "seq4"

    def test_prefetch_step_delegates(self):
        p = SequentialUlmtPrefetcher(P4)
        p.prefetch_step(100)
        p.prefetch_step(101)
        burst = p.prefetch_step(102)
        assert burst == [103, 104, 105, 106, 107, 108]

    def test_learn_is_free(self):
        p = SequentialUlmtPrefetcher(P4)
        p.prefetch_step(100)
        p.learn(100)  # must not break stream state
        p.prefetch_step(101)
        assert p.prefetch_step(102) != []

    def test_reset(self):
        p = SequentialUlmtPrefetcher(P4)
        for a in (100, 101, 102):
            p.prefetch_step(a)
        p.reset()
        assert p.detector.active_streams == 0
