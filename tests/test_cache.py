"""Tests for the set-associative cache model."""

import pytest

from repro.memsys.cache import Cache
from repro.params import CacheParams


def small_cache(assoc: int = 2, sets: int = 4, line: int = 32) -> Cache:
    return Cache(CacheParams(size_bytes=assoc * sets * line, assoc=assoc,
                             line_bytes=line, hit_cycles=1))


class TestBasicOperations:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access(10)
        c.fill(10)
        assert c.access(10)

    def test_line_addr_conversion(self):
        c = small_cache(line=32)
        assert c.line_addr(0) == 0
        assert c.line_addr(31) == 0
        assert c.line_addr(32) == 1
        assert c.line_addr(1000) == 31

    def test_contains_does_not_touch_lru(self):
        c = small_cache(assoc=2)
        c.fill(0)
        c.fill(4)  # same set (4 sets: 0 and 4 map to set 0)
        assert c.contains(0)
        c.fill(8)  # evicts LRU = 0 since contains() didn't refresh it
        assert not c.contains(0)
        assert c.contains(4)
        assert c.contains(8)

    def test_access_refreshes_lru(self):
        c = small_cache(assoc=2)
        c.fill(0)
        c.fill(4)
        c.access(0)        # 0 becomes MRU
        c.fill(8)          # evicts 4
        assert c.contains(0)
        assert not c.contains(4)

    def test_invalidate(self):
        c = small_cache()
        c.fill(3)
        assert c.invalidate(3)
        assert not c.contains(3)
        assert not c.invalidate(3)

    def test_len_counts_resident_lines(self):
        c = small_cache()
        for line in range(5):
            c.fill(line)
        assert len(c) == 5


class TestEvictions:
    def test_eviction_returns_victim(self):
        c = small_cache(assoc=1, sets=2)
        c.fill(0)
        ev = c.fill(2)  # same set in a 2-set cache
        assert ev is not None
        assert ev.line_addr == 0

    def test_dirty_bit_propagates_to_eviction(self):
        c = small_cache(assoc=1, sets=2)
        c.fill(0)
        c.access(0, is_write=True)
        ev = c.fill(2)
        assert ev.dirty

    def test_clean_eviction(self):
        c = small_cache(assoc=1, sets=2)
        c.fill(0)
        ev = c.fill(2)
        assert not ev.dirty

    def test_refill_does_not_evict(self):
        c = small_cache(assoc=1, sets=2)
        c.fill(0)
        assert c.fill(0) is None

    def test_refill_merges_dirty(self):
        c = small_cache(assoc=1, sets=2)
        c.fill(0, dirty=True)
        c.fill(0, dirty=False)
        ev = c.fill(2)
        assert ev.dirty


class TestPrefetchState:
    def test_prefetched_line_starts_unreferenced(self):
        c = small_cache()
        c.fill(7, prefetched=True)
        line = c.peek(7)
        assert line.prefetched
        assert not line.referenced

    def test_demand_fill_starts_referenced(self):
        c = small_cache()
        c.fill(7)
        assert c.peek(7).referenced

    def test_access_marks_referenced(self):
        c = small_cache()
        c.fill(7, prefetched=True)
        c.access(7)
        assert c.peek(7).referenced

    def test_unreferenced_prefetch_eviction_flagged(self):
        c = small_cache(assoc=1, sets=2)
        c.fill(0, prefetched=True)
        ev = c.fill(2)
        assert ev.prefetched
        assert not ev.referenced


class TestValidation:
    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheParams(size_bytes=96, assoc=1, line_bytes=32,
                              hit_cycles=1))

    def test_set_occupancy(self):
        c = small_cache(assoc=2, sets=4)
        c.fill(0)
        c.fill(4)
        assert c.set_occupancy(0) == 2
        assert c.set_occupancy(1) == 0
