"""Tests for the MSHR file."""

import pytest

from repro.memsys.mshr import MshrFile


class TestAllocation:
    def test_allocate_and_lookup(self):
        m = MshrFile(2)
        entry = m.allocate(5, is_prefetch=False, issue_time=0,
                           completion_time=100)
        assert entry is not None
        assert m.lookup(5) is entry
        assert m.lookup(6) is None

    def test_full_returns_none(self):
        m = MshrFile(1)
        assert m.allocate(1, False, 0, 10) is not None
        assert m.allocate(2, False, 0, 10) is None
        assert m.full

    def test_duplicate_allocation_raises(self):
        m = MshrFile(2)
        m.allocate(1, False, 0, 10)
        with pytest.raises(ValueError):
            m.allocate(1, True, 5, 20)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestRetirement:
    def test_retire_completed_frees_entries(self):
        m = MshrFile(4)
        m.allocate(1, False, 0, 10)
        m.allocate(2, False, 0, 20)
        m.allocate(3, True, 0, 30)
        done = m.retire_completed(20)
        assert {e.line_addr for e in done} == {1, 2}
        assert len(m) == 1
        assert m.lookup(3) is not None

    def test_retire_at_exact_completion(self):
        m = MshrFile(1)
        m.allocate(1, False, 0, 10)
        assert len(m.retire_completed(10)) == 1

    def test_free_removes_entry(self):
        m = MshrFile(1)
        m.allocate(1, False, 0, 10)
        entry = m.free(1)
        assert entry.line_addr == 1
        assert not m.full

    def test_free_missing_raises(self):
        m = MshrFile(1)
        with pytest.raises(KeyError):
            m.free(9)

    def test_outstanding_lists_entries(self):
        m = MshrFile(3)
        m.allocate(1, False, 0, 10)
        m.allocate(2, True, 0, 20)
        assert {e.line_addr for e in m.outstanding()} == {1, 2}
