"""Tests for the Base, Chain, and Replicated prefetching algorithms,
including the Figure 4 worked example from the paper."""

import pytest

from repro.core.algorithms import (
    TABLE1_TRAITS,
    BasePrefetcher,
    ChainPrefetcher,
    ReplicatedPrefetcher,
)
from repro.params import CorrelationParams

#: The miss sequence of Figure 4: a, b, c, a, d, c.
A, B, C, D = 100, 200, 300, 400
FIGURE4_SEQUENCE = [A, B, C, A, D, C]


def train(prefetcher, sequence):
    for miss in sequence:
        prefetcher.learn(miss)


class TestBaseFigure4:
    def test_learns_immediate_successors(self):
        p = BasePrefetcher(CorrelationParams(num_succ=2, assoc=4,
                                             num_levels=1, num_rows=64))
        train(p, FIGURE4_SEQUENCE)
        # Figure 4-(a)(ii): row a holds successors {d, b} with d MRU.
        assert p.table.peek(A).successors(0) == [D, B]
        assert p.table.peek(B).successors(0) == [C]
        assert p.table.peek(C).successors(0) == [A]
        assert p.table.peek(D).successors(0) == [C]

    def test_prefetch_on_miss_a(self):
        p = BasePrefetcher(CorrelationParams(num_succ=2, assoc=4,
                                             num_levels=1, num_rows=64))
        train(p, FIGURE4_SEQUENCE)
        # Figure 4-(a)(iii): on a miss on a, prefetch d and b (MRU first).
        assert p.prefetch_step(A) == [D, B]

    def test_unknown_miss_prefetches_nothing(self):
        p = BasePrefetcher()
        train(p, FIGURE4_SEQUENCE)
        assert p.prefetch_step(999) == []

    def test_duplicate_miss_not_self_successor(self):
        p = BasePrefetcher()
        train(p, [A, A, B])
        assert A not in p.table.peek(A).successors(0)


class TestChainFigure4:
    def make(self):
        return ChainPrefetcher(CorrelationParams(num_succ=2, assoc=2,
                                                 num_levels=2, num_rows=64))

    def test_prefetch_follows_mru_chain(self):
        p = self.make()
        train(p, FIGURE4_SEQUENCE)
        # Figure 4-(b)(iii): on miss a prefetch d, b; then follow the MRU
        # link (d) and prefetch its successor c.
        assert p.prefetch_step(A) == [D, B, C]

    def test_chain_misses_off_path_successors(self):
        """The paper's a,b,c,...,b,e,b,f example: Chain prefetches
        successors along the MRU path only, so c is not prefetched."""
        E, F = 500, 600
        p = ChainPrefetcher(CorrelationParams(num_succ=2, assoc=2,
                                              num_levels=2, num_rows=64))
        train(p, [A, B, C, B, E, B, F, A, B])
        prefetches = p.prefetch_step(A)
        assert prefetches[0] == B
        # Row b's NumSucc=2 successors are now {f, e}; c has been evicted,
        # so the level-2 prefetch through b cannot recover it.
        assert E in prefetches and F in prefetches
        assert C not in prefetches


class TestReplicatedFigure4:
    def make(self, levels=2):
        return ReplicatedPrefetcher(CorrelationParams(
            num_succ=2, assoc=2, num_levels=levels, num_rows=64))

    def test_levels_learned(self):
        p = self.make()
        train(p, FIGURE4_SEQUENCE)
        # Figure 4-(c)(ii): row a holds level-1 {d, b} and level-2 {c}.
        row = p.table.peek(A)
        assert row.successors(0) == [D, B]
        assert row.successors(1) == [C]

    def test_prefetch_single_row_all_levels(self):
        p = self.make()
        train(p, FIGURE4_SEQUENCE)
        # Figure 4-(c)(iii): on miss a prefetch d, b, c.
        assert p.prefetch_step(A) == [D, B, C]

    def test_true_mru_across_paths(self):
        """Replicated keeps the true MRU successors per level, catching what
        Chain loses (the paper's a,b,c vs b,e,b,f example)."""
        p = self.make()
        train(p, [A, B, C, 600, B, 500, B, 700, A, B, C])
        prefetches = p.prefetch_step(A)
        assert B in prefetches
        assert C in prefetches   # level-2 successor of a via *its own* path

    def test_pointer_learning_depth(self):
        p = self.make(levels=3)
        train(p, [A, B, C, D])
        # A's row received B (level 1), C (level 2), D (level 3).
        row = p.table.peek(A)
        assert row.successors(0) == [B]
        assert row.successors(1) == [C]
        assert row.successors(2) == [D]

    def test_reset_clears_pointers_not_table(self):
        p = self.make()
        train(p, [A, B])
        p.reset()
        p.learn(C)
        # After the reset, C must not be recorded as a successor of B.
        assert p.table.peek(B).successors(0) == []
        assert p.table.peek(A).successors(0) == [B]


class TestPredictLevels:
    def test_base_predicts_level1_only(self):
        p = BasePrefetcher()
        train(p, [A, B, A])
        preds = p.predict_levels(3)
        assert preds[0] == [B]
        assert preds[1] == [] and preds[2] == []

    def test_repl_predicts_all_levels(self):
        p = ReplicatedPrefetcher()
        train(p, [A, B, C, D, A])
        preds = p.predict_levels(3)
        assert preds[0] == [B]
        assert preds[1] == [C]
        assert preds[2] == [D]

    def test_empty_state(self):
        for p in (BasePrefetcher(), ChainPrefetcher(), ReplicatedPrefetcher()):
            assert p.predict_levels(3) == [[], [], []]


class TestTable1Traits:
    def test_three_algorithms(self):
        names = [t.name for t in TABLE1_TRAITS]
        assert names == ["Base", "Chain", "Replicated"]

    def test_replicated_combines_best_properties(self):
        base, chain, repl = TABLE1_TRAITS
        assert repl.levels_prefetched == "NumLevels"
        assert repl.true_mru_per_level
        assert repl.prefetch_row_accesses == "1"
        assert repl.response_time == "Low"
        assert not chain.true_mru_per_level
        assert chain.response_time == "High"
        assert base.levels_prefetched == "1"
