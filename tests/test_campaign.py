"""Tests for the campaign driver (:mod:`repro.campaign`).

The contract: ``run_table.csv`` has one row per run×repetition in spec
order; a resumed campaign reproduces the uninterrupted table byte for
byte; quarantined cells become typed rows (and a nonzero exit code), not
lost runs; a directory holding a different campaign refuses to be
overwritten or resumed.
"""

import pytest

from repro.campaign import (EXIT_QUARANTINED, CampaignError, CampaignSpec,
                            run_campaign)
from repro.campaign.runner import RUN_TABLE_COLUMNS, render_run_table
from repro.faults.process import PROCESS_FAULTS_ENV
from repro.perf.retry import RetryPolicy

SPEC = CampaignSpec(apps=("tree",), configs=("nopref", "repl"),
                    scale=0.02, repetitions=2, base_seed=0)

FAST = RetryPolicy(max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.02,
                   jitter=0.0)


def _run(out_dir, spec=SPEC, **kwargs):
    kwargs.setdefault("policy", FAST)
    kwargs.setdefault("verbose", False)
    return run_campaign(spec, out_dir, **kwargs)


@pytest.fixture(scope="module")
def complete(tmp_path_factory):
    """One uninterrupted campaign, shared by the read-only tests."""
    out = tmp_path_factory.mktemp("campaign")
    return _run(out)


class TestSpec:
    def test_round_trips_through_header_dict(self):
        assert CampaignSpec.from_dict(SPEC.to_dict()) == SPEC

    def test_enumerates_app_config_rep_cells(self):
        tasks = SPEC.tasks()
        assert len(tasks) == 4
        assert [t.seed for t in tasks] == [0, 1, 0, 1]
        assert SPEC.row_keys() == [("tree", "nopref", 0),
                                   ("tree", "nopref", 1),
                                   ("tree", "repl", 0),
                                   ("tree", "repl", 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(apps=(), configs=("repl",))
        with pytest.raises(ValueError):
            CampaignSpec(apps=("tree",), configs=("repl",), repetitions=0)

    def test_fault_plan_spares_the_baseline(self):
        spec = CampaignSpec(apps=("tree",), configs=("nopref", "repl"),
                            faults="obs_drop=0.05", fault_seed=7)
        assert spec.resolve_config("tree", "nopref").fault_plan is None
        assert spec.resolve_config("tree", "repl").fault_plan is not None


class TestRunTable:
    def test_one_row_per_cell_in_spec_order(self, complete):
        assert complete.exit_code == 0
        assert [r["status"] for r in complete.rows] == ["ok"] * 4
        assert [(r["app"], r["config"], r["repetition"])
                for r in complete.rows] \
            == [("tree", "nopref", "0"), ("tree", "nopref", "1"),
                ("tree", "repl", "0"), ("tree", "repl", "1")]

    def test_repetitions_sweep_the_workload_seed(self, complete):
        rep0, rep1 = complete.rows[2], complete.rows[3]
        assert (rep0["seed"], rep1["seed"]) == ("0", "1")
        # Different trace layouts -> genuinely different measurements.
        assert rep0["execution_time"] != rep1["execution_time"]

    def test_speedup_is_relative_to_same_rep_baseline(self, complete):
        for rep in (0, 1):
            base = int(complete.rows[rep]["execution_time"])
            repl = complete.rows[2 + rep]
            expected = base / int(repl["execution_time"])
            assert repl["speedup"] == f"{expected:.6f}"
            assert complete.rows[rep]["speedup"] == "1.000000"

    def test_artifacts_written(self, complete):
        assert complete.run_table_path.read_text().startswith(
            ",".join(RUN_TABLE_COLUMNS))
        assert (complete.out_dir / "failures.json").read_text() == "[]\n"
        assert '"campaign.completed":4' in \
            (complete.out_dir / "metrics.json").read_text()


class TestResume:
    def test_fresh_run_refuses_existing_journal(self, complete):
        with pytest.raises(CampaignError):
            _run(complete.out_dir)

    def test_resume_refuses_missing_header(self, tmp_path):
        (tmp_path / "journal.jsonl").write_text(
            '{"event":"start","task":"d","label":"x","attempt":1}\n')
        with pytest.raises(CampaignError):
            _run(tmp_path, resume=True)

    def test_resume_refuses_different_spec(self, complete):
        other = CampaignSpec(apps=("tree",), configs=("nopref",),
                             scale=0.02)
        with pytest.raises(CampaignError):
            _run(complete.out_dir, spec=other, resume=True)

    def test_resume_after_kill_is_byte_identical(self, complete, tmp_path):
        # Replay the SIGKILL shape: header + one finish + a torn line.
        reference = complete.run_table_path.read_bytes()
        out = tmp_path / "resumed"
        out.mkdir()
        lines = (complete.out_dir / "journal.jsonl") \
            .read_text().splitlines(keepends=True)
        keep = [lines[0]] + [line for line in lines
                             if '"finish"' in line][:1]
        (out / "journal.jsonl").write_text(
            "".join(keep) + '{"event":"finish","task":"torn')
        outcome = _run(out, resume=True)
        assert outcome.exit_code == 0
        assert outcome.run.counters["resumed"] == 1
        assert outcome.run.counters["completed"] == 3
        assert outcome.run_table_path.read_bytes() == reference


class TestQuarantine:
    def test_poison_cell_becomes_a_failed_row(self, tmp_path, monkeypatch):
        # Poison exactly one repetition of the baseline: its row fails,
        # and the repl row of the same repetition loses only its speedup.
        monkeypatch.setenv(PROCESS_FAULTS_ENV, "tree/nopref#1@*=raise")
        outcome = _run(tmp_path / "camp", policy=RetryPolicy(
            max_attempts=1, jitter=0.0))
        assert outcome.exit_code == EXIT_QUARANTINED
        statuses = [r["status"] for r in outcome.rows]
        assert statuses == ["ok", "error", "ok", "ok"]
        failed = outcome.rows[1]
        assert failed["execution_time"] == ""
        assert failed["attempts"] == "1"
        assert outcome.rows[3]["speedup"] == ""      # baseline rep lost
        assert outcome.rows[2]["speedup"] != ""      # sibling rep intact
        assert '"kind":"error"' in \
            (outcome.out_dir / "failures.json").read_text()


class TestRender:
    def test_missing_column_would_be_loud(self):
        with pytest.raises(KeyError):
            render_run_table([{"app": "tree"}])
