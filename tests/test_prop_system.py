"""System-level property tests: invariants of full simulations on random
(small) traces under every prefetching configuration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.driver import run_simulation
from repro.workloads.trace import MemRef, Trace

CONFIGS = ("nopref", "conven4", "base", "repl", "dasp")

trace_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4000),   # L2 line
        st.booleans(),                              # write
        st.integers(min_value=0, max_value=12),     # comp
        st.booleans(),                              # dependent
    ),
    min_size=20, max_size=250,
)


def to_trace(raw) -> Trace:
    return Trace([MemRef(line * 64, w, c, d) for line, w, c, d in raw],
                 name="prop")


class TestSystemInvariants:
    @given(trace_strategy, st.sampled_from(CONFIGS))
    @settings(max_examples=50, deadline=None)
    def test_bounded_metrics(self, raw, config):
        result = run_simulation(to_trace(raw), config)
        assert result.execution_time >= 0
        assert 0.0 <= result.coverage() <= 1.0
        assert 0.0 <= result.bus_utilization() <= 1.0
        assert result.bus_prefetch_utilization() <= result.bus_utilization() + 1e-9
        mb = result.miss_breakdown()
        assert all(v >= 0 for v in mb.values())

    @given(trace_strategy, st.sampled_from(CONFIGS))
    @settings(max_examples=40, deadline=None)
    def test_accounting_identity_holds_under_prefetching(self, raw, config):
        result = run_simulation(to_trace(raw), config)
        p = result.processor
        assert p.finish_time == (p.busy_cycles + p.uptol2_stall
                                 + p.beyondl2_stall)

    @given(trace_strategy)
    @settings(max_examples=30, deadline=None)
    def test_miss_conservation(self, raw):
        """Misses to memory + merges never exceed L1 misses; every Figure 9
        category is consistent with the run's own counters."""
        result = run_simulation(to_trace(raw), "repl")
        l2 = result.l2
        assert l2.nonpref_misses <= l2.demand_accesses
        assert l2.prefetch_hits + l2.delayed_hits <= l2.demand_accesses
        assert result.demand_misses_to_memory >= l2.nonpref_misses - l2.merged_with_prefetch

    @given(trace_strategy)
    @settings(max_examples=30, deadline=None)
    def test_ulmt_queue_counters_consistent(self, raw):
        result = run_simulation(to_trace(raw), "repl")
        u = result.ulmt
        assert u.misses_processed + u.misses_dropped <= u.misses_observed
        assert u.prefetches_generated + u.prefetches_filtered >= 0

    @given(trace_strategy)
    @settings(max_examples=30, deadline=None)
    def test_nopref_issues_no_prefetch_traffic(self, raw):
        result = run_simulation(to_trace(raw), "nopref")
        assert result.prefetches_issued_to_memory == 0
        assert result.bus.prefetch_cycles == 0
