"""Tests for queues 2/3 and the write-back queue."""

import pytest

from repro.memsys.queues import (
    ObservationQueue,
    ObservedMiss,
    PrefetchQueue,
    PrefetchRequest,
    WritebackQueue,
)


class TestObservationQueue:
    def test_fifo_order(self):
        q = ObservationQueue(4)
        q.push(ObservedMiss(1, 10))
        q.push(ObservedMiss(2, 20))
        assert q.pop().line_addr == 1
        assert q.pop().line_addr == 2
        assert q.pop() is None

    def test_overflow_drops(self):
        q = ObservationQueue(2)
        assert q.push(ObservedMiss(1, 0))
        assert q.push(ObservedMiss(2, 0))
        assert not q.push(ObservedMiss(3, 0))
        assert q.dropped_overflow == 1
        assert len(q) == 2

    def test_cross_match_removal(self):
        q = ObservationQueue(4)
        q.push(ObservedMiss(1, 0))
        q.push(ObservedMiss(2, 0))
        assert q.remove_address(1)
        assert q.dropped_matched == 1
        assert q.pop().line_addr == 2

    def test_remove_missing_address(self):
        q = ObservationQueue(4)
        q.push(ObservedMiss(1, 0))
        assert not q.remove_address(9)
        assert len(q) == 1

    def test_peek_does_not_pop(self):
        q = ObservationQueue(4)
        q.push(ObservedMiss(5, 0))
        assert q.peek().line_addr == 5
        assert len(q) == 1

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ObservationQueue(0)


class TestPrefetchQueue:
    def test_fifo_and_push_front(self):
        q = PrefetchQueue(4)
        q.push(PrefetchRequest(1, 10))
        q.push(PrefetchRequest(2, 20))
        head = q.pop()
        q.push_front(head)
        assert q.pop().line_addr == 1

    def test_overflow(self):
        q = PrefetchQueue(1)
        assert q.push(PrefetchRequest(1, 0))
        assert not q.push(PrefetchRequest(2, 0))
        assert q.dropped_overflow == 1

    def test_cancel_by_demand(self):
        q = PrefetchQueue(4)
        q.push(PrefetchRequest(1, 0))
        q.push(PrefetchRequest(2, 0))
        assert q.cancel_address(1)
        assert q.cancelled_by_demand == 1
        assert not q.contains(1)
        assert q.contains(2)

    def test_cancel_missing(self):
        q = PrefetchQueue(4)
        assert not q.cancel_address(7)


class TestWritebackQueue:
    def test_drain_when_over_depth(self):
        q = WritebackQueue(2)
        assert q.push(1) is None
        assert q.push(2) is None
        drained = q.push(3)
        assert drained == 1  # oldest drains first
        assert len(q) == 2

    def test_contains_and_remove(self):
        q = WritebackQueue(4)
        q.push(5)
        assert q.contains(5)
        assert q.remove(5)
        assert not q.contains(5)
        assert not q.remove(5)

    def test_drain_all(self):
        q = WritebackQueue(4)
        q.push(1)
        q.push(2)
        assert q.drain_all() == [1, 2]
        assert len(q) == 0
