"""Deep per-workload tests: each application's miss-pattern claims.

These pin down the properties the Figure 5/6/7 reproductions depend on —
which access streams exist, what repeats, and what is scattered — so a
refactor of a workload cannot silently change its character.
"""

import pytest

from repro.workloads import cg, equake, ft, gap, mcf, mst, parser, sparse, tree
from repro.workloads.trace import Trace

SMALL = 0.05


def lines_of(trace: Trace) -> list[int]:
    return trace.line_addresses(64)


def repeat_fraction(lines: list[int]) -> float:
    """Fraction of line touches that are revisits."""
    return 1.0 - len(set(lines)) / len(lines)


class TestCg:
    def test_no_pointer_chasing(self):
        trace = cg.generate(scale=SMALL)
        assert trace.num_dependent == 0

    def test_has_interleaved_unit_stride_streams(self):
        """The SpMV inner loop emits values/colidx/x triplets, so the
        values stream advances by one small step every three references —
        the interleaved streams Conven4 must disentangle."""
        trace = cg.generate(scale=SMALL)
        refs = trace.refs
        stride3 = [refs[i + 3].addr - refs[i].addr
                   for i in range(len(refs) - 3)]
        small_positive = sum(1 for d in stride3 if 0 < d <= 64)
        assert small_positive / len(stride3) > 0.3

    def test_footprint_exceeds_l2_at_any_scale(self):
        trace = cg.generate(scale=0.01)
        assert trace.footprint_lines() * 64 > 512 * 1024

    def test_iterations_repeat_spmv(self):
        trace = cg.generate(scale=SMALL)
        lines = lines_of(trace)
        assert repeat_fraction(lines) > 0.4


class TestMcf:
    def test_pointer_chase_dominates(self):
        trace = mcf.generate(scale=SMALL)
        assert trace.num_dependent / len(trace) > 0.6

    def test_thread_order_mostly_repeats(self):
        """Consecutive iterations visit nearly the same node sequence."""
        trace = mcf.generate(scale=SMALL)
        lines = lines_of(trace)
        half = len(lines) // 2
        first, second = lines[:half], lines[half:2 * half]
        # The exchange fraction drifts a few percent of positions per
        # iteration; most positions still line up.
        matches = sum(1 for a, b in zip(first, second) if a == b)
        assert matches / half > 0.5

    def test_node_addresses_scattered(self):
        """No sequential structure: consecutive chase targets are far apart."""
        trace = mcf.generate(scale=SMALL)
        deps = [r for r in trace if r.dependent][:2000]
        adjacent = sum(1 for a, b in zip(deps, deps[1:])
                       if abs(b.addr - a.addr) <= 64)
        assert adjacent / len(deps) < 0.2


class TestMst:
    def test_phase_structure_repeats_vertex_order(self):
        trace = mst.generate(scale=SMALL)
        assert repeat_fraction(lines_of(trace)) > 0.8

    def test_chain_walks_are_dependent(self):
        trace = mst.generate(scale=SMALL)
        assert trace.num_dependent / len(trace) > 0.3

    def test_footprint_exceeds_l2(self):
        """Table 2: MST needs one of the biggest correlation tables; its
        touched set must exceed the 512 KB L2 even at the scale floor."""
        trace = mst.generate(scale=SMALL)
        assert trace.footprint_lines() * 64 > 512 * 1024


class TestTree:
    def test_walks_are_pointer_chases(self):
        trace = tree.generate(scale=SMALL)
        assert trace.num_dependent / len(trace) > 0.5

    def test_cell_arena_reused_across_steps(self):
        """The second step's tree overlaps the first step's addresses —
        without arena reuse the correlation table would never warm up."""
        trace = tree.generate(scale=SMALL)
        lines = lines_of(trace)
        half = len(lines) // 2
        first, second = set(lines[:half]), set(lines[half:])
        overlap = len(first & second) / len(second)
        assert overlap > 0.5

    def test_footprint_just_beyond_l2(self):
        """Tree's working set barely exceeds the L2 (the conflict story)."""
        trace = tree.generate(scale=1.0)
        footprint = trace.footprint_lines() * 64
        assert 512 * 1024 < footprint < 2 * 512 * 1024


class TestParser:
    def test_every_lookup_is_a_chase(self):
        trace = parser.generate(scale=SMALL)
        assert trace.num_dependent / len(trace) > 0.8

    def test_word_repetition_produces_revisits(self):
        trace = parser.generate(scale=SMALL)
        assert repeat_fraction(lines_of(trace)) > 0.5

    def test_dictionary_exceeds_l2(self):
        trace = parser.generate(scale=SMALL)
        assert trace.footprint_lines() * 64 > 512 * 1024


class TestGap:
    def test_gather_pattern_repeats_across_products(self):
        """The permutations are fixed: the same gather line sequence recurs."""
        trace = gap.generate(scale=SMALL)
        assert repeat_fraction(lines_of(trace)) > 0.4

    def test_mixed_streams_and_gathers(self):
        trace = gap.generate(scale=SMALL)
        frac_dep = trace.num_dependent / len(trace)
        assert 0.1 < frac_dep < 0.6


class TestFt:
    def test_no_dependences(self):
        trace = ft.generate(scale=SMALL)
        assert trace.num_dependent == 0

    def test_strided_phases_have_large_deltas(self):
        """The y/z butterflies jump by >= 1 KB: invisible to a +-1 stream
        detector but perfectly repeating for pair-based prefetching."""
        trace = ft.generate(scale=SMALL)
        deltas = [abs(b.addr - a.addr) for a, b in zip(trace, trace[1:])]
        large = sum(1 for d in deltas if d >= 1024)
        assert large / len(deltas) > 0.2

    def test_iterations_identical(self):
        trace = ft.generate(scale=SMALL)
        lines = lines_of(trace)
        half = len(lines) // 2
        assert lines[:half] == lines[half:2 * half]


class TestEquake:
    def test_mesh_gather_repeats_per_timestep(self):
        trace = equake.generate(scale=SMALL)
        assert repeat_fraction(lines_of(trace)) > 0.5

    def test_mostly_local_neighbours(self):
        """80% of mesh edges are near-diagonal: the displacement gather has
        spatial locality, the rest is long-range."""
        trace = equake.generate(scale=SMALL)
        assert trace.num_dependent > 0


class TestSparse:
    def test_vectors_conflict_aligned(self):
        """The Krylov basis vectors share low-order address bits, mapping
        onto the same L2 sets (the conflict story of Figure 9)."""
        trace = sparse.generate(scale=SMALL)
        # Find the per-vector base addresses by their alignment.
        aligned = {r.addr for r in trace
                   if r.addr % sparse.CONFLICT_ALIGN == 0}
        assert len(aligned) >= sparse.RESTART

    def test_spmv_repeats_within_sweep(self):
        trace = sparse.generate(scale=SMALL)
        assert repeat_fraction(lines_of(trace)) > 0.4
