"""Tests for the OS-integration layer (paper Section 3.4)."""

import pytest

from repro.core.os_support import UlmtRegistry, _tables_of
from repro.core.customization import build_algorithm
from repro.memsys.controller import MemoryController


def make_registry() -> UlmtRegistry:
    return UlmtRegistry(MemoryController())


class TestRegistration:
    def test_register_creates_per_app_ulmt(self):
        reg = make_registry()
        a = reg.register("mcf")
        b = reg.register("tree")
        assert len(reg) == 2
        assert a.ulmt is not b.ulmt

    def test_duplicate_registration_rejected(self):
        reg = make_registry()
        reg.register("mcf")
        with pytest.raises(ValueError):
            reg.register("mcf")

    def test_table5_customization_applied_automatically(self):
        reg = make_registry()
        cg = reg.register("cg")
        assert cg.ulmt.verbose
        assert cg.ulmt.algorithm.name == "seq1+repl"
        mcf = reg.register("mcf")
        # Table 5: Repl with NumLevels = 4.
        assert mcf.ulmt.algorithm.params.num_levels == 4

    def test_explicit_algorithm_overrides_table5(self):
        reg = make_registry()
        entry = reg.register("cg", algorithm="base", verbose=False)
        assert entry.ulmt.algorithm.name == "base"
        assert not entry.ulmt.verbose

    def test_tables_do_not_interfere(self):
        """The central multiprogramming claim: per-app tables."""
        reg = make_registry()
        a = reg.register("appA", algorithm="repl")
        b = reg.register("appB", algorithm="repl")
        for t in (0, 1, 2, 3):
            a.ulmt.observe_miss(100 + t, t * 1000)
        assert len(b.ulmt.algorithm.table) == 0

    def test_tables_live_at_disjoint_addresses(self):
        reg = make_registry()
        a = reg.register("appA", algorithm="repl")
        b = reg.register("appB", algorithm="repl")
        assert (a.ulmt.algorithm.table.base_addr
                != b.ulmt.algorithm.table.base_addr)

    def test_unregister(self):
        reg = make_registry()
        reg.register("a")
        reg.register("b")
        reg.unregister("a")
        assert len(reg) == 1
        assert reg.active == "b"


class TestScheduling:
    def test_first_registered_is_active(self):
        reg = make_registry()
        reg.register("a")
        reg.register("b")
        assert reg.active == "a"

    def test_switch_resets_transient_state_only(self):
        reg = make_registry()
        a = reg.register("a", algorithm="repl")
        reg.register("b", algorithm="repl")
        for t, miss in enumerate((1, 2, 3)):
            a.ulmt.observe_miss(miss, t * 1000)
        rows_before = len(a.ulmt.algorithm.table)
        reg.switch_to("b")
        # The table (in memory) survives; the pointer window does not.
        assert len(a.ulmt.algorithm.table) == rows_before
        assert len(a.ulmt.algorithm._pointers) == 0
        assert a.context_switches == 1

    def test_switch_to_self_is_noop(self):
        reg = make_registry()
        a = reg.register("a")
        reg.switch_to("a")
        assert a.context_switches == 0

    def test_switch_to_unknown_rejected(self):
        reg = make_registry()
        reg.register("a")
        with pytest.raises(KeyError):
            reg.switch_to("ghost")

    def test_observe_routes_to_active(self):
        reg = make_registry()
        a = reg.register("a", algorithm="repl")
        b = reg.register("b", algorithm="repl")
        reg.observe_miss(42, 0)
        reg.switch_to("b")
        reg.observe_miss(43, 10_000)
        assert a.ulmt.stats.misses_observed == 1
        assert b.ulmt.stats.misses_observed == 1


class TestPageRemap:
    def test_remap_relocates_rows(self):
        reg = make_registry()
        entry = reg.register("a", algorithm="repl")
        ulmt = entry.ulmt
        # Misses within page 1 (lines 64..127).
        for t, miss in enumerate((64, 65, 66)):
            ulmt.observe_miss(miss, t * 1000)
        moved = reg.remap_page("a", old_page=1, new_page=9)
        assert moved == 3
        assert entry.pages_remapped == 1
        table = ulmt.algorithm.table
        assert table.peek(9 * 64) is not None
        assert table.peek(64) is None

    def test_remap_for_sequential_ulmt_is_safe(self):
        reg = make_registry()
        reg.register("a", algorithm="seq4")
        assert reg.remap_page("a", 1, 2) == 0


class TestAccounting:
    def test_total_table_bytes(self):
        reg = make_registry()
        reg.register("a", algorithm="repl")
        reg.register("b", algorithm="seq1+repl")
        total = reg.total_table_bytes()
        repl_bytes = build_algorithm("repl").table.size_bytes
        assert total == 2 * repl_bytes  # seq1 has no table

    def test_tables_of_finds_nested(self):
        combined = build_algorithm("repl+base")
        assert len(_tables_of(combined)) == 2
