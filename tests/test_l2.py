"""Tests for the L2 cache with push-prefetch support (paper Section 2.1)."""

import pytest

from repro.memsys.l2 import DemandKind, L2Cache
from repro.params import CacheParams

SMALL_L2 = CacheParams(size_bytes=4 * 4 * 64, assoc=4, line_bytes=64,
                       hit_cycles=19)


def make_l2(mshrs: int = 8) -> L2Cache:
    return L2Cache(SMALL_L2, mshr_capacity=mshrs)


class TestDemandPath:
    def test_cold_miss(self):
        l2 = make_l2()
        outcome = l2.demand_lookup(1, False, 0)
        assert outcome.kind is DemandKind.MISS

    def test_miss_then_fill_then_hit(self):
        l2 = make_l2()
        l2.demand_lookup(1, False, 0)
        l2.register_demand_miss(1, False, 0, 100)
        l2.retire(100)
        outcome = l2.demand_lookup(1, False, 101)
        assert outcome.kind is DemandKind.HIT

    def test_secondary_miss_merges(self):
        l2 = make_l2()
        l2.demand_lookup(1, False, 0)
        l2.register_demand_miss(1, False, 0, 100)
        outcome = l2.demand_lookup(1, False, 50)
        assert outcome.kind is DemandKind.PENDING
        assert outcome.completion_time == 100
        assert not outcome.pending_is_prefetch

    def test_mshr_full_reports_earliest_free(self):
        l2 = make_l2(mshrs=1)
        l2.demand_lookup(1, False, 0)
        l2.register_demand_miss(1, False, 0, 100)
        outcome = l2.demand_lookup(2, False, 10)
        assert outcome.kind is DemandKind.MISS_MSHR_FULL
        assert outcome.earliest_free == 100

    def test_store_miss_fills_dirty(self):
        l2 = make_l2()
        l2.demand_lookup(1, True, 0)
        l2.register_demand_miss(1, True, 0, 100)
        l2.retire(100)
        assert l2.cache.peek(1).dirty


class TestPushPrefetch:
    def test_accept_fills_as_prefetched(self):
        l2 = make_l2()
        assert l2.accept_prefetch(1, 0) == "filled"
        line = l2.cache.peek(1)
        assert line.prefetched and not line.referenced
        assert l2.stats.accepted_prefetches == 1

    def test_redundant_dropped(self):
        """Drop rule 1: the cache already holds the line."""
        l2 = make_l2()
        l2.accept_prefetch(1, 0)
        assert l2.accept_prefetch(1, 5) == "redundant"
        assert l2.stats.redundant_prefetches == 1

    def test_writeback_match_dropped(self):
        """Drop rule 2: the write-back queue holds the line."""
        l2 = make_l2()
        l2.writeback_queue.push(1)
        assert l2.accept_prefetch(1, 0) == "writeback_match"

    def test_mshr_full_dropped(self):
        """Drop rule 3: all MSHRs are busy."""
        l2 = make_l2(mshrs=1)
        l2.register_prefetch_inflight(9, 0, 1000)
        assert l2.accept_prefetch(1, 0) == "mshr_full"
        assert l2.stats.dropped_mshr_full == 1

    def test_set_pending_dropped(self):
        """Drop rule 4: every way of the target set is transaction-pending."""
        l2 = make_l2(mshrs=8)
        # SMALL_L2 has 4 sets; lines 0, 4, 8, 12 all map to set 0.
        for line in (0, 4, 8, 12):
            l2.register_demand_miss(line, False, 0, 10_000)
        assert l2.accept_prefetch(16, 0) == "set_pending"

    def test_steal_pending_demand(self):
        """A prefetched line arriving for a pending demand steals the MSHR."""
        l2 = make_l2()
        l2.demand_lookup(1, False, 0)
        l2.register_demand_miss(1, False, 0, 500)
        assert l2.accept_prefetch(1, 100) == "steal"
        assert l2.cache.contains(1)
        assert l2.mshrs.lookup(1) is None

    def test_prefetch_first_touch_counts_hit(self):
        l2 = make_l2()
        l2.accept_prefetch(1, 0)
        outcome = l2.demand_lookup(1, False, 10)
        assert outcome.kind is DemandKind.HIT
        assert outcome.prefetch_first_touch
        assert l2.stats.prefetch_hits == 1
        # Second touch is an ordinary hit.
        outcome = l2.demand_lookup(1, False, 20)
        assert not outcome.prefetch_first_touch
        assert l2.stats.prefetch_hits == 1


class TestInflightPrefetchMerge:
    def test_demand_merges_with_inflight_prefetch(self):
        l2 = make_l2()
        assert l2.register_prefetch_inflight(1, 0, 300)
        outcome = l2.demand_lookup(1, False, 100)
        assert outcome.kind is DemandKind.PENDING
        assert outcome.pending_is_prefetch
        assert l2.stats.delayed_hits == 1

    def test_merge_after_arrival_counts_full_hit(self):
        l2 = make_l2()
        l2.register_prefetch_inflight(1, 0, 300)
        # demand_lookup retires completed MSHRs first, so at t=300 the line
        # is already installed and this is a plain prefetched-line hit.
        outcome = l2.demand_lookup(1, False, 300)
        assert outcome.kind is DemandKind.HIT
        assert l2.stats.prefetch_hits == 1

    def test_register_inflight_rejects_duplicates(self):
        l2 = make_l2()
        assert l2.register_prefetch_inflight(1, 0, 300)
        assert not l2.register_prefetch_inflight(1, 10, 400)


class TestReplacedClassification:
    def test_unreferenced_prefetch_eviction_counted(self):
        l2 = make_l2()
        # Fill set 0 (lines 0,4,8,12) with prefetches, then push one more.
        for line in (0, 4, 8, 12):
            l2.accept_prefetch(line, 0)
        l2.accept_prefetch(16, 10)
        assert l2.stats.replaced_prefetches == 1

    def test_referenced_prefetch_eviction_not_counted(self):
        l2 = make_l2()
        for line in (0, 4, 8, 12):
            l2.accept_prefetch(line, 0)
            l2.demand_lookup(line, False, 1)
        l2.accept_prefetch(16, 10)
        assert l2.stats.replaced_prefetches == 0


class TestWritebacks:
    def test_dirty_eviction_enters_writeback_queue(self):
        l2 = make_l2()
        for line in (0, 4, 8, 12):
            l2.demand_lookup(line, True, 0)
            l2.register_demand_miss(line, True, 0, 1)
        l2.retire(1)
        l2.demand_lookup(16, False, 2)
        l2.register_demand_miss(16, False, 2, 3)
        l2.retire(3)
        assert len(l2.writeback_queue) == 1

    def test_flush_writebacks(self):
        l2 = make_l2()
        l2.writeback_queue.push(3)
        l2.writeback_queue.push(7)
        assert l2.flush_writebacks() == [3, 7]
        assert l2.stats.writebacks == 2


class TestCoverage:
    def test_coverage_formula(self):
        l2 = make_l2()
        l2.stats.prefetch_hits = 30
        l2.stats.delayed_hits = 20
        l2.stats.nonpref_misses = 50
        assert l2.stats.coverage() == pytest.approx(0.5)
        assert l2.stats.original_misses_equivalent == 100

    def test_empty_coverage(self):
        assert make_l2().stats.coverage() == 0.0
