"""Tests for the memory-processor wrapper and the stats containers."""

import pytest

from repro.cpu.memproc import MemoryProcessor
from repro.cpu.processor import ProcessorStats
from repro.core.customization import build_algorithm
from repro.memsys.bus import BusStats
from repro.memsys.controller import MemoryController
from repro.memsys.l2 import L2Stats
from repro.params import MemProcLocation, QueueParams
from repro.sim.stats import SimResult, UlmtTimingStats


def make_memproc(location=MemProcLocation.DRAM, **kw) -> MemoryProcessor:
    ctrl = MemoryController(location=location)
    return MemoryProcessor(ctrl, build_algorithm("repl"), **kw)


class TestMemoryProcessor:
    def test_location_follows_controller(self):
        mp = make_memproc(MemProcLocation.NORTH_BRIDGE)
        assert mp.location is MemProcLocation.NORTH_BRIDGE

    def test_observe_forwards_to_ulmt(self):
        mp = make_memproc()
        mp.observe_miss(100, 0)
        assert mp.ulmt.stats.misses_observed == 1

    def test_queue_params_respected(self):
        mp = make_memproc(queue_params=QueueParams(queue_depth=2,
                                                   filter_entries=4))
        assert mp.ulmt.obs_queue.depth == 2
        assert mp.ulmt.filter.entries == 4

    def test_verbose_flag(self):
        mp = make_memproc(verbose=True)
        assert mp.ulmt.verbose

    def test_nb_placement_slower_table_misses(self):
        """The cost model wired through the controller sees the placement:
        a cold table access stalls longer from the North Bridge."""
        dram = make_memproc(MemProcLocation.DRAM)
        nb = make_memproc(MemProcLocation.NORTH_BRIDGE)
        for mp in (dram, nb):
            mp.cost_model.begin(0)
            mp.cost_model.charge_row_access(0x8000_0000)
        assert (nb.cost_model._stall > dram.cost_model._stall)


class TestProcessorStats:
    def test_breakdown_sums_to_one(self):
        stats = ProcessorStats(busy_cycles=20, uptol2_stall=30,
                               beyondl2_stall=50)
        bd = stats.breakdown()
        assert sum(bd.values()) == pytest.approx(1.0)
        assert bd["beyondl2"] == pytest.approx(0.5)

    def test_empty_breakdown(self):
        assert ProcessorStats().breakdown() == {
            "busy": 0.0, "uptol2": 0.0, "beyondl2": 0.0}


class TestSimResult:
    def make(self, finish=1000, **l2_kw) -> SimResult:
        proc = ProcessorStats(busy_cycles=300, uptol2_stall=200,
                              beyondl2_stall=500, finish_time=finish)
        l2 = L2Stats(**l2_kw)
        return SimResult(workload="w", config_name="c", processor=proc,
                         l2=l2, bus=BusStats())

    def test_speedup_over(self):
        fast = self.make(finish=500)
        slow = self.make(finish=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_normalized_breakdown_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            self.make().normalized_breakdown(0)

    def test_miss_breakdown_empty(self):
        result = self.make()
        assert all(v == 0.0 for v in result.miss_breakdown().values())

    def test_miss_breakdown_values(self):
        result = self.make(prefetch_hits=25, delayed_hits=25,
                           nonpref_misses=50, replaced_prefetches=10,
                           redundant_prefetches=20)
        mb = result.miss_breakdown()
        assert mb["hits"] == pytest.approx(0.25)
        assert mb["redundant"] == pytest.approx(0.20)
        assert result.coverage() == pytest.approx(0.5)

    def test_miss_distance_fractions_empty(self):
        assert self.make().miss_distance_fractions() == (0.0, 0.0, 0.0, 0.0)

    def test_bus_utilization_delegates(self):
        result = self.make(finish=100)
        result.bus.demand_cycles = 50
        assert result.bus_utilization() == pytest.approx(0.5)


class TestUlmtTimingStats:
    def test_defaults(self):
        t = UlmtTimingStats()
        assert t.avg_response == 0.0
        assert t.observations == 0
