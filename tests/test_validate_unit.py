"""Unit tests for the claim-validation logic (monkeypatched data, no sims)."""

import pytest

from repro.experiments import validate


def fake_fig7(avg=None, mcf_conven=1.0, tree_conven=1.0, cg_conven=1.6):
    avg = avg or {"conven4": 1.15, "base": 1.1, "chain": 1.2, "repl": 1.35,
                  "conven4+repl": 1.45, "custom": 1.5}

    class Bar:
        def __init__(self, config, speedup):
            self.config = config
            self.speedup = speedup

    apps = ["cg", "mcf", "tree", "sparse", "parser", "gap", "mst",
            "equake", "ft"]
    speeds = {"mcf": {"conven4": mcf_conven},
              "tree": {"conven4": tree_conven},
              "cg": {"conven4": cg_conven}}
    bars = {}
    for app in apps:
        per = []
        for config in ("conven4", "base", "chain", "repl", "conven4+repl",
                       "custom"):
            default = {"sparse": 1.05, "parser": 1.04}.get(app, 1.3)
            per.append(Bar(config, speeds.get(app, {}).get(config, default)))
        bars[app] = per
    return {"avg_speedups": avg, "bars": bars}


class TestFig7Claims:
    def test_all_pass_with_paper_like_data(self, monkeypatch):
        monkeypatch.setattr(validate.fig7, "run",
                            lambda scale=None: fake_fig7())
        claims = validate._fig7_claims(1.0)
        assert all(c.passed for c in claims), \
            [c.statement for c in claims if not c.passed]

    def test_ordering_violation_detected(self, monkeypatch):
        bad = fake_fig7(avg={"conven4": 1.1, "base": 1.5, "chain": 1.2,
                             "repl": 1.1, "conven4+repl": 1.45,
                             "custom": 1.5})
        monkeypatch.setattr(validate.fig7, "run", lambda scale=None: bad)
        claims = validate._fig7_claims(1.0)
        ordering = next(c for c in claims if "outperforms" in c.statement)
        assert not ordering.passed

    def test_conven_on_irregular_detected(self, monkeypatch):
        bad = fake_fig7(mcf_conven=1.4)
        monkeypatch.setattr(validate.fig7, "run", lambda scale=None: bad)
        claims = validate._fig7_claims(1.0)
        irregular = next(c for c in claims if "ineffective" in c.statement)
        assert not irregular.passed


class TestFig10Claims:
    class Bar:
        def __init__(self, config, response, occupancy):
            self.config = config
            self.response = response
            self.occupancy = occupancy

    def patch(self, monkeypatch, bars):
        monkeypatch.setattr(validate.fig10, "run",
                            lambda scale=None: bars)

    def test_budget_violation_detected(self, monkeypatch):
        bars = [self.Bar("base", 80, 95), self.Bar("chain", 140, 250),
                self.Bar("repl", 70, 95), self.Bar("replMC", 150, 180)]
        self.patch(monkeypatch, bars)
        claims = validate._fig10_claims(1.0)
        budget = next(c for c in claims if "200 cycles" in c.statement)
        assert not budget.passed

    def test_healthy_data_passes(self, monkeypatch):
        bars = [self.Bar("base", 80, 95), self.Bar("chain", 140, 150),
                self.Bar("repl", 70, 95), self.Bar("replMC", 150, 180)]
        self.patch(monkeypatch, bars)
        claims = validate._fig10_claims(1.0)
        assert all(c.passed for c in claims)


class TestStaticClaims:
    def test_static_claims_pass(self):
        claims = validate._static_claims()
        assert all(c.passed for c in claims)
        assert len(claims) == 2
