"""Tests for cache integrity scrubbing (:mod:`repro.perf.cache` + the
``repro cache`` CLI).

The contract: corrupt entries (torn writes, wrong format, renamed files)
are detected, reported, quarantined, and treated as misses — never as
results; GC evicts by age then oldest-first by size; and two readers
racing on the same torn entry both recompute without crashing.
"""

import json
import multiprocessing
import os

import pytest

from repro.perf.cache import (CACHE_FORMAT_VERSION, ResultCache,
                              fingerprint)
from repro.perf.cachecli import main as cache_main

KIND = "sim"
KEY = {"app": "tree", "scale": 0.02}
PAYLOAD = {"execution_time": 123}


def _entry_path(cache, key=KEY):
    return cache.directory / f"{KIND}-{fingerprint(KIND, key)}.json"


@pytest.fixture
def cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put(KIND, KEY, PAYLOAD)
    return cache


class TestCorruptReads:
    def test_torn_entry_is_a_counted_removed_miss(self, cache):
        path = _entry_path(cache)
        path.write_text(path.read_text()[:20])  # torn write
        assert cache.get(KIND, KEY) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.removed == 1
        assert "1 corrupt entr(ies) (1 removed)" in cache.stats.describe()
        assert not path.exists()

    def test_wrong_format_version_is_a_miss(self, cache):
        path = _entry_path(cache)
        entry = json.loads(path.read_text())
        entry["format"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(KIND, KEY) is None
        assert cache.stats.removed == 1


class TestVerify:
    def test_intact_cache_is_clean(self, cache):
        report = cache.verify()
        assert (report.scanned, report.intact) == (1, 1)
        assert not report.corrupt and report.quarantined == 0

    def test_detects_and_quarantines_each_corruption_kind(self, cache):
        good = _entry_path(cache).read_text()
        torn = cache.directory / f"{KIND}-{'0' * 64}.json"
        torn.write_text(good[:15])
        renamed = cache.directory / f"{KIND}-{'f' * 64}.json"
        renamed.write_text(good)  # valid JSON, filename != content hash
        report = cache.verify()
        assert report.scanned == 3
        assert report.intact == 1
        assert report.quarantined == 2
        reasons = dict(report.corrupt)
        assert "not valid JSON" in reasons[torn.name]
        assert "does not match content hash" in reasons[renamed.name]
        assert sorted(p.name for p in cache.quarantine_dir.glob("*.json")) \
            == sorted([torn.name, renamed.name])
        # The intact entry still reads; the quarantined ones are misses.
        assert cache.get(KIND, KEY) == PAYLOAD

    def test_no_quarantine_reports_only(self, cache):
        bad = cache.directory / f"{KIND}-{'0' * 64}.json"
        bad.write_text("{")
        report = cache.verify(quarantine=False)
        assert report.quarantined == 0
        assert bad.exists()

    def test_quarantined_files_invisible_to_entries(self, cache):
        (cache.directory / f"{KIND}-{'0' * 64}.json").write_text("{")
        cache.verify()
        assert [e.path.name for e in cache.entries()] \
            == [_entry_path(cache).name]


class TestGC:
    def test_age_eviction(self, cache):
        cache.put("fig5", {"app": "other"}, [1, 2])
        old = _entry_path(cache)
        os.utime(old, (1000.0, 1000.0))
        report = cache.gc(max_age_s=3600.0, now=1e9)
        assert report.evicted == 1
        assert not old.exists()
        assert len(cache) == 1

    def test_size_eviction_is_oldest_first(self, cache):
        cache.put("fig5", {"app": "other"}, [1] * 50)
        newest = cache.directory / f"fig5-{fingerprint('fig5', {'app': 'other'})}.json"
        os.utime(_entry_path(cache), (1000.0, 1000.0))
        os.utime(newest, (2000.0, 2000.0))
        report = cache.gc(max_size_bytes=newest.stat().st_size, now=3000.0)
        assert report.evicted == 1
        assert not _entry_path(cache).exists()
        assert newest.exists()

    def test_gc_purges_quarantine(self, cache):
        (cache.directory / f"{KIND}-{'0' * 64}.json").write_text("{")
        cache.verify()
        report = cache.gc(max_age_s=None, max_size_bytes=None)
        assert report.evicted == 1
        assert not list(cache.quarantine_dir.glob("*.json"))


class TestCLI:
    def test_verify_exit_codes(self, cache, capsys):
        argv = ["verify", "--cache-dir", str(cache.directory)]
        assert cache_main(argv) == 0
        (cache.directory / f"{KIND}-{'0' * 64}.json").write_text("{")
        assert cache_main(argv) == 1
        assert "CORRUPT" in capsys.readouterr().out
        assert cache_main(argv) == 0  # quarantined on the previous pass

    def test_stats_lists_kinds_and_quarantine(self, cache, capsys):
        (cache.directory / f"{KIND}-{'0' * 64}.json").write_text("{")
        cache.verify()
        assert cache_main(["stats", "--cache-dir",
                           str(cache.directory)]) == 0
        out = capsys.readouterr().out
        assert "sim" in out and "quarantined" in out

    def test_gc_requires_a_bound(self, cache):
        assert cache_main(["gc", "--cache-dir",
                           str(cache.directory)]) == 2
        assert cache_main(["gc", "--cache-dir", str(cache.directory),
                           "--all"]) == 0
        assert len(cache) == 0


def _racing_reader(directory, barrier, out_queue):
    """Worker for the torn-entry race: read-miss, recompute, store.

    The second barrier keeps both reads inside the window where the
    entry is still torn (before either worker has republished it), so
    the test exercises two concurrent corrupt-entry unlinks, not a
    read-after-repair.
    """
    cache = ResultCache(directory)
    barrier.wait()
    first = cache.get(KIND, KEY)
    barrier.wait()
    cache.put(KIND, KEY, PAYLOAD)
    out_queue.put((first, cache.get(KIND, KEY)))


class TestConcurrentTornEntry:
    def test_two_workers_racing_on_torn_entry_both_recompute(self, cache):
        # Both workers hit the same torn file at once: each must see a
        # miss (not an exception, not a partial payload), recompute, and
        # end with the intact value — regardless of who unlinks first.
        path = _entry_path(cache)
        path.write_text(path.read_text()[:30])
        barrier = multiprocessing.Barrier(2)
        queue = multiprocessing.Queue()
        workers = [multiprocessing.Process(
            target=_racing_reader,
            args=(str(cache.directory), barrier, queue))
            for _ in range(2)]
        for w in workers:
            w.start()
        outcomes = [queue.get(timeout=30) for _ in workers]
        for w in workers:
            w.join(30)
            assert w.exitcode == 0
        assert [o[0] for o in outcomes] == [None, None]
        assert [o[1] for o in outcomes] == [PAYLOAD, PAYLOAD]
        assert cache.check_entry(path) is None
