"""Multicore campaigns: crash-safe resume and bundle run-table semantics.

The ISSUE-9 acceptance criterion, pinned directly: a 2-core campaign's
``run_table.csv`` resumes byte-identically after a mid-flight SIGKILL
(replayed as the journal shape a kill leaves behind — header, one
completed cell, a torn line).  The rest checks that bundle rows carry
the aggregate views (makespan, bundle coverage, speedup vs the bundle's
own ``nopref`` baseline) and that the journal header round-trips the
multicore fields.
"""

import json

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.perf.retry import RetryPolicy

SPEC = CampaignSpec(apps=("tree+cg",), configs=("nopref", "repl"),
                    scale=0.02, cores=2, coordination="demand")

FAST = RetryPolicy(max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.02,
                   jitter=0.0)


def _run(out_dir, spec=SPEC, **kwargs):
    kwargs.setdefault("policy", FAST)
    kwargs.setdefault("verbose", False)
    return run_campaign(spec, out_dir, **kwargs)


@pytest.fixture(scope="module")
def complete(tmp_path_factory):
    out = tmp_path_factory.mktemp("mc_campaign")
    return _run(out)


class TestRunTable:
    def test_bundle_rows_in_spec_order(self, complete):
        assert complete.exit_code == 0
        assert [(r["app"], r["config"]) for r in complete.rows] == \
            [("tree+cg", "nopref"), ("tree+cg", "repl")]
        assert [r["status"] for r in complete.rows] == ["ok", "ok"]

    def test_speedup_is_vs_the_bundle_baseline(self, complete):
        base = int(complete.rows[0]["execution_time"])
        repl = complete.rows[1]
        assert repl["speedup"] == f"{base / int(repl['execution_time']):.6f}"
        assert float(repl["speedup"]) > 1.0

    def test_journal_header_carries_the_multicore_fields(self, complete):
        header = json.loads((complete.out_dir / "journal.jsonl")
                            .read_text().splitlines()[0])
        assert header["campaign"]["cores"] == 2
        assert header["campaign"]["coordination"] == "demand"


class TestResume:
    def test_resume_after_kill_is_byte_identical(self, complete, tmp_path):
        # Replay the SIGKILL shape: header + one finish + a torn line.
        reference = complete.run_table_path.read_bytes()
        out = tmp_path / "resumed"
        out.mkdir()
        lines = (complete.out_dir / "journal.jsonl") \
            .read_text().splitlines(keepends=True)
        keep = [lines[0]] + [line for line in lines
                             if '"finish"' in line][:1]
        (out / "journal.jsonl").write_text(
            "".join(keep) + '{"event":"finish","task":"torn')
        outcome = _run(out, resume=True)
        assert outcome.exit_code == 0
        assert outcome.run.counters["resumed"] == 1
        assert outcome.run.counters["completed"] == 1
        assert outcome.run_table_path.read_bytes() == reference

    def test_resume_refuses_a_different_core_count(self, complete):
        from repro.campaign import CampaignError
        solo = CampaignSpec(apps=("tree+cg",), configs=("nopref", "repl"),
                            scale=0.02)
        with pytest.raises(CampaignError):
            _run(complete.out_dir, spec=solo, resume=True)
