"""Tests for the whole-program flow analyzer (FLOW/RACE/RES rules).

The interprocedural rules need real files on disk — the analyzer builds
its module graph from package-relative paths — so most fixtures here
write a small package into ``tmp_path`` and lint it with
``run_lint([tmp], package_root=tmp)``.  The cross-module fixture package
(:class:`TestCrossModuleTaint`) is the satellite contract: a
nondeterministic seed laundered through a helper in *another module*
must still be flagged at the RNG construction site.

The ``ResultCache.invalidate`` regression tests at the bottom pin the
true positive the RES family surfaced in ``perf/``: a decodable cache
envelope wrapping an undecodable payload used to be re-read and
re-failed by every later run instead of being dropped and recomputed.
"""

import json

import pytest

from repro.lint.baseline import Baseline, fingerprints
from repro.lint.engine import lint_source, run_lint
from repro.perf.cache import ResultCache, fingerprint
from repro.perf.pool import (_from_cache, encode_payload, sim_task,
                             task_cache_key)


def codes(findings):
    return [f.rule for f in findings]


def write_pkg(tmp_path, **modules):
    """Write ``pkg/<name>.py`` fixtures and return the lint root."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in modules.items():
        (pkg / f"{name}.py").write_text(source)
    return tmp_path


def lint_pkg(root, *select):
    return run_lint([root], package_root=root, select=list(select))


# ---------------------------------------------------------------------------
# FLOW001 — nondeterministic seeds, through call chains
# ---------------------------------------------------------------------------


class TestFlow001:
    def test_direct_wall_clock_seed_flagged(self, tmp_path):
        root = write_pkg(tmp_path, direct=(
            "import random\n"
            "import time\n"
            "def build():\n"
            "    return random.Random(time.time_ns())\n"))
        findings = lint_pkg(root, "FLOW001")
        assert codes(findings) == ["FLOW001"]
        assert findings[0].relpath == "pkg/direct.py"

    def test_digest_keyed_seed_passes(self, tmp_path):
        root = write_pkg(tmp_path, clean=(
            "import random\n"
            "def build(seed, kind):\n"
            "    return random.Random(f'{seed}:{kind}')\n"))
        assert lint_pkg(root, "FLOW001") == []

    def test_pid_mixed_into_fstring_seed_flagged(self, tmp_path):
        root = write_pkg(tmp_path, mixed=(
            "import os\n"
            "import random\n"
            "def build(seed):\n"
            "    return random.Random(f'{seed}:{os.getpid()}')\n"))
        assert codes(lint_pkg(root, "FLOW001")) == ["FLOW001"]


class TestCrossModuleTaint:
    """The satellite fixture: host entropy laundered through a helper in
    another module must be flagged at the construction site."""

    SEEDS = (
        "import time\n"
        "def make_seed():\n"
        "    return time.time_ns()\n"
        "def passthrough(value):\n"
        "    return int(value)\n")
    RUNNER = (
        "import random\n"
        "from pkg.seeds import make_seed, passthrough\n"
        "def build_rng():\n"
        "    seed = passthrough(make_seed())\n"
        "    return random.Random(seed)\n")

    def test_cross_module_taint_path_is_flagged(self, tmp_path):
        root = write_pkg(tmp_path, seeds=self.SEEDS, runner=self.RUNNER)
        findings = lint_pkg(root, "FLOW001")
        assert codes(findings) == ["FLOW001"]
        (finding,) = findings
        # Flagged where the RNG is built, not where the entropy is read.
        assert finding.relpath == "pkg/runner.py"
        assert finding.line == 5

    def test_same_shape_with_constant_seed_passes(self, tmp_path):
        clean_seeds = self.SEEDS.replace("time.time_ns()", "0x5EED")
        root = write_pkg(tmp_path, seeds=clean_seeds, runner=self.RUNNER)
        assert lint_pkg(root, "FLOW001") == []


# ---------------------------------------------------------------------------
# FLOW002 / RACE001 / RACE002 — process-boundary sinks
# ---------------------------------------------------------------------------


class TestBoundaryRules:
    def test_flow002_rng_into_pool_submit(self, tmp_path):
        root = write_pkg(tmp_path, scatter=(
            "import random\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(task, rng):\n"
            "    return rng.random()\n"
            "def scatter(tasks):\n"
            "    rng = random.Random(7)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, t, rng) for t in tasks]\n"))
        findings = lint_pkg(root, "FLOW002")
        assert codes(findings) == ["FLOW002"]
        assert findings[0].relpath == "pkg/scatter.py"

    def test_flow002_seed_across_boundary_passes(self, tmp_path):
        root = write_pkg(tmp_path, scatter=(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(task, seed):\n"
            "    import random\n"
            "    return random.Random(seed).random()\n"
            "def scatter(tasks, seed):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, t, seed) for t in tasks]\n"))
        assert lint_pkg(root, "FLOW002") == []

    def test_race001_handle_into_process_args(self, tmp_path):
        root = write_pkg(tmp_path, leak=(
            "import multiprocessing\n"
            "def consume(fh):\n"
            "    return fh.read()\n"
            "def launch(path):\n"
            "    fh = open(path)\n"
            "    p = multiprocessing.Process(target=consume, args=(fh,))\n"
            "    p.start()\n"
            "    return fh\n"))
        findings = lint_pkg(root, "RACE001")
        assert codes(findings) == ["RACE001"]

    def test_race002_worker_appends_to_module_global(self, tmp_path):
        root = write_pkg(tmp_path, state=(
            "import multiprocessing\n"
            "RESULTS = []\n"
            "def worker(x):\n"
            "    RESULTS.append(x)\n"
            "def launch():\n"
            "    p = multiprocessing.Process(target=worker, args=(1,))\n"
            "    p.start()\n"))
        findings = lint_pkg(root, "RACE002")
        assert codes(findings) == ["RACE002"]
        assert "worker" in findings[0].message

    def test_race002_pure_worker_passes(self, tmp_path):
        root = write_pkg(tmp_path, state=(
            "import multiprocessing\n"
            "def worker(x):\n"
            "    return x + 1\n"
            "def launch():\n"
            "    p = multiprocessing.Process(target=worker, args=(1,))\n"
            "    p.start()\n"))
        assert lint_pkg(root, "RACE002") == []


# ---------------------------------------------------------------------------
# FLOW003 — one RNG instance fanned out across streams
# ---------------------------------------------------------------------------


class TestFlow003:
    def test_shared_instance_stored_per_slot_flagged(self, tmp_path):
        root = write_pkg(tmp_path, fan=(
            "import random\n"
            "def streams(kinds, seed):\n"
            "    rng = random.Random(seed)\n"
            "    table = {}\n"
            "    for kind in kinds:\n"
            "        table[kind] = rng\n"
            "    return table\n"))
        assert codes(lint_pkg(root, "FLOW003")) == ["FLOW003"]

    def test_per_slot_construction_passes(self, tmp_path):
        root = write_pkg(tmp_path, fan=(
            "import random\n"
            "def streams(kinds, seed):\n"
            "    return {kind: random.Random(f'{seed}:{kind}')\n"
            "            for kind in kinds}\n"))
        assert lint_pkg(root, "FLOW003") == []


# ---------------------------------------------------------------------------
# RES001 — raw writes to cache/journal paths
# ---------------------------------------------------------------------------


class TestRes001:
    def test_write_text_on_cache_path_flagged(self, tmp_path):
        root = write_pkg(tmp_path, stamp=(
            "from pathlib import Path\n"
            "def stamp(payload):\n"
            "    target = Path('.repro-cache') / 'entry.json'\n"
            "    target.write_text(payload)\n"))
        assert codes(lint_pkg(root, "RES001")) == ["RES001"]

    def test_plain_output_path_passes(self, tmp_path):
        root = write_pkg(tmp_path, stamp=(
            "from pathlib import Path\n"
            "def stamp(payload, out_dir):\n"
            "    target = Path(out_dir) / 'entry.json'\n"
            "    target.write_text(payload)\n"))
        assert lint_pkg(root, "RES001") == []


# ---------------------------------------------------------------------------
# RES002 / RES003 / RES004 — module-local lifecycle rules
# ---------------------------------------------------------------------------


class TestLifecycleRules:
    def test_res002_open_never_closed(self):
        findings = lint_source(
            "def peek(path):\n"
            "    fh = open(path)\n"
            "    return fh.read()\n",
            select=["RES002"])
        assert codes(findings) == ["RES002"]

    def test_res002_with_block_and_explicit_close_pass(self):
        findings = lint_source(
            "def read(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
            "def read_manual(path):\n"
            "    fh = open(path)\n"
            "    data = fh.read()\n"
            "    fh.close()\n"
            "    return data\n"
            "def handle(path):\n"
            "    return open(path)\n",
            select=["RES002"])
        assert findings == []

    def test_res003_swallowed_failure_flagged(self):
        findings = lint_source(
            "def run(task):\n"
            "    try:\n"
            "        task.execute()\n"
            "    except Exception:\n"
            "        pass\n",
            select=["RES003"])
        assert codes(findings) == ["RES003"]

    def test_res003_best_effort_cleanup_tolerated(self):
        findings = lint_source(
            "def teardown(conn):\n"
            "    try:\n"
            "        conn.close()\n"
            "    except Exception:\n"
            "        pass\n",
            select=["RES003"])
        assert findings == []

    def test_res004_spin_forever_flagged(self):
        findings = lint_source(
            "def drain(queue):\n"
            "    while True:\n"
            "        try:\n"
            "            queue.get()\n"
            "        except Exception:\n"
            "            continue\n",
            select=["RES004"])
        assert codes(findings) == ["RES004"]

    def test_res004_loop_with_terminal_exit_passes(self):
        findings = lint_source(
            "def drain(queue, attempts):\n"
            "    while True:\n"
            "        try:\n"
            "            return queue.get()\n"
            "        except Exception:\n"
            "            continue\n",
            select=["RES004"])
        assert findings == []


# ---------------------------------------------------------------------------
# Suppressions and baseline round-trip on the new families (satellite)
# ---------------------------------------------------------------------------


SCATTER_SRC = (
    "import random\n"
    "from concurrent.futures import ProcessPoolExecutor\n"
    "def work(task, rng):\n"
    "    return rng.random()\n"
    "def scatter(tasks):\n"
    "    rng = random.Random(7)\n"
    "    with ProcessPoolExecutor() as pool:\n"
    "        return [pool.submit(work, t, rng) for t in tasks]\n")


class TestSuppressionAndBaseline:
    def test_inline_suppression_covers_flow_finding(self, tmp_path):
        suppressed = SCATTER_SRC.replace(
            "        return [pool.submit(work, t, rng) for t in tasks]\n",
            "        # repro-lint: disable=FLOW002 -- fixture\n"
            "        return [pool.submit(work, t, rng) for t in tasks]\n")
        root = write_pkg(tmp_path, scatter=suppressed)
        assert lint_pkg(root, "FLOW002") == []

    def test_rule_name_suppression_on_res_finding(self):
        findings = lint_source(
            "def run(task):\n"
            "    try:\n"
            "        task.execute()\n"
            "    # repro-lint: disable=swallowed-exception -- fixture\n"
            "    except Exception:\n"
            "        pass\n",
            select=["RES003"])
        assert findings == []

    def test_baseline_round_trip_on_flow_codes(self, tmp_path):
        root = write_pkg(tmp_path, scatter=SCATTER_SRC)
        findings = lint_pkg(root, "FLOW002")
        assert codes(findings) == ["FLOW002"]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert loaded.filter_new(findings) == []
        # Fingerprints key on the package-relative path and source line,
        # so a rerun from a different cwd still matches.
        (fp,) = fingerprints(findings)
        assert fp.startswith("FLOW002|pkg/scatter.py|")

    def test_fresh_finding_survives_flow_baseline(self, tmp_path):
        root = write_pkg(tmp_path, scatter=SCATTER_SRC)
        baseline = Baseline.from_findings(lint_pkg(root, "FLOW002"))
        (root / "pkg" / "fan.py").write_text(
            "import random\n"
            "def streams(kinds, seed):\n"
            "    rng = random.Random(seed)\n"
            "    table = {}\n"
            "    for kind in kinds:\n"
            "        table[kind] = rng\n"
            "    return table\n")
        findings = lint_pkg(root, "FLOW002", "FLOW003")
        surviving = baseline.filter_new(findings)
        assert codes(surviving) == ["FLOW003"]


# ---------------------------------------------------------------------------
# Regression: the true positive the RES audit surfaced in perf/
# ---------------------------------------------------------------------------


class TestCacheInvalidateRegression:
    """A decodable cache envelope wrapping an undecodable payload must be
    dropped on first failure, not re-read and re-failed forever."""

    def poisoned(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = sim_task("tree", "repl", 0.02)
        key = task_cache_key(task)
        # Valid envelope, garbage payload: decode_payload raises.
        cache.put(task.kind, key, {"bogus": True})
        return cache, task, key

    def test_invalidate_removes_entry_and_counts(self, tmp_path):
        cache, task, key = self.poisoned(tmp_path)
        entry = cache._path(task.kind, fingerprint(task.kind, key))
        assert entry.exists()
        assert cache.invalidate(task.kind, key) is True
        assert not entry.exists()
        assert cache.stats.corrupt == 1
        assert cache.stats.removed == 1
        # Idempotent on a missing entry.
        assert cache.invalidate(task.kind, key) is False

    def test_pool_from_cache_drops_poisoned_entry(self, tmp_path):
        cache, task, key = self.poisoned(tmp_path)
        assert _from_cache(task, cache) is None
        assert cache.stats.corrupt == 1
        # The entry is gone: the next lookup is a clean miss, so the
        # recompute path will store a fresh decodable payload.
        assert cache.get(task.kind, key) is None
        assert cache.stats.corrupt == 1

    def test_resilient_prepass_drops_poisoned_entry(self, tmp_path):
        from repro.perf.resilient import run_tasks_resilient

        cache, task, key = self.poisoned(tmp_path)
        run = run_tasks_resilient([task], jobs=1, cache=cache)
        assert run.counters["cache_hits"] == 0
        (result,) = run.results
        assert result is not None  # recomputed, not served from poison
        # The recompute stored a decodable replacement entry.
        fresh = _from_cache(task, cache)
        assert fresh is not None
        assert fresh.to_dict() == result.to_dict()
