"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.workloads.trace import MemRef, Trace
from repro.workloads.traceio import load_trace, save_trace


def sample_trace() -> Trace:
    refs = [
        MemRef(0x1000_0000, False, 3, False),
        MemRef(0x1000_0040, True, 0, False),
        MemRef(0x2000_0000, False, 12, True),
        MemRef(2**40, False, 1, True),   # large addresses survive
    ]
    return Trace(refs, name="sample")


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        path = tmp_path / "t.trc.npz"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.refs == original.refs
        assert loaded.name == "sample"

    def test_workload_trace_round_trip(self, tmp_path):
        from repro.workloads import get_trace
        trace = get_trace("tree", scale=0.05)
        path = tmp_path / "tree.trc.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.refs[:100] == trace.refs[:100]
        assert loaded.refs[-1] == trace.refs[-1]

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trc.npz"
        save_trace(Trace([], name="empty"), path)
        loaded = load_trace(path)
        assert len(loaded) == 0


class TestValidation:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, header=np.frombuffer(b'{"magic": "nope"}',
                                            dtype=np.uint8),
                 addrs=np.zeros(1), flags=np.zeros(1), comps=np.zeros(1))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_rejects_future_version(self, tmp_path):
        import json
        path = tmp_path / "future.npz"
        header = json.dumps({"magic": "repro-trace", "version": 99,
                             "name": "x", "refs": 0})
        np.savez(path, header=np.frombuffer(header.encode(), dtype=np.uint8),
                 addrs=np.zeros(0, dtype=np.uint64),
                 flags=np.zeros(0, dtype=np.uint8),
                 comps=np.zeros(0, dtype=np.uint32))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_rejects_corrupt_counts(self, tmp_path):
        import json
        path = tmp_path / "corrupt.npz"
        header = json.dumps({"magic": "repro-trace", "version": 1,
                             "name": "x", "refs": 5})
        np.savez(path, header=np.frombuffer(header.encode(), dtype=np.uint8),
                 addrs=np.zeros(2, dtype=np.uint64),
                 flags=np.zeros(2, dtype=np.uint8),
                 comps=np.zeros(2, dtype=np.uint32))
        with pytest.raises(ValueError, match="corrupt"):
            load_trace(path)
