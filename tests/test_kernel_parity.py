"""The batch kernel's bit-identity oracle gate.

The vectorized batch engine (:mod:`repro.kernel.engine`) must be an exact
twin of the event engine: for every preset of the tier-1 matrix (plus the
per-application ``custom`` configs), ``SimResult.to_dict()`` — the full
serialized result, every counter and histogram — must match byte for
byte.  Anything less and the kernel is a different simulator, not a
faster one.

The full-matrix sweep (every app x every config) runs in CI's
``kernel-parity`` job; here a rotating app per config keeps the tier-1
suite fast while still touching every config family and several apps.
"""

import json

import pytest

from repro.kernel import fused_supported, run_batch, trace_arrays
from repro.sim.config import PRESETS, SystemConfig, preset
from repro.sim.driver import run_simulation
from repro.sim.system import System
from repro.workloads.registry import get_trace, list_workloads

SCALE = 0.02

#: One (config, app) cell per preset family; apps rotate so several
#: workload shapes (pointer chasing, strided, irregular) are covered
#: without running the full matrix in tier 1.
CELLS = [(name, app) for name, app in zip(
    list(PRESETS) + ["custom"],
    (list_workloads() * 3))]


def result_dict(app: str, config: str, engine: str) -> dict:
    if isinstance(config, str):
        from repro.sim.config import custom_config
        resolved = (custom_config(app) if config == "custom"
                    else preset(config))
    else:
        resolved = config
    return run_simulation(app, resolved.with_engine(engine),
                          scale=SCALE).to_dict()


class TestBitIdentity:
    @pytest.mark.parametrize("config,app", CELLS,
                             ids=[f"{c}-{a}" for c, a in CELLS])
    def test_preset_cell_identical(self, config, app):
        event = result_dict(app, config, "event")
        batch = result_dict(app, config, "batch")
        assert json.dumps(event, sort_keys=True) == \
            json.dumps(batch, sort_keys=True)

    def test_trace_object_entry_identical(self):
        trace = get_trace("mcf", scale=SCALE)
        event = System(preset("repl")).run(trace).to_dict()
        batch = run_batch(trace, preset("repl")).to_dict()
        assert event == batch


class TestDispatchAndFallback:
    def test_unknown_engine_rejected(self):
        config = preset("nopref").with_engine("warp")
        with pytest.raises(ValueError, match="unknown simulation engine"):
            run_simulation("mcf", config, scale=SCALE)

    def test_with_engine_round_trip(self):
        config = preset("repl")
        assert config.engine == "event"
        batch = config.with_engine("batch")
        assert batch.engine == "batch"
        assert batch.with_engine("event") == config

    def test_dasp_forces_scalar_fallback(self):
        # dasp makes prefetch state data-dependent in a way the fused
        # walk does not model; run_batch must fall back to the event
        # engine wholesale — and therefore still match it exactly.
        system = System(preset("dasp"))
        assert not fused_supported(system)
        event = result_dict("tree", "dasp", "event")
        batch = result_dict("tree", "dasp", "batch")
        assert event == batch

    def test_miss_observer_survives_fallback_and_fused(self):
        for config_name in ("dasp", "nopref"):
            trace = get_trace("cg", scale=SCALE)
            seen_batch, seen_event = [], []
            run_batch(trace, preset(config_name),
                      miss_observer=lambda a, t, p: seen_batch.append(a))
            system = System(preset(config_name))
            system.miss_observer = lambda a, t, p: seen_event.append(a)
            system.run(trace)
            assert seen_batch == seen_event
            assert seen_batch  # the stream is non-trivial


class TestAnalysisEngineParity:
    def test_figure5_row_engine_independent(self):
        from repro.analysis.prediction import (_ROW_CACHE, _STREAM_CACHE,
                                               figure5_row)
        _STREAM_CACHE.clear()
        _ROW_CACHE.clear()
        event = figure5_row("tree", SCALE, ("seq1", "repl"), engine="event")
        _STREAM_CACHE.clear()
        _ROW_CACHE.clear()
        batch = figure5_row("tree", SCALE, ("seq1", "repl"), engine="batch")
        assert event == batch
        _STREAM_CACHE.clear()
        _ROW_CACHE.clear()

    def test_tablesize_engine_independent(self):
        from repro.analysis.prediction import _STREAM_CACHE
        from repro.analysis.tablesize import size_application_table
        _STREAM_CACHE.clear()
        event = size_application_table("cg", SCALE, engine="event")
        _STREAM_CACHE.clear()
        batch = size_application_table("cg", SCALE, engine="batch")
        assert event == batch
        _STREAM_CACHE.clear()


class TestCacheKeysEngineBlind:
    def test_sim_cache_key_ignores_engine(self):
        from repro.perf.cache import sim_cache_key
        config = preset("repl")
        assert sim_cache_key("mcf", config, SCALE) == \
            sim_cache_key("mcf", config.with_engine("batch"), SCALE)

    def test_task_cache_key_ignores_engine(self):
        from repro.perf.pool import (fig5_task, sim_task, tablesize_task,
                                     task_cache_key, with_engine)
        for task in (sim_task("mcf", "repl", SCALE),
                     fig5_task("mcf", SCALE, ("seq1",)),
                     tablesize_task("mcf", SCALE)):
            assert task_cache_key(task) == \
                task_cache_key(with_engine(task, "batch"))

    def test_config_engine_excluded_from_canonical_key(self):
        # The cache key of an engine="event" config must equal the exact
        # bytes of the pre-engine key, or every committed cache entry and
        # journal identity would silently invalidate.
        from repro.perf.cache import sim_cache_key
        key = sim_cache_key("mcf", preset("nopref"), SCALE)
        assert "engine" not in key["config"]


def test_trace_arrays_snapshot_matches_trace():
    trace = get_trace("sparse", scale=SCALE)
    arrays = trace_arrays(trace, 64)
    assert arrays.n == len(trace)
    assert list(arrays.l1_lines_np) == [r.addr // 64 for r in trace]
    assert list(arrays.writes_np) == [r.is_write for r in trace]
    assert arrays.comp_cumsum[0] == 0
    assert arrays.comp_cumsum[-1] == trace.total_comp_cycles
    # memoised per trace object
    assert trace_arrays(trace, 64) is arrays
