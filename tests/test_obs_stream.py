"""Tests for the streaming trace export and windowed runs.

The streaming contract: the bytes a :class:`StreamingSink` writes are
identical to the buffered path's ``TraceRun.jsonl()`` (equal SHA-256),
while the tracer never holds more than ``buffer_events`` events —
property-tested over synthetic emission streams and pinned against the
committed golden digests for real cells.
"""

import hashlib
import io
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.runner import (
    StreamedTraceRun,
    WindowedRun,
    run_traced,
    run_traced_streaming,
    run_windowed,
)
from repro.obs.tracer import StreamingSink, Tracer
from repro.sim.driver import run_simulation

SCALE = 0.05
APP, CONFIG = "tree", "repl"
GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def buffered():
    return run_traced(APP, CONFIG, scale=SCALE)


class _Discard:
    def write(self, chunk: str) -> None:
        pass


class TestStreamingIdentity:
    def test_streamed_file_is_byte_identical_to_buffered(self, tmp_path,
                                                         buffered):
        target = tmp_path / "tree_repl.jsonl"
        srun = run_traced_streaming(APP, CONFIG, scale=SCALE, out=target,
                                    buffer_events=257)
        expected = buffered.jsonl()
        assert target.read_text(encoding="ascii") == expected
        assert srun.sha256 == hashlib.sha256(
            expected.encode("ascii")).hexdigest()
        assert srun.event_count == len(buffered.events)
        assert srun.peak_buffered <= srun.buffer_events == 257
        assert srun.path == str(target)
        # Tracing (streamed or not) is pure observation.
        assert srun.result.to_dict() == buffered.result.to_dict()
        assert srun.metrics == buffered.metrics

    def test_stream_to_text_stream_and_digest_only(self, buffered):
        out = io.StringIO()
        srun = run_traced_streaming(APP, CONFIG, scale=SCALE, out=out,
                                    buffer_events=64)
        assert out.getvalue() == buffered.jsonl()
        assert srun.path is None
        digest_only = run_traced_streaming(APP, CONFIG, scale=SCALE,
                                           out=_Discard(), buffer_events=64)
        assert digest_only.sha256 == srun.sha256

    def test_streamed_matches_committed_golden_digests(self):
        for golden_path in sorted(GOLDEN_DIR.glob("trace_*.json")):
            golden = json.loads(golden_path.read_text())
            srun = run_traced_streaming(golden["app"], golden["config"],
                                        scale=SCALE, out=_Discard())
            assert srun.sha256 == golden["sha256"], golden_path.name
            assert srun.event_count == golden["events"]

    def test_atomic_write_creates_parents_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "cell.jsonl"
        srun = run_traced_streaming(APP, "nopref", scale=SCALE, out=target,
                                    buffer_events=128)
        assert target.is_file()
        assert srun.event_count > 0
        assert not list(target.parent.glob("*.tmp"))

    def test_streamed_run_round_trips(self, tmp_path):
        srun = run_traced_streaming(APP, "nopref", scale=SCALE,
                                    out=tmp_path / "t.jsonl")
        again = StreamedTraceRun.from_dict(srun.to_dict())
        assert again.to_dict() == srun.to_dict()
        bad = srun.to_dict() | {"version": 999}
        with pytest.raises(ValueError):
            StreamedTraceRun.from_dict(bad)


KINDS = st.sampled_from(
    ["q1.issue", "q2.enqueue", "ulmt.prefetch_step", "l2.push.redundant"])
EMITS = st.lists(
    st.tuples(KINDS, st.integers(0, 10_000),
              st.one_of(st.none(), st.integers(0, 2**32))),
    max_size=200)


class TestStreamingProperty:
    @settings(max_examples=50, deadline=None)
    @given(emits=EMITS, buffer_events=st.integers(1, 64))
    def test_any_emission_stream_is_byte_identical_and_bounded(
            self, emits, buffer_events):
        plain = Tracer()
        for kind, cycle, addr in emits:
            plain.emit(kind, cycle, addr)
        expected = plain.jsonl()

        out = io.StringIO()
        sink = StreamingSink(out, buffer_events)
        streamed = Tracer(sink=sink)
        for kind, cycle, addr in emits:
            streamed.emit(kind, cycle, addr)
        streamed.flush()

        assert out.getvalue() == expected
        assert sink.hexdigest() == hashlib.sha256(
            expected.encode("ascii")).hexdigest()
        assert sink.count == len(emits)
        assert sink.peak_buffered <= buffer_events
        assert len(streamed.events) == 0  # fully drained

    def test_buffer_bound_is_validated(self):
        with pytest.raises(ValueError):
            StreamingSink(io.StringIO(), 0)


class TestWindowedRuns:
    def test_windowed_result_identical_to_untraced(self):
        windowed = run_windowed(APP, CONFIG, scale=SCALE)
        plain = run_simulation(APP, CONFIG, scale=SCALE)
        assert windowed.result.to_dict() == plain.to_dict()
        assert windowed.windows, "expected at least one sampler window"
        for eliminated, original, arrived in windowed.windows:
            assert 0 <= eliminated <= original
            assert arrived >= 0

    def test_windowed_run_round_trips(self):
        windowed = run_windowed(APP, CONFIG, scale=SCALE)
        again = WindowedRun.from_dict(windowed.to_dict())
        assert again.windows == windowed.windows
        assert again.to_dict() == windowed.to_dict()

    def test_metrics_only_tracer_retains_no_events(self):
        windowed = run_windowed(APP, CONFIG, scale=SCALE)
        # The window log is the only per-run state beyond the result.
        assert windowed.metrics["histograms"]


class TestPoolIntegration:
    def test_windows_task_round_trips_through_cache(self, tmp_path):
        from repro.perf.cache import ResultCache
        from repro.perf.pool import run_tasks, windows_task

        task = windows_task(APP, CONFIG, SCALE)
        cache = ResultCache(tmp_path / "cache")
        cold = run_tasks([task], cache=cache)[0]
        assert cache.stats.stores == 1
        warm = run_tasks([task], cache=cache)[0]
        assert cache.stats.hits == 1
        assert warm.to_dict() == cold.to_dict()

    def test_stream_task_writes_file_but_is_never_cached(self, tmp_path):
        from repro.perf.cache import ResultCache
        from repro.perf.pool import run_tasks, stream_task

        out_dir = tmp_path / "traces"
        task = stream_task(APP, "nopref", SCALE, out_dir, 512)
        cache = ResultCache(tmp_path / "cache")
        srun = run_tasks([task], cache=cache)[0]
        target = out_dir / "tree_nopref.jsonl"
        assert target.is_file()
        assert srun.sha256 == hashlib.sha256(
            target.read_bytes()).hexdigest()
        assert cache.stats.stores == 0
        assert not list((tmp_path / "cache").glob("stream-*.json"))
        # Re-running executes again (and rewrites) rather than caching.
        again = run_tasks([task], cache=cache)[0]
        assert cache.stats.hits == 0
        assert again.sha256 == srun.sha256

    def test_stream_task_parallel_parity(self, tmp_path):
        from repro.perf.pool import run_tasks, stream_task

        serial_dir = tmp_path / "serial"
        par_dir = tmp_path / "par"
        mk = lambda d: [stream_task(APP, c, SCALE, d, 512)
                        for c in ("nopref", "repl")]
        serial = run_tasks(mk(serial_dir), jobs=1)
        parallel = run_tasks(mk(par_dir), jobs=2)
        for cfg in ("nopref", "repl"):
            a = (serial_dir / f"tree_{cfg}.jsonl").read_bytes()
            b = (par_dir / f"tree_{cfg}.jsonl").read_bytes()
            assert a == b
        assert [s.sha256 for s in serial] == [p.sha256 for p in parallel]


class TestTraceCliStream:
    def test_stream_output_is_byte_identical_to_buffered(self, capsys):
        from repro.obs import cli
        assert cli.main([APP, CONFIG, "--scale", str(SCALE)]) == 0
        plain = capsys.readouterr().out
        assert cli.main([APP, CONFIG, "--scale", str(SCALE), "--stream",
                         "--stream-buffer", "100"]) == 0
        streamed = capsys.readouterr().out
        assert streamed == plain

    def test_stream_out_dir_files_match_buffered(self, tmp_path, capsys,
                                                 buffered):
        from repro.obs import cli
        out = tmp_path / "made" / "by" / "cli"
        assert cli.main([APP, CONFIG, "--scale", str(SCALE), "--stream",
                         "--out-dir", str(out)]) == 0
        capsys.readouterr()
        assert (out / "tree_repl.jsonl").read_text(
            encoding="ascii") == buffered.jsonl()
        merged = json.loads((out / "metrics.json").read_text())
        assert merged == buffered.metrics
        assert not list(out.glob("*.tmp"))

    def test_stream_rejects_pool_and_cache_flags(self):
        from repro.obs import cli
        with pytest.raises(SystemExit):
            cli.main([APP, CONFIG, "--stream", "--jobs", "2"])
        with pytest.raises(SystemExit):
            cli.main([APP, CONFIG, "--stream", "--cache-dir", "/tmp/x"])
        with pytest.raises(SystemExit):
            cli.main([APP, CONFIG, "--stream", "--stream-buffer", "0"])
