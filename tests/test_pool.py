"""Tests for the parallel fan-out engine (:mod:`repro.perf.pool`).

The contract under test: serial, parallel, and warm-cache executions of
the same task list produce identical results in identical (task) order,
and the scale override travels with tasks instead of through module
globals.
"""

import dataclasses

import pytest

from repro.experiments import common
from repro.faults.plan import FaultPlan
from repro.perf.cache import ResultCache
from repro.perf.pool import (KIND_SIM, MatrixTask, execute_task, fig5_task,
                             prewarm, resolve_task_config, run_tasks,
                             sim_task, tablesize_task, task_cache_key)
from repro.sim.config import SystemConfig, preset
from repro.sim.driver import run_matrix

SCALE = 0.02

TASKS = [
    sim_task("tree", "nopref", SCALE),
    sim_task("tree", "repl", SCALE),
    fig5_task("tree", SCALE, ("seq1", "repl")),
    tablesize_task("tree", SCALE),
]


@pytest.fixture(scope="module")
def serial_results():
    return run_tasks(list(TASKS), jobs=1)


class TestTasks:
    def test_labels(self):
        assert TASKS[0].label() == "tree/nopref"
        assert TASKS[2].label() == "fig5:tree"

    def test_resolve_preset_and_explicit_config(self):
        assert resolve_task_config(TASKS[1]) == preset("repl")
        explicit = preset("base")
        assert resolve_task_config(
            sim_task("tree", explicit, SCALE)) is explicit

    def test_unknown_kind_rejected(self):
        bogus = MatrixTask(kind="nope", app="tree", scale=SCALE)
        with pytest.raises(ValueError):
            task_cache_key(bogus)
        with pytest.raises(ValueError):
            execute_task(bogus)

    def test_cache_key_distinguishes_cells(self):
        keys = [repr(task_cache_key(t)) for t in TASKS]
        assert len(set(keys)) == len(keys)


class TestParallelParity:
    def test_results_in_task_order(self, serial_results):
        sim_nopref, sim_repl, fig5_row, sizing = serial_results
        assert sim_nopref.config_name == "nopref"
        assert sim_repl.config_name == "repl"
        assert list(fig5_row) == ["seq1", "repl"]  # predictor order kept
        assert sizing.app == "tree"

    def test_parallel_matches_serial(self, serial_results):
        parallel_results = run_tasks(list(TASKS), jobs=2)
        assert parallel_results == serial_results

    def test_warm_cache_matches_serial(self, serial_results, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_tasks(list(TASKS), jobs=1, cache=cache)
        assert cold == serial_results
        assert cache.stats.stores == len(TASKS)
        warm = run_tasks(list(TASKS), jobs=1, cache=cache)
        assert warm == serial_results
        assert cache.stats.hits == len(TASKS)
        # Warm-parallel: everything is served in the parent, no pool work.
        assert run_tasks(list(TASKS), jobs=2, cache=cache) == serial_results

    def test_prewarm_reports_progress(self, serial_results, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        run_tasks(list(TASKS), jobs=1, cache=cache)
        results = prewarm(list(TASKS), jobs=1, cache=cache, verbose=True)
        assert results == serial_results
        captured = capsys.readouterr()
        # Progress goes to stderr only: stdout must stay byte-comparable
        # between serial and parallel runs.
        assert captured.out == ""
        assert f"[prewarm] {len(TASKS)}/{len(TASKS)}" in captured.err

    def test_failed_task_leaves_none_slot(self, capsys):
        tasks = [sim_task("no-such-app", "nopref", SCALE),
                 tablesize_task("tree", SCALE)]
        results = run_tasks(tasks, jobs=1)
        assert results[0] is None
        assert results[1] is not None
        assert "no-such-app" in capsys.readouterr().err


class TestRunMatrixKeying:
    def test_string_configs_keyed_by_name(self):
        matrix = run_matrix(["tree"], ["nopref"], scale=SCALE)
        assert set(matrix) == {("tree", "nopref")}

    def test_adhoc_configs_sharing_a_name_do_not_collide(self):
        """Regression: run_matrix used to key on (app, result.config_name),
        so two ad-hoc configs with the same ``name`` (e.g. a chaos sweep
        varying only the fault rate) silently overwrote each other."""
        base = preset("nopref")
        variant = dataclasses.replace(
            base, fault_plan=FaultPlan.uniform(1e-4, seed=3))
        assert variant.name == base.name  # same display name on purpose
        matrix = run_matrix(["tree"], [base, variant], scale=SCALE)
        assert len(matrix) == 2
        assert matrix[("tree", base)].config_name == base.name
        assert matrix[("tree", variant)] is not matrix[("tree", base)]

    def test_parallel_matrix_matches_serial(self, tmp_path):
        serial = run_matrix(["tree"], ["nopref", "repl"], scale=SCALE)
        parallel = run_matrix(["tree"], ["nopref", "repl"], scale=SCALE,
                              jobs=2, cache=ResultCache(tmp_path / "c"))
        assert set(serial) == set(parallel)
        for key, result in serial.items():
            assert parallel[key] == result


class TestScaleOverride:
    def test_default_without_override(self):
        assert common.resolve_scale(None) == common.DEFAULT_SCALE
        assert common.resolve_scale(0.3) == 0.3

    def test_override_applies_and_unwinds(self):
        with common.use_scale(0.25) as scale:
            assert scale == 0.25
            assert common.resolve_scale(None) == 0.25
            assert common.resolve_scale(0.5) == 0.5  # explicit wins
        assert common.resolve_scale(None) == common.DEFAULT_SCALE

    def test_none_override_is_passthrough(self):
        with common.use_scale(None) as scale:
            assert scale == common.DEFAULT_SCALE
            assert common.resolve_scale(None) == common.DEFAULT_SCALE

    def test_nested_overrides(self):
        with common.use_scale(0.25):
            with common.use_scale(0.125):
                assert common.resolve_scale(None) == 0.125
            assert common.resolve_scale(None) == 0.25

    def test_unwinds_on_exception(self):
        with pytest.raises(RuntimeError):
            with common.use_scale(0.25):
                raise RuntimeError("boom")
        assert common.resolve_scale(None) == common.DEFAULT_SCALE

    def test_default_scale_constant_not_rebound(self):
        """The module constant itself must never move (PAR001): overrides
        live on the stack, not in ``DEFAULT_SCALE``."""
        before = common.DEFAULT_SCALE
        with common.use_scale(0.25):
            assert common.DEFAULT_SCALE == before
        assert common.DEFAULT_SCALE == before


class TestRunallEnumeration:
    def test_enumerates_full_matrix(self):
        from repro.experiments.runall import enumerate_tasks
        tasks = enumerate_tasks(SCALE)
        apps = common.all_apps()
        sims = [t for t in tasks if t.kind == KIND_SIM]
        # 9 distinct config columns x every app, plus one fig5 row and one
        # table-sizing run per app.
        assert len(sims) == 9 * len(apps)
        assert len(tasks) == len(sims) + 2 * len(apps)
        labels = [t.label() for t in tasks]
        assert len(set(labels)) == len(labels)

    def test_every_config_resolvable(self):
        from repro.experiments.runall import enumerate_tasks
        for task in enumerate_tasks(SCALE):
            if task.kind == KIND_SIM:
                assert isinstance(resolve_task_config(task), SystemConfig)
