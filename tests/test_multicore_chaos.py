"""Per-core fault isolation of the multicore layer (satellite 4 of ISSUE 9).

The chaos contract: cores are coupled only through pre-run *grants*
(table partition, push-window budgets), never through shared mutable
state — so killing one core's ULMT mid-run cannot move a neighbour by a
single byte.  Under the ``static`` policy the grants are independent of
the fault plan, which makes the claim exactly testable: the victim's
crash/warm-restart cycle is fully absorbed inside its own tile while
every other core's ``SimResult.to_dict()`` stays identical to the
fault-free bundle's.

The warm-restart bound rides the existing fault machinery: every
injected crash is followed by a warm restart (``ulmt_warm_restarts ==
crashes_injected`` — no crash leaves the ULMT dead), and the traced run
shows each ``ulmt.warm_restart`` event on the victim's lane only.
"""

import pytest

from repro.faults.plan import FaultPlan
from repro.multicore import run_multicore, run_multicore_traced
from repro.multicore.system import MulticoreSystem
from repro.sim.config import preset
from repro.workloads.registry import get_trace

SCALE = 0.02
BUNDLE = "tree+cg"
VICTIM = 0
#: Aggressive per-observation crash rate so several crashes land even at
#: the small tier-1 scale; the seed fixes the schedule.
CRASH_PLAN = FaultPlan(crash=0.01, seed=7)


def _config():
    return preset("repl").with_cores(2)


@pytest.fixture(scope="module")
def baseline():
    return run_multicore(BUNDLE, _config(), scale=SCALE)


@pytest.fixture(scope="module")
def chaos():
    return run_multicore(BUNDLE, _config(), scale=SCALE,
                         fault_plans={VICTIM: CRASH_PLAN})


class TestVictim:
    def test_crashes_fire_and_every_one_warm_restarts(self, chaos):
        victim = chaos.core(VICTIM)
        assert victim.faults.crashes_injected >= 1
        # The watchdog bound: each crash is followed by a warm restart
        # within the run — the ULMT is never left dead.
        assert (victim.robustness.ulmt_warm_restarts
                == victim.faults.crashes_injected)

    def test_crashes_actually_perturb_the_victim(self, chaos, baseline):
        assert (chaos.core(VICTIM).to_dict()
                != baseline.core(VICTIM).to_dict())


class TestIsolation:
    def test_other_core_is_byte_identical_to_fault_free(self, chaos,
                                                        baseline):
        for core in range(2):
            if core == VICTIM:
                continue
            assert chaos.core(core).to_dict() == baseline.core(core).to_dict()
            assert chaos.core(core).faults.crashes_injected == 0

    def test_static_grants_ignore_the_fault_plan(self, chaos, baseline):
        assert chaos.allocation == baseline.allocation

    def test_chaos_run_is_replayable(self, chaos):
        again = run_multicore(BUNDLE, _config(), scale=SCALE,
                              fault_plans={VICTIM: CRASH_PLAN})
        assert again.to_dict() == chaos.to_dict()


class TestWarmRestartEvents:
    def test_restart_events_land_on_the_victim_lane_only(self):
        run = run_multicore_traced(BUNDLE, _config(), scale=SCALE,
                                   fault_plans={VICTIM: CRASH_PLAN})
        restarts = [e for e in run.events if e.kind == "ulmt.warm_restart"]
        victim = run.result.core(VICTIM)
        assert len(restarts) == victim.faults.crashes_injected >= 1
        assert {dict(e.info)["core"] for e in restarts} == {VICTIM}


class TestPlanDerivation:
    """Bundle-level plans re-seed per core; overrides pass verbatim."""

    def test_bundle_plan_is_reseeded_per_core(self):
        plan = FaultPlan(crash=0.001, seed=42)
        config = preset("repl").with_faults(plan).with_cores(2)
        traces = [get_trace(app, scale=SCALE) for app in ("tree", "cg")]
        system = MulticoreSystem(config, ("tree", "cg"), traces)
        assert system.tiles[0].system.config.fault_plan.seed == 42
        assert system.tiles[1].system.config.fault_plan.seed == \
            plan.for_core(1).seed

    def test_override_wins_verbatim(self):
        traces = [get_trace(app, scale=SCALE) for app in ("tree", "cg")]
        system = MulticoreSystem(_config(), ("tree", "cg"), traces,
                                 fault_plans={1: CRASH_PLAN})
        assert system.tiles[1].system.config.fault_plan is CRASH_PLAN
        assert system.tiles[0].system.config.fault_plan is None
