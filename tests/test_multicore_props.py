"""Property tests for the multicore coordination and interleaving layer.

Three invariants, pinned over hypothesis-generated inputs:

* **partition conservation** — the table-capacity (and push-budget)
  grants always sum to the configured total, whatever the shares;
* **event conservation** — the interleaver walks every per-app miss
  stream exactly once: each core's step count equals its trace length,
  no reference is dropped or double-stepped;
* **arbitration determinism** — the scheduling order (and everything
  downstream of it) is a pure function of the cell: re-running the same
  bundle replays the identical schedule and byte-identical results.
"""

import json

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.multicore.coordination import (  # noqa: E402
    POLICIES,
    TABLE_GRANT_QUANTUM,
    allocate,
    apportion,
)
from repro.multicore.system import MulticoreSystem  # noqa: E402
from repro.sim.config import preset  # noqa: E402
from repro.workloads.trace import MemRef, Trace  # noqa: E402

shares_lists = st.lists(st.integers(min_value=0, max_value=10**6),
                        min_size=1, max_size=16)


class TestApportion:
    @given(total=st.integers(min_value=0, max_value=10**7),
           shares=shares_lists)
    def test_sums_to_total(self, total, shares):
        parts = apportion(total, shares)
        assert sum(parts) == total
        assert all(part >= 0 for part in parts)

    @given(total=st.integers(min_value=0, max_value=10**7),
           shares=shares_lists,
           minimum=st.integers(min_value=1, max_value=8))
    def test_minimum_floor_preserves_the_sum(self, total, shares, minimum):
        if minimum * len(shares) > total:
            with pytest.raises(ValueError):
                apportion(total, shares, minimum=minimum)
            return
        parts = apportion(total, shares, minimum=minimum)
        assert sum(parts) == total
        assert min(parts) >= minimum

    @given(total=st.integers(min_value=0, max_value=10**6),
           n=st.integers(min_value=1, max_value=16))
    def test_equal_shares_split_evenly(self, total, n):
        parts = apportion(total, [1] * n)
        assert max(parts) - min(parts) <= 1

    @given(total=st.integers(min_value=0, max_value=10**6),
           shares=shares_lists)
    def test_deterministic(self, total, shares):
        assert apportion(total, shares) == apportion(total, shares)


# -- synthetic bundles for the interleaver properties -------------------------------

def _trace(name: str, seeds: list[int]) -> Trace:
    """A tiny deterministic trace from a list of line indices."""
    refs = [MemRef(addr=0x1000_0000 + (s % 512) * 64,
                   is_write=(s % 7 == 0),
                   comp_cycles=s % 11,
                   dependent=(s % 5 == 0))
            for s in seeds]
    return Trace(refs, name=name)


bundle_traces = st.lists(
    st.lists(st.integers(min_value=0, max_value=10**6),
             min_size=1, max_size=40),
    min_size=1, max_size=4)


class TestAllocate:
    @given(traces=bundle_traces, policy=st.sampled_from(POLICIES),
           table_units=st.integers(min_value=4, max_value=1 << 14))
    @settings(max_examples=30, deadline=None)
    def test_partitions_sum_to_the_configured_total(self, traces, policy,
                                                    table_units):
        from dataclasses import replace
        n = len(traces)
        table_rows = table_units * TABLE_GRANT_QUANTUM
        apps = tuple(f"app{i}" for i in range(n))
        config = replace(preset("repl").with_cores(n, policy),
                         num_rows=table_rows)
        allocation = allocate(
            config, apps, [_trace(a, s) for a, s in zip(apps, traces)])
        assert allocation.table_total == table_rows
        assert sum(g.num_rows for g in allocation.grants) == table_rows
        assert sum(g.push_budget for g in allocation.grants) == \
            allocation.push_total
        assert all(g.push_budget >= 1 for g in allocation.grants)
        # Every grant is a whole number of quanta — and so a legal
        # num_rows for any table associativity in the matrix.
        assert all(g.num_rows >= TABLE_GRANT_QUANTUM and
                   g.num_rows % TABLE_GRANT_QUANTUM == 0
                   for g in allocation.grants)

    @given(traces=bundle_traces, policy=st.sampled_from(POLICIES),
           table_rows=st.integers(min_value=64, max_value=1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_unaligned_budgets_truncate_to_a_quantum(self, traces, policy,
                                                     table_rows):
        from dataclasses import replace
        n = len(traces)
        units = table_rows // TABLE_GRANT_QUANTUM
        apps = tuple(f"app{i}" for i in range(n))
        config = replace(preset("repl").with_cores(n, policy),
                         num_rows=table_rows)
        built = [_trace(a, s) for a, s in zip(apps, traces)]
        if units < n:
            with pytest.raises(ValueError):
                allocate(config, apps, built)
            return
        allocation = allocate(config, apps, built)
        assert allocation.table_total == units * TABLE_GRANT_QUANTUM
        assert sum(g.num_rows for g in allocation.grants) == \
            allocation.table_total


class TestInterleaver:
    @given(traces=bundle_traces)
    @settings(max_examples=15, deadline=None)
    def test_event_conservation(self, traces):
        """Every per-app reference is stepped exactly once."""
        n = len(traces)
        apps = tuple(f"app{i}" for i in range(n))
        built = [_trace(a, s) for a, s in zip(apps, traces)]
        system = MulticoreSystem(preset("repl").with_cores(n), apps, built,
                                 record_schedule=True)
        system.run()
        assert [tile.steps for tile in system.tiles] == \
            [len(t) for t in built]
        # The recorded schedule is exactly the multiset of steps.
        assert len(system.schedule) == sum(len(t) for t in built)
        for i, trace in enumerate(built):
            assert system.schedule.count(i) == len(trace)

    @given(traces=bundle_traces)
    @settings(max_examples=10, deadline=None)
    def test_arbitration_is_deterministic(self, traces):
        n = len(traces)
        apps = tuple(f"app{i}" for i in range(n))
        config = preset("repl").with_cores(n)

        def once():
            built = [_trace(a, s) for a, s in zip(apps, traces)]
            system = MulticoreSystem(config, apps, built,
                                     record_schedule=True)
            result = system.run()
            return system.schedule, json.dumps(result.to_dict(),
                                               sort_keys=True)

        first_schedule, first_result = once()
        second_schedule, second_result = once()
        assert first_schedule == second_schedule
        assert first_result == second_result
