"""Tests for the bus occupancy model and the DRAM timing model."""

import pytest

from repro.memsys.bus import Bus
from repro.memsys.dram import Dram
from repro.params import MemoryParams


class TestBus:
    def test_back_to_back_transfers_serialize(self):
        bus = Bus()
        end1 = bus.schedule(0, 32, "demand")
        end2 = bus.schedule(0, 32, "demand")
        assert end1 == 32
        assert end2 == 64

    def test_idle_gap_preserved(self):
        bus = Bus()
        bus.schedule(0, 32, "demand")
        end = bus.schedule(100, 32, "demand")
        assert end == 132

    def test_traffic_attribution(self):
        bus = Bus()
        bus.schedule(0, 32, "demand")
        bus.schedule(0, 32, "prefetch")
        bus.schedule(0, 32, "writeback")
        assert bus.stats.demand_cycles == 32
        assert bus.stats.prefetch_cycles == 32
        assert bus.stats.writeback_cycles == 32
        assert bus.stats.total_busy == 96

    def test_utilization(self):
        bus = Bus()
        bus.schedule(0, 50, "demand")
        assert bus.stats.utilization(200) == pytest.approx(0.25)
        assert bus.stats.prefetch_utilization(200) == 0.0

    def test_unknown_kind_rejected(self):
        bus = Bus()
        with pytest.raises(ValueError):
            bus.schedule(0, 10, "bogus")

    def test_zero_total_cycles(self):
        assert Bus().stats.utilization(0) == 0.0


class TestDramMapping:
    def test_sequential_lines_alternate_channels(self):
        dram = Dram(MemoryParams())
        ch0, _, _ = dram.map_address(0)
        ch1, _, _ = dram.map_address(64)
        assert {ch0, ch1} == {0, 1}

    def test_same_row_same_bank(self):
        dram = Dram(MemoryParams())
        c1, b1, r1 = dram.map_address(0)
        c2, b2, r2 = dram.map_address(128)  # same 4 KB row, same channel
        assert (c1, b1, r1) == (c2, b2, r2)


class TestDramTiming:
    def test_first_access_is_row_miss(self):
        dram = Dram(MemoryParams())
        access = dram.access(0, 0)
        assert not access.row_hit
        assert dram.row_misses == 1

    def test_second_access_same_row_hits(self):
        dram = Dram(MemoryParams())
        dram.access(0, 0)
        access = dram.access(128, 1000)
        assert access.row_hit

    def test_row_conflict_misses(self):
        p = MemoryParams()
        dram = Dram(p)
        dram.access(0, 0)
        # Same channel+bank, different row: rows are row_bytes apart and
        # banks interleave at row granularity, so skip a full bank rotation.
        conflict_addr = p.row_bytes * p.num_channels * p.banks_per_channel
        same = dram.map_address(0)
        other = dram.map_address(conflict_addr)
        assert same[:2] == other[:2] and same[2] != other[2]
        access = dram.access(conflict_addr, 10_000)
        assert not access.row_hit

    def test_bank_contention_serializes(self):
        p = MemoryParams()
        dram = Dram(p)
        a1 = dram.access(0, 0)
        a2 = dram.access(128, 0)   # same bank, same row
        # Second access waits for the first bank service to finish.
        assert a2.data_ready > a1.data_ready

    def test_contention_free_service_row_miss(self):
        p = MemoryParams()
        dram = Dram(p)
        access = dram.access(0, 0)
        assert access.data_ready == (p.bank_service_row_miss
                                     + p.channel_transfer_l2_line)

    def test_row_hit_rate(self):
        dram = Dram(MemoryParams())
        dram.access(0, 0)
        dram.access(128, 1000)
        assert dram.row_hit_rate == pytest.approx(0.5)

    def test_access_no_transfer_skips_channel(self):
        p = MemoryParams()
        dram = Dram(p)
        access = dram.access_no_transfer(0, 0)
        assert access.data_ready == p.bank_service_row_miss
