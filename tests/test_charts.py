"""Tests for the terminal chart renderer."""

from repro.experiments.charts import bar_chart, hbar, stacked_bar_chart


class TestHbar:
    def test_full_bar(self):
        assert hbar(10, 10, width=5) == "█████"

    def test_half_bar(self):
        assert hbar(5, 10, width=4) == "██"

    def test_zero_max(self):
        assert hbar(5, 0) == ""

    def test_clamped_overflow(self):
        assert hbar(20, 10, width=4) == "████"


class TestBarChart:
    def test_renders_labels_and_values(self):
        text = bar_chart([("alpha", 1.0), ("b", 2.0)], width=10,
                         title="T", unit="x")
        assert "T" in text
        assert "alpha" in text
        assert "2.00x" in text

    def test_longest_bar_fills_width(self):
        text = bar_chart([("a", 1.0), ("b", 4.0)], width=8)
        lines = text.splitlines()
        assert "█" * 8 in lines[1]
        assert "█" * 2 in lines[0]

    def test_empty(self):
        assert bar_chart([], title="nothing") == "nothing"


class TestStackedBarChart:
    def test_segments_and_legend(self):
        text = stacked_bar_chart(
            [("nopref", {"busy": 0.2, "beyondl2": 0.8}),
             ("repl", {"busy": 0.2, "beyondl2": 0.4})],
            segments=("busy", "beyondl2"), width=10, total_of=1.0)
        assert "█" in text and "▓" in text
        assert "busy" in text and "beyondl2" in text

    def test_totals_printed(self):
        text = stacked_bar_chart([("x", {"a": 0.3, "b": 0.3})],
                                 segments=("a", "b"), total_of=1.0)
        assert "0.60" in text

    def test_bar_never_exceeds_width(self):
        text = stacked_bar_chart([("x", {"a": 5.0})], segments=("a",),
                                 width=10, total_of=1.0)
        bar_line = text.splitlines()[0]
        inside = bar_line.split("|")[1]
        assert len(inside) == 10
