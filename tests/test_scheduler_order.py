"""Longest-first launch scheduling must never change any output.

The scheduler (:func:`repro.perf.pool.launch_order`) reorders only the
*submission* of pool tasks; results are collected by task index, so the
returned list — and everything downstream of it (figures, run tables,
cache contents) — must be byte-identical to an unsorted run.  These tests
pin that contract plus the estimator's ordering properties.
"""

import pytest

from repro.perf.pool import (fig5_task, launch_order, run_tasks, sim_task,
                             tablesize_task, task_cost_estimate)
from repro.sim.serialize import json_line

SCALE = 0.02

TASKS = [
    sim_task("mcf", "nopref", SCALE),       # lightest app, lightest config
    sim_task("tree", "repl", SCALE),        # heaviest app, ULMT config
    sim_task("sparse", "conven4+repl", SCALE),
    fig5_task("tree", SCALE, ("seq1",)),
    tablesize_task("mcf", SCALE),
]


class TestCostEstimate:
    def test_pure_function_of_the_task(self):
        a = task_cost_estimate(sim_task("tree", "repl", SCALE))
        b = task_cost_estimate(sim_task("tree", "repl", SCALE))
        assert a == b > 0

    def test_orders_by_app_and_config_weight(self):
        light = task_cost_estimate(sim_task("mcf", "nopref", SCALE))
        ulmt = task_cost_estimate(sim_task("mcf", "repl", SCALE))
        heavy = task_cost_estimate(sim_task("tree", "repl", SCALE))
        assert light < ulmt < heavy

    def test_scale_is_linear(self):
        one = task_cost_estimate(sim_task("cg", "base", 0.1))
        four = task_cost_estimate(sim_task("cg", "base", 0.4))
        assert four == pytest.approx(4 * one)

    def test_unknown_app_uses_default_weight(self):
        # Must not raise: ad-hoc traces flow through the pool too.
        assert task_cost_estimate(sim_task("not-an-app", "nopref",
                                           SCALE)) > 0

    def test_fig5_outweighs_the_plain_cell(self):
        assert task_cost_estimate(fig5_task("tree", SCALE, ("seq1",))) > \
            task_cost_estimate(sim_task("tree", "nopref", SCALE))


class TestLaunchOrder:
    def test_longest_first_ties_in_index_order(self):
        tasks = [sim_task("mcf", "nopref", SCALE),
                 sim_task("mcf", "nopref", SCALE),
                 sim_task("tree", "repl", SCALE)]
        assert launch_order(tasks, [0, 1, 2]) == [2, 0, 1]

    def test_subset_of_pending_only(self):
        order = launch_order(TASKS, [0, 3])
        assert sorted(order) == [0, 3]

    def test_permutation_of_pending(self):
        order = launch_order(TASKS, list(range(len(TASKS))))
        assert sorted(order) == list(range(len(TASKS)))


class TestOutputUnchanged:
    def test_parallel_results_identical_to_serial_order(self):
        # The regression the scheduler must never introduce: the results
        # list (and hence every serialized artifact) stays in task-index
        # order and byte-identical to the unsorted serial run.
        serial = run_tasks(list(TASKS), jobs=1)
        parallel = run_tasks(list(TASKS), jobs=2)
        assert parallel == serial
        for s, p in zip(serial, parallel):
            if hasattr(s, "to_dict"):
                assert json_line(s.to_dict()) == json_line(p.to_dict())
