"""The multicore layer's single-core-identity gate.

The contract (see ``docs/MULTICORE.md``): with ``num_cores=1`` the
multicore driver must build *exactly* the solo machine — same config
bytes, the full correlation table, no push gate — so its per-core
``SimResult.to_dict()`` is byte-identical to both existing engines on
every preset of the matrix.  Anything less and the multicore path is a
different simulator riding the same name.

The full 9x13 matrix runs in CI's ``multicore-parity`` job; here a
rotating app per config (the kernel-parity scheme) keeps tier 1 fast
while touching every config family.
"""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.multicore import (
    MulticoreResult,
    parse_bundle,
    run_multicore,
    run_multicore_traced,
)
from repro.perf.cache import sim_cache_key
from repro.sim.config import PRESETS, custom_config, preset
from repro.sim.driver import run_simulation
from repro.workloads.registry import get_trace, list_workloads

SCALE = 0.02

#: One (config, app) cell per preset family, apps rotating — the same
#: scheme (and therefore the same coverage argument) as the kernel
#: parity gate in tests/test_kernel_parity.py.
CELLS = [(name, app) for name, app in zip(
    list(PRESETS) + ["custom"],
    (list_workloads() * 3))]


def _resolved(app: str, config: str):
    return custom_config(app) if config == "custom" else preset(config)


def _canon(d: dict) -> str:
    return json.dumps(d, sort_keys=True)


@pytest.fixture(scope="module")
def multicore_runs():
    """Every cell once through the 1-core multicore driver."""
    return {(config, app): run_multicore(app, config, scale=SCALE)
            for config, app in CELLS}


class TestSingleCoreIdentity:
    @pytest.mark.parametrize("config,app", CELLS,
                             ids=[f"{c}-{a}" for c, a in CELLS])
    def test_matches_event_engine(self, config, app, multicore_runs):
        mc = multicore_runs[(config, app)]
        assert mc.num_cores == 1
        solo = run_simulation(app, _resolved(app, config), scale=SCALE)
        assert _canon(mc.core(0).to_dict()) == _canon(solo.to_dict())

    @pytest.mark.parametrize("config,app", CELLS,
                             ids=[f"{c}-{a}" for c, a in CELLS])
    def test_matches_batch_engine(self, config, app, multicore_runs):
        mc = multicore_runs[(config, app)]
        batch = run_simulation(
            app, _resolved(app, config).with_engine("batch"), scale=SCALE)
        assert _canon(mc.core(0).to_dict()) == _canon(batch.to_dict())

    def test_traced_stream_identical_to_solo(self):
        """A 1-core traced bundle threads the tracer straight through."""
        from repro.obs.runner import run_traced
        solo = run_traced("tree", "repl", scale=SCALE)
        mc = run_multicore_traced("tree", "repl", scale=SCALE)
        assert mc.jsonl() == solo.jsonl()
        assert mc.metrics == solo.metrics

    def test_one_core_grants_whole_table_and_no_gate(self):
        from repro.multicore.system import MulticoreSystem
        trace = get_trace("tree", scale=SCALE)
        config = preset("repl")
        system = MulticoreSystem(config, ("tree",), (trace,))
        assert system.allocation.grant(0).num_rows == \
            system.allocation.table_total
        assert system.tiles[0].system.push_gate is None
        # The tile config IS the bundle config — not a rebuilt equal.
        assert system.tiles[0].system.config is config


class TestDispatch:
    def test_run_simulation_dispatches_on_num_cores(self):
        result = run_simulation("tree+cg", preset("repl").with_cores(2),
                                scale=SCALE)
        assert isinstance(result, MulticoreResult)
        assert result.workload == "tree+cg"

    def test_trace_object_workload_rejected(self):
        trace = get_trace("tree", scale=SCALE)
        with pytest.raises(ValueError):
            run_simulation(trace, preset("repl").with_cores(2))

    def test_bundle_width_must_match_cores(self):
        with pytest.raises(ValueError):
            run_multicore("tree+cg+mst", preset("repl").with_cores(2),
                          scale=SCALE)

    def test_unknown_bundle_component_rejected(self):
        with pytest.raises(ValueError):
            parse_bundle("tree+nosuchapp")

    def test_custom_cannot_scale_out(self):
        with pytest.raises(ValueError):
            run_multicore("tree+cg", "custom", scale=SCALE)


class TestCacheKeys:
    """num_cores/coordination stay out of single-core cache keys."""

    def test_default_config_key_unchanged(self):
        key = sim_cache_key("tree", preset("repl"), SCALE, None)
        assert "num_cores" not in key["config"]
        assert "coordination" not in key["config"]

    def test_multicore_config_keys_carry_the_fields(self):
        key = sim_cache_key("tree+cg", preset("repl").with_cores(2, "demand"),
                            SCALE, None)
        assert key["config"]["num_cores"] == 2
        assert key["config"]["coordination"] == "demand"


class TestCampaignSpec:
    def test_single_core_header_dict_unchanged(self):
        spec = CampaignSpec(apps=("tree",), configs=("nopref",), scale=SCALE)
        assert "cores" not in spec.to_dict()
        assert "coordination" not in spec.to_dict()

    def test_multicore_spec_round_trips(self):
        spec = CampaignSpec(apps=("tree+cg",), configs=("nopref", "repl"),
                            scale=SCALE, cores=2, coordination="demand")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_bundle_width_validated(self):
        with pytest.raises(ValueError):
            CampaignSpec(apps=("tree",), configs=("repl",), cores=2)
        with pytest.raises(ValueError):
            CampaignSpec(apps=("tree+cg",), configs=("custom",), cores=2)

    def test_tasks_are_mc_tasks_with_full_configs(self):
        from repro.perf.pool import KIND_MC
        spec = CampaignSpec(apps=("tree+cg",), configs=("repl",),
                            scale=SCALE, cores=2)
        tasks = spec.tasks()
        assert [t.kind for t in tasks] == [KIND_MC]
        assert tasks[0].config.num_cores == 2
