"""Tests for the software correlation table."""

import pytest

from repro.core.table import CorrelationTable, NullCostSink


def make_table(num_rows=8, assoc=2, num_succ=2, num_levels=1):
    return CorrelationTable(num_rows=num_rows, assoc=assoc,
                            num_succ=num_succ, num_levels=num_levels)


class TestAllocation:
    def test_find_missing_returns_none(self):
        t = make_table()
        assert t.find(5) is None

    def test_find_or_alloc_creates_row(self):
        t = make_table()
        row = t.find_or_alloc(5)
        assert row.tag == 5
        assert t.find(5) is row
        assert t.rows_allocated == 1

    def test_row_replacement_lru(self):
        t = make_table(num_rows=4, assoc=2)  # 2 sets
        # Tags 0, 2, 4 all map to set 0.
        t.find_or_alloc(0)
        t.find_or_alloc(2)
        t.find(0)            # refresh 0
        t.find_or_alloc(4)   # evicts 2
        assert t.find(0) is not None
        assert t.find(2) is None
        assert t.row_replacements == 1

    def test_row_addresses_stable_per_way(self):
        t = make_table(num_rows=4, assoc=2)
        r0 = t.find_or_alloc(0)
        r2 = t.find_or_alloc(2)
        addr2 = r2.addr
        t.find(0)
        r4 = t.find_or_alloc(4)  # recycles row 2's slot
        assert r4.addr == addr2

    def test_size_bytes(self):
        t = CorrelationTable(num_rows=100, assoc=2, num_succ=2,
                             row_bytes=28)
        assert t.size_bytes == 2800

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelationTable(num_rows=0, assoc=2, num_succ=2)
        with pytest.raises(ValueError):
            CorrelationTable(num_rows=5, assoc=2, num_succ=2)
        with pytest.raises(ValueError):
            CorrelationTable(num_rows=4, assoc=2, num_succ=0)


class TestSuccessors:
    def test_mru_insertion(self):
        t = make_table(num_succ=2)
        row = t.find_or_alloc(1)
        t.insert_successor(row, 0, 10)
        t.insert_successor(row, 0, 20)
        assert row.successors(0) == [20, 10]

    def test_mru_reinsertion_moves_to_front(self):
        t = make_table(num_succ=3)
        row = t.find_or_alloc(1)
        for succ in (10, 20, 30):
            t.insert_successor(row, 0, succ)
        t.insert_successor(row, 0, 10)
        assert row.successors(0) == [10, 30, 20]

    def test_num_succ_bound(self):
        t = make_table(num_succ=2)
        row = t.find_or_alloc(1)
        for succ in (10, 20, 30):
            t.insert_successor(row, 0, succ)
        assert row.successors(0) == [30, 20]

    def test_multi_level_rows(self):
        t = make_table(num_levels=3)
        row = t.find_or_alloc(1)
        t.insert_successor(row, 0, 10)
        t.insert_successor(row, 1, 20)
        t.insert_successor(row, 2, 30)
        assert row.successors(0) == [10]
        assert row.successors(1) == [20]
        assert row.successors(2) == [30]


class TestPageRemap:
    def test_rows_relocate(self):
        t = make_table(num_rows=64, assoc=2)
        # Lines 0..3 belong to page 0 (4 lines per page here).
        row = t.find_or_alloc(2)
        t.insert_successor(row, 0, 3)
        moved = t.remap_page(old_page=0, new_page=5, page_lines=4)
        assert moved == 1
        assert t.find(2) is None
        relocated = t.find(5 * 4 + 2)
        assert relocated is not None
        assert relocated.successors(0) == [5 * 4 + 3]

    def test_successors_in_other_rows_rewritten(self):
        t = make_table(num_rows=64, assoc=2)
        row = t.find_or_alloc(100)
        t.insert_successor(row, 0, 1)   # points into page 0
        t.remap_page(old_page=0, new_page=7, page_lines=4)
        assert t.find(100).successors(0) == [7 * 4 + 1]

    def test_replacement_fraction(self):
        t = make_table(num_rows=4, assoc=2)
        for tag in (0, 2, 4, 6):
            t.find_or_alloc(tag)
        assert t.replacement_fraction() == pytest.approx(0.5)


class TestCostReporting:
    def test_find_charges_search(self):
        calls = []

        class Sink(NullCostSink):
            def charge_search(self, ways, addr):
                calls.append(("search", ways))

            def charge_row_access(self, addr):
                calls.append(("row", addr))

        t = make_table()
        t.find_or_alloc(1, Sink())
        kinds = [c[0] for c in calls]
        assert "search" in kinds
        assert "row" in kinds
