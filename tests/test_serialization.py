"""Round-trip tests for the result-cache serialisation layer.

The persistent cache (:mod:`repro.perf.cache`) stores results as JSON;
correctness of warm-cache runs rests on *exact* round-tripping — a
:class:`~repro.sim.stats.SimResult` loaded from disk must compare equal
to (and print byte-identically with) the freshly simulated one.
"""

import dataclasses
import json

import pytest

from repro.cpu.processor import ProcessorStats
from repro.core.ulmt import UlmtStats
from repro.faults.plan import FaultStats
from repro.memsys.bus import BusStats
from repro.memsys.l2 import L2Stats
from repro.sim.driver import run_simulation
from repro.sim.serialize import canonical, flat_from_dict, flat_to_dict
from repro.sim.stats import RobustnessStats, SimResult, UlmtTimingStats
from repro.sim.config import preset

#: Every flat stats dataclass that travels through the disk cache.
FLAT_STATS_CLASSES = (ProcessorStats, L2Stats, BusStats, UlmtStats,
                      UlmtTimingStats, FaultStats, RobustnessStats)


def populate(cls):
    """An instance of ``cls`` with a distinct non-default value per field."""
    kwargs = {}
    for i, f in enumerate(dataclasses.fields(cls), start=1):
        ftype = f.type if isinstance(f.type, str) else getattr(
            f.type, "__name__", str(f.type))
        if ftype == "int":
            kwargs[f.name] = i * 10 + 1
        elif ftype == "float":
            kwargs[f.name] = i + 0.125   # binary-exact, survives JSON
        elif ftype.startswith("dict"):
            kwargs[f.name] = {"probe": i}
        else:
            pytest.fail(f"{cls.__name__}.{f.name}: unhandled flat "
                        f"field type {f.type!r}")
    return cls(**kwargs)


def json_round_trip(data):
    """Exactly what the disk does to a payload between put and get."""
    return json.loads(json.dumps(data, sort_keys=True))


class TestFlatStats:
    @pytest.mark.parametrize("cls", FLAT_STATS_CLASSES,
                             ids=lambda c: c.__name__)
    def test_round_trip_every_field(self, cls):
        original = populate(cls)
        restored = cls.from_dict(json_round_trip(original.to_dict()))
        assert restored == original

    @pytest.mark.parametrize("cls", FLAT_STATS_CLASSES,
                             ids=lambda c: c.__name__)
    def test_unknown_field_rejected(self, cls):
        """A corrupted/foreign entry must raise, not half-load: the cache
        treats the exception as a miss and recomputes."""
        data = populate(cls).to_dict()
        data["bogus_field_from_the_future"] = 1
        with pytest.raises(ValueError):
            cls.from_dict(data)

    @pytest.mark.parametrize("cls", FLAT_STATS_CLASSES,
                             ids=lambda c: c.__name__)
    def test_missing_fields_default(self, cls):
        """Older cache entries survive purely-additive schema growth."""
        assert cls.from_dict({}) == cls()


class TestSimResultRoundTrip:
    @pytest.fixture(scope="class")
    def nopref(self):
        return run_simulation("tree", "nopref", scale=0.02)

    @pytest.fixture(scope="class")
    def repl(self):
        return run_simulation("tree", "repl", scale=0.02)

    def test_nopref_round_trip_ulmt_none(self, nopref):
        assert nopref.ulmt is None and nopref.ulmt_timing is None
        restored = SimResult.from_dict(json_round_trip(nopref.to_dict()))
        assert restored == nopref
        assert restored.ulmt is None and restored.ulmt_timing is None

    def test_repl_round_trip_ulmt_populated(self, repl):
        assert repl.ulmt is not None and repl.ulmt_timing is not None
        restored = SimResult.from_dict(json_round_trip(repl.to_dict()))
        assert restored == repl

    def test_round_trip_preserves_derived_metrics(self, repl, nopref):
        """The figures are computed from derived metrics; a restored
        result must reproduce them bit-for-bit."""
        restored = SimResult.from_dict(json_round_trip(repl.to_dict()))
        base = SimResult.from_dict(json_round_trip(nopref.to_dict()))
        assert restored.miss_breakdown() == repl.miss_breakdown()
        assert (restored.miss_distance_fractions()
                == repl.miss_distance_fractions())
        assert restored.bus_utilization() == repl.bus_utilization()
        assert restored.speedup_over(base) == repl.speedup_over(nopref)

    def test_miss_distance_counts_back_to_tuple(self, nopref):
        restored = SimResult.from_dict(json_round_trip(nopref.to_dict()))
        assert isinstance(restored.miss_distance_counts, tuple)
        assert len(restored.miss_distance_counts) == 4

    def test_wrong_bin_count_rejected(self, nopref):
        data = nopref.to_dict()
        data["miss_distance_counts"] = [1, 2, 3]
        with pytest.raises(ValueError):
            SimResult.from_dict(data)

    def test_robustness_and_fault_counters_travel(self, repl):
        data = json_round_trip(repl.to_dict())
        restored = SimResult.from_dict(data)
        assert restored.robustness == repl.robustness
        assert restored.faults == repl.faults
        assert restored.robustness.total_sheds == repl.robustness.total_sheds


class TestCanonical:
    def test_equal_configs_canonicalise_identically(self):
        assert canonical(preset("repl")) == canonical(preset("repl"))

    def test_different_configs_differ(self):
        assert canonical(preset("repl")) != canonical(preset("base"))

    def test_dict_key_order_is_immaterial(self):
        assert canonical({"b": 2, "a": 1}) == canonical({"a": 1, "b": 2})

    def test_tuples_become_lists(self):
        assert canonical((1, (2, 3))) == [1, [2, 3]]

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestFlatHelpers:
    def test_flat_to_dict_copies_containers(self):
        stats = ProcessorStats()
        out = flat_to_dict(stats)
        out["extra"]["poke"] = 1
        assert stats.extra == {}

    def test_flat_from_dict_unknown_key(self):
        with pytest.raises(ValueError):
            flat_from_dict(ProcessorStats, {"no_such_counter": 3})
