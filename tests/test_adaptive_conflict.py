"""Tests for the future-work customisations: adaptive algorithm selection
and cache-conflict-aware gating."""

import pytest

from repro.core.adaptive import AdaptiveUlmtPrefetcher
from repro.core.conflict import (
    ConflictAwarePrefetcher,
    ConflictDetector,
)
from repro.core.customization import build_algorithm


class TestConflictDetector:
    def test_uniform_traffic_has_no_hot_sets(self):
        d = ConflictDetector(num_sets=64)
        for i in range(6400):
            d.observe(i)
        assert d.hot_sets() == []

    def test_skewed_traffic_flags_hot_set(self):
        d = ConflictDetector(num_sets=64)
        for i in range(2000):
            d.observe(64 * i)        # always set 0
            d.observe(i)             # uniform background
        assert 0 in d.hot_sets()
        assert d.is_hot(640)         # any line mapping to set 0
        assert not d.is_hot(641)

    def test_cold_start_is_conservative(self):
        d = ConflictDetector(num_sets=64)
        d.observe(0)
        assert not d.is_hot(0)

    def test_decay_forgets_old_phases(self):
        d = ConflictDetector(num_sets=64, decay_period=512)
        for i in range(600):
            d.observe(64 * i)        # hot set 0 in phase 1
        for i in range(5000):
            d.observe(i * 7 + 1)     # phase 2: spread, avoiding set 0
        assert not d.is_hot(0)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ConflictDetector(num_sets=60)


class TestConflictAwarePrefetcher:
    def chase(self, p, seq, repeats=3):
        for _ in range(repeats):
            for miss in seq:
                p.prefetch_step(miss)
                p.learn(miss)

    def test_gates_prefetches_into_hot_sets(self):
        p = ConflictAwarePrefetcher(build_algorithm("repl"),
                                    ConflictDetector(num_sets=64))
        # A repeating chase whose lines all map to set 0 (addresses are
        # multiples of 64): every set-0 prefetch should eventually be gated.
        seq = [64 * k for k in range(1, 40)]
        self.chase(p, seq, repeats=6)
        assert p.stats.prefetches_gated > 0

    def test_passes_prefetches_into_cold_sets(self):
        p = ConflictAwarePrefetcher(build_algorithm("repl"),
                                    ConflictDetector(num_sets=64))
        seq = [k * 7 + 3 for k in range(200)]   # spread over sets
        self.chase(p, seq, repeats=3)
        assert p.stats.prefetches_passed > 0
        assert p.stats.gate_rate < 0.5

    def test_prediction_passthrough(self):
        inner = build_algorithm("repl")
        p = ConflictAwarePrefetcher(inner)
        for miss in (1, 2, 3):
            p.learn(miss)
        assert p.predict_levels() == inner.predict_levels()

    def test_spec_language(self):
        p = build_algorithm("conflict:repl")
        assert isinstance(p, ConflictAwarePrefetcher)
        assert p.inner.name == "repl"
        nested = build_algorithm("conflict:seq1+repl")
        assert nested.inner.name == "seq1+repl"


class TestAdaptive:
    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            AdaptiveUlmtPrefetcher([])

    def test_selects_sequential_on_stream(self):
        p = build_algorithm("adaptive:repl|seq4")
        assert isinstance(p, AdaptiveUlmtPrefetcher)
        p.epoch = 64
        for miss in range(10_000, 10_600):
            p.prefetch_step(miss)
            p.learn(miss)
        assert p.selected.name == "seq4"
        assert p.switches >= 1

    def test_selects_correlation_on_repeating_chase(self):
        p = AdaptiveUlmtPrefetcher(
            [build_algorithm("seq4"), build_algorithm("repl")], epoch=64)
        seq = [(k * 131) % 4093 + 50_000 for k in range(80)]
        for _ in range(8):
            for miss in seq:
                p.prefetch_step(miss)
                p.learn(miss)
        assert p.selected.name == "repl"

    def test_hysteresis_prevents_flapping_on_noise(self):
        import random
        rng = random.Random(0)
        p = AdaptiveUlmtPrefetcher(
            [build_algorithm("seq4"), build_algorithm("repl")],
            epoch=32, hysteresis=0.2)
        for _ in range(2000):
            miss = rng.randrange(1_000_000)
            p.prefetch_step(miss)
            p.learn(miss)
        # Pure noise: neither candidate can clear the hysteresis margin.
        assert p.switches <= 1

    def test_only_selected_candidate_issues(self):
        seq_algo = build_algorithm("seq4")
        repl_algo = build_algorithm("repl")
        p = AdaptiveUlmtPrefetcher([seq_algo, repl_algo], epoch=10_000)
        # Train a stream: seq4 (selected) issues; repl's shadow predictions
        # exist but are not returned.
        out = []
        for miss in range(100, 160):
            out.extend(p.prefetch_step(miss))
            p.learn(miss)
        assert out  # seq4 produced bursts
        assert p.selected is seq_algo

    def test_accuracies_diagnostic(self):
        p = build_algorithm("adaptive:seq4|repl")
        for miss in range(100, 200):
            p.prefetch_step(miss)
            p.learn(miss)
        acc = p.accuracies()
        assert set(acc) == {"seq4", "repl"}
        assert acc["seq4"] > acc["repl"]

    def test_reset_clears_all(self):
        p = build_algorithm("adaptive:seq4|repl")
        for miss in range(100, 140):
            p.prefetch_step(miss)
            p.learn(miss)
        p.reset()
        assert p.prefetch_step(100) == []

    def test_empty_adaptive_spec_rejected(self):
        with pytest.raises(ValueError):
            build_algorithm("adaptive:")
