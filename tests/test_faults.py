"""Chaos suite: fault injection, graceful degradation, invariant audits.

Covers the acceptance properties of the fault subsystem:

* an all-zero :class:`FaultPlan` leaves every result bit-identical to a run
  with no plan at all;
* a seeded plan replays the exact same fault schedule;
* each fault kind (observation drop/duplicate, queue-3 rejects, lost and
  delayed pushes with bounded retries, transient stalls, full crashes with
  warm restart, table bit flips) degrades the run instead of breaking it;
* the four L2 push-drop rules and the MSHR-steal path behave under
  fault-shaped event sequences;
* the invariant checker passes on healthy systems and trips on corrupted
  bookkeeping;
* the satellite hardening: traceio validation and runall isolation.
"""

import json
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    InvariantViolation,
    UlmtWatchdog,
    ZERO_PLAN,
)
from repro.memsys.l2 import L2Cache
from repro.params import MAIN_L2, CacheParams
from repro.sim.config import preset
from repro.sim.driver import run_simulation
from repro.sim.system import System
from repro.workloads.registry import get_trace

SCALE = 0.08
APP = "mcf"


def chaos_config(base: str = "repl", *, queue_depth: int | None = None,
                 **plan_kwargs):
    """A preset with a fault plan and the invariant audit switched on."""
    config = replace(preset(base), fault_plan=FaultPlan(**plan_kwargs),
                     invariants=True)
    if queue_depth is not None:
        config = replace(config, queue_depth=queue_depth)
    return config


class TestFaultPlan:
    def test_parse_spec(self):
        plan = FaultPlan.parse("obs_drop=0.05,push_loss=0.1,stall_cycles=99",
                               seed=7)
        assert plan.obs_drop == 0.05
        assert plan.push_loss == 0.1
        assert plan.stall_cycles == 99
        assert plan.seed == 7
        assert not plan.is_zero

    def test_parse_empty_spec_is_zero(self):
        assert FaultPlan.parse("").is_zero

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="valid keys"):
            FaultPlan.parse("not_a_fault=0.5")

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="outside"):
            FaultPlan(obs_drop=1.5)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(stall_cycles=-1)

    def test_uniform_scales_rare_faults_down(self):
        plan = FaultPlan.uniform(0.1, seed=3)
        assert plan.obs_drop == 0.1
        assert plan.crash == pytest.approx(0.001)
        assert plan.bitflip == pytest.approx(0.01)
        assert not plan.is_zero

    def test_describe(self):
        assert ZERO_PLAN.describe() == "none"
        assert "push_loss=0.2" in FaultPlan(push_loss=0.2).describe()

    def test_zero_injector_inactive_and_draw_free(self):
        injector = FaultInjector(ZERO_PLAN)
        assert not injector.active
        before = {kind: rng.getstate()
                  for kind, rng in injector._rngs.items()}
        assert not injector.drop_observation()
        assert injector.stall_cycles() == 0
        for kind, rng in injector._rngs.items():
            assert rng.getstate() == before[kind]

    def test_fault_kinds_have_independent_streams(self):
        """Enabling one fault kind must not shift any other kind's schedule.

        The push_loss decision sequence is drawn with push_loss alone, then
        again with obs_drop also enabled (and exercised); the two sequences
        must be identical.  With a single shared RNG the interleaved
        obs_drop draws would shift every subsequent push_loss draw.
        """
        def push_loss_schedule(plan: FaultPlan, events: int) -> list[bool]:
            injector = FaultInjector(plan)
            out = []
            for _ in range(events):
                injector.drop_observation()    # draws only if obs_drop > 0
                out.append(injector.lose_push())
            return out

        alone = push_loss_schedule(FaultPlan(seed=11, push_loss=0.3), 200)
        mixed = push_loss_schedule(
            FaultPlan(seed=11, push_loss=0.3, obs_drop=0.5), 200)
        assert alone == mixed
        assert any(alone)

    def test_streams_derive_from_master_seed(self):
        a = FaultInjector(FaultPlan(seed=1, stall=0.5))
        b = FaultInjector(FaultPlan(seed=2, stall=0.5))
        schedule_a = [a.stall_cycles() for _ in range(100)]
        schedule_b = [b.stall_cycles() for _ in range(100)]
        assert schedule_a != schedule_b  # different master seed, new schedule


class TestZeroFaultIdentity:
    def test_all_zero_plan_is_bit_identical(self):
        clean = run_simulation(APP, "repl", scale=SCALE)
        zeroed = run_simulation(
            APP, replace(preset("repl"), fault_plan=FaultPlan()), scale=SCALE)
        assert clean == zeroed
        assert zeroed.faults.total_faults == 0

    def test_all_zero_plan_nopref_identical(self):
        clean = run_simulation("tree", "nopref", scale=0.05)
        zeroed = run_simulation(
            "tree", replace(preset("nopref"), fault_plan=FaultPlan()),
            scale=0.05)
        assert clean == zeroed


class TestDeterminism:
    def test_same_seed_same_run(self):
        config = chaos_config(obs_drop=0.1, push_loss=0.1, push_delay=0.1,
                              stall=0.02, seed=11)
        first = run_simulation(APP, config, scale=SCALE)
        second = run_simulation(APP, config, scale=SCALE)
        assert first == second
        assert first.faults.total_faults > 0


class TestGracefulDegradation:
    def test_chaos_degrades_without_collapse(self):
        baseline = run_simulation(APP, "nopref", scale=SCALE)
        clean = run_simulation(APP, "repl", scale=SCALE)
        chaotic = run_simulation(
            APP, replace(preset("repl"),
                         fault_plan=FaultPlan.uniform(0.1, seed=5),
                         invariants=True),
            scale=SCALE)
        assert chaotic.faults.total_faults > 0
        assert chaotic.robustness.invariant_audits > 0
        speedup = baseline.execution_time / chaotic.execution_time
        clean_speedup = baseline.execution_time / clean.execution_time
        # Faults cost performance but never push below ~the no-prefetch
        # baseline: a broken prefetcher degenerates, it does not sabotage.
        assert 0.9 < speedup <= clean_speedup + 0.02

    def test_crash_warm_restart_recovers(self):
        result = run_simulation(
            APP, chaos_config(crash=0.005, crash_restart_cycles=5000),
            scale=SCALE)
        assert result.faults.crashes_injected > 0
        assert result.robustness.ulmt_warm_restarts == \
            result.faults.crashes_injected
        # The thread keeps processing the live miss stream after restarts.
        assert result.ulmt.misses_processed > 0

    def test_rare_crashes_still_learn(self):
        result = run_simulation(
            APP, chaos_config(crash=0.0002, crash_restart_cycles=5000),
            scale=SCALE)
        assert result.robustness.ulmt_warm_restarts > 0
        # Between crashes the rebuilt table learns enough to prefetch again.
        assert result.ulmt.prefetches_generated > 0

    def test_stall_pressure_triggers_watchdog(self):
        result = run_simulation(
            APP, chaos_config(queue_depth=4, stall=0.2, stall_cycles=5000),
            scale=SCALE)
        assert result.faults.stalls_injected > 0
        assert result.robustness.watchdog_activations >= 1
        assert result.robustness.degraded_observations >= 1
        # Overflow drops are now observable in the result itself.
        assert result.robustness.queue2_overflow_drops > 0
        assert result.ulmt.learning_steps_shed == \
            result.robustness.degraded_observations

    def test_bounded_retry_then_abandon(self):
        result = run_simulation(APP, chaos_config(push_loss=1.0),
                                scale=SCALE)
        plan = FaultPlan(push_loss=1.0)
        assert result.faults.pushes_retried > 0
        assert result.faults.pushes_abandoned > 0
        # Every push is lost, so nothing ever reaches the L2...
        assert result.l2.total_prefetches_arrived == 0
        # ...and each address burns its full retry budget before giving up.
        assert result.faults.push_loss_events == (
            result.faults.pushes_retried + result.faults.pushes_abandoned)
        assert result.faults.pushes_retried == pytest.approx(
            result.faults.pushes_abandoned * plan.push_retry_limit, rel=0.3)

    def test_delayed_pushes_race_demand_misses(self):
        result = run_simulation(
            APP, chaos_config(push_delay=1.0, push_delay_cycles=2000),
            scale=SCALE)
        assert result.faults.pushes_delayed > 0
        # Late pushes turn eliminated misses into delayed hits at worst.
        assert result.l2.delayed_hits > 0

    def test_bitflips_corrupt_but_never_crash(self):
        result = run_simulation(APP, chaos_config(bitflip=0.2), scale=SCALE)
        assert result.faults.bitflips_injected > 0
        assert result.robustness.invariant_audits > 0
        assert result.execution_time > 0

    def test_duplicate_observations_counted(self):
        result = run_simulation(APP, chaos_config(obs_dup=0.5), scale=SCALE)
        assert result.faults.observations_duplicated > 0
        assert result.ulmt.misses_processed > result.ulmt.misses_observed * 0.5

    def test_queue3_rejects_counted(self):
        result = run_simulation(APP, chaos_config(q3_reject=0.5), scale=SCALE)
        assert result.faults.queue3_rejects > 0


class TestWatchdog:
    def test_hysteresis(self):
        wd = UlmtWatchdog(queue_depth=16)
        assert wd.high_mark == 12 and wd.low_mark == 4
        assert not wd.update(11)
        assert wd.update(12)
        assert wd.activations == 1
        assert wd.update(5)          # still degraded above the low mark
        assert not wd.update(4)
        assert wd.recoveries == 1
        assert wd.shed_learning() is False

    def test_shed_counts_only_while_degraded(self):
        wd = UlmtWatchdog(queue_depth=4)
        wd.update(4)
        assert wd.shed_learning()
        assert wd.degraded_observations == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            UlmtWatchdog(queue_depth=0)
        with pytest.raises(ValueError):
            UlmtWatchdog(queue_depth=8, high_frac=0.2, low_frac=0.5)


class TestInvariantChecker:
    def test_clean_system_passes(self):
        system = System(replace(preset("repl"), invariants=True))
        result = system.run(get_trace("tree", scale=0.05))
        assert system.invariants.audits > 0
        assert result.robustness.invariant_audits == system.invariants.audits

    def test_detects_corrupted_push_tracking(self):
        system = System(preset("repl"))
        checker = InvariantChecker()
        checker.audit(system)        # healthy
        system._inflight[0x123] = 10**6  # no matching arrival-heap entry
        with pytest.raises(InvariantViolation, match="arrival heap"):
            checker.audit(system)

    def test_detects_stale_pending_write(self):
        system = System(preset("nopref"))
        system.l2._pending_is_write[0x99] = True
        with pytest.raises(InvariantViolation, match="pending-write"):
            InvariantChecker().audit(system)

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "1")
        assert System(preset("nopref")).invariants is not None
        monkeypatch.setenv("REPRO_INVARIANTS", "0")
        assert System(preset("nopref")).invariants is None


def _small_l2(mshr_capacity: int = 8) -> L2Cache:
    # 4 KB, 2-way, 64 B lines -> 32 sets: small enough to force conflicts.
    params = CacheParams(size_bytes=4096, assoc=2, line_bytes=64,
                         hit_cycles=19)
    return L2Cache(params, mshr_capacity=mshr_capacity)


class TestL2PushDropRulesUnderFaults:
    """Section 2.1 drop rules exercised with fault-shaped event sequences."""

    def test_duplicate_push_dropped_redundant(self):
        l2 = _small_l2()
        assert l2.accept_prefetch(0x40, now=100) == "filled"
        # A duplicated push for the same line arrives later: drop rule 1.
        assert l2.accept_prefetch(0x40, now=200) == "redundant"
        assert l2.stats.redundant_prefetches == 1

    def test_push_matching_writeback_queue_dropped(self):
        l2 = _small_l2()
        l2.writeback_queue.push(0x7)
        assert l2.accept_prefetch(0x7, now=10) == "writeback_match"
        assert l2.stats.dropped_writeback_match == 1

    def test_push_with_all_mshrs_busy_dropped(self):
        l2 = _small_l2(mshr_capacity=2)
        l2.register_demand_miss(0x1, False, now=0, completion_time=10**6)
        l2.register_demand_miss(0x2, False, now=0, completion_time=10**6)
        assert l2.accept_prefetch(0x3, now=1) == "mshr_full"
        assert l2.stats.dropped_mshr_full == 1

    def test_push_into_fully_pending_set_dropped(self):
        l2 = _small_l2(mshr_capacity=8)
        num_sets = l2.cache.num_sets
        # Both ways of set 5 have transactions pending.
        l2.register_demand_miss(5, False, now=0, completion_time=10**6)
        l2.register_demand_miss(5 + num_sets, False, now=0,
                                completion_time=10**6)
        outcome = l2.accept_prefetch(5 + 2 * num_sets, now=1)
        assert outcome == "set_pending"
        assert l2.stats.dropped_set_pending == 1

    def test_late_push_races_demand_miss_and_steals_mshr(self):
        l2 = _small_l2()
        l2.register_demand_miss(0x9, True, now=0, completion_time=500)
        # The delayed push arrives while the demand request is in flight:
        # it steals the MSHR and acts as the reply.
        assert l2.accept_prefetch(0x9, now=100) == "steal"
        assert l2.mshrs.lookup(0x9) is None
        assert l2.cache.contains(0x9)

    def test_lost_push_leaves_pending_prefetch_to_merge(self):
        l2 = _small_l2()
        # A push was issued (MSHR tracked from issue) but its line is slow;
        # the demand miss arriving meanwhile merges instead of refetching.
        assert l2.register_prefetch_inflight(0x11, now=0, completion_time=300)
        outcome = l2.demand_lookup(0x11, False, now=50)
        assert outcome.kind.value == "pending"
        assert outcome.pending_is_prefetch
        assert l2.stats.delayed_hits == 1

    def test_invariants_hold_through_drop_rules(self):
        config = chaos_config(push_delay=0.5, push_delay_cycles=3000,
                              obs_dup=0.3, seed=9)
        result = run_simulation(APP, config, scale=SCALE)
        # Drop rules fired (redundant fills from duplicated work) while
        # every audit held.
        assert result.l2.total_prefetches_arrived > 0
        assert result.robustness.invariant_audits > 0


class TestTraceFormatErrors:
    def _write_npz(self, path, header: dict, n: int = 0, **overrides):
        arrays = {
            "header": np.frombuffer(json.dumps(header).encode(),
                                    dtype=np.uint8),
            "addrs": np.zeros(n, dtype=np.uint64),
            "flags": np.zeros(n, dtype=np.uint8),
            "comps": np.zeros(n, dtype=np.uint32),
        }
        arrays.update(overrides)
        arrays = {k: v for k, v in arrays.items() if v is not None}
        np.savez(path, **arrays)

    def test_truncated_file(self, tmp_path):
        from repro.workloads.trace import MemRef, Trace
        from repro.workloads.traceio import (TraceFormatError, load_trace,
                                             save_trace)
        path = tmp_path / "t.trc.npz"
        save_trace(Trace([MemRef(64 * i, False, 1, False)
                          for i in range(100)], name="t"), path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 3])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)

    def test_garbage_bytes(self, tmp_path):
        from repro.workloads.traceio import TraceFormatError, load_trace
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this was never a zip archive")
        with pytest.raises(TraceFormatError, match="truncated or not"):
            load_trace(path)

    def test_missing_arrays(self, tmp_path):
        from repro.workloads.traceio import TraceFormatError, load_trace
        path = tmp_path / "missing.npz"
        self._write_npz(path, {"magic": "repro-trace", "version": 1,
                               "refs": 0}, comps=None)
        with pytest.raises(TraceFormatError, match="missing comps"):
            load_trace(path)

    def test_undecodable_header(self, tmp_path):
        from repro.workloads.traceio import TraceFormatError, load_trace
        path = tmp_path / "badheader.npz"
        np.savez(path, header=np.frombuffer(b"{not json", dtype=np.uint8),
                 addrs=np.zeros(0, dtype=np.uint64),
                 flags=np.zeros(0, dtype=np.uint8),
                 comps=np.zeros(0, dtype=np.uint32))
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(path)

    def test_bad_ref_count(self, tmp_path):
        from repro.workloads.traceio import TraceFormatError, load_trace
        path = tmp_path / "badrefs.npz"
        self._write_npz(path, {"magic": "repro-trace", "version": 1,
                               "refs": -5})
        with pytest.raises(TraceFormatError, match="reference count"):
            load_trace(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        from repro.workloads.traceio import load_trace
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")


class TestRunallIsolation:
    def test_failures_do_not_abort_the_matrix(self, capsys):
        from repro.experiments.runall import run_sections
        ran = []
        sections = (
            ("First", lambda: ran.append("first"), False),
            ("Broken", lambda: 1 / 0, False),
            ("Last", lambda: ran.append("last"), False),
        )
        failures = run_sections(sections, timeout=0)
        assert ran == ["first", "last"]
        assert len(failures) == 1
        assert failures[0].name == "Broken"
        assert "ZeroDivisionError" in failures[0].error
        assert "FAILED" in capsys.readouterr().out

    def test_timeout_budget_enforced(self):
        from repro.experiments.runall import run_sections
        sections = (("Slow", lambda: time.sleep(3), True),)
        start = time.time()
        failures = run_sections(sections, timeout=1)
        assert time.time() - start < 2.5
        assert len(failures) == 1
        assert "budget" in failures[0].error

    def test_exit_status_counts_failures(self, capsys):
        from repro.experiments.runall import SectionFailure, run_sections
        sections = (("A", lambda: None, False),
                    ("B", lambda: 1 / 0, False),
                    ("C", lambda: 1 / 0, False))
        failures = run_sections(sections, timeout=0)
        assert len(failures) == 2
        assert all(isinstance(f, SectionFailure) for f in failures)


class TestCliFaults:
    def test_run_with_fault_flags(self, capsys):
        from repro.__main__ import main
        code = main(["run", "tree", "repl", "--scale", "0.05",
                     "--faults", "push_loss=0.5,obs_drop=0.1",
                     "--fault-seed", "3", "--invariants"])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults injected" in out
        assert "invariants" in out

    def test_run_rejects_bad_fault_spec(self):
        from repro.__main__ import main
        with pytest.raises(ValueError, match="valid keys"):
            main(["run", "tree", "repl", "--scale", "0.05",
                  "--faults", "bogus=1"])

    def test_chaos_subcommand(self, capsys):
        from repro.__main__ import main
        code = main(["chaos", "tree", "--scale", "0.05",
                     "--rates", "0,0.2", "--configs", "repl"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos sweep" in out
        assert "repl" in out
        assert "per-window degradation" in out
        assert "coverage%" in out and "accuracy%" in out
        assert "Δcoverage" in out

    def test_chaos_windows_zero_disables_the_block(self, capsys):
        from repro.__main__ import main
        code = main(["chaos", "tree", "--scale", "0.05", "--no-cache",
                     "--rates", "0", "--configs", "repl", "--windows", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-window degradation" not in out

    def test_chaos_windows_parity_serial_vs_pool(self, capsys):
        """The per-window block is byte-identical under --jobs 2."""
        from repro.__main__ import main
        argv = ["chaos", "tree", "--scale", "0.05", "--no-cache",
                "--rates", "0,0.2", "--configs", "repl", "--windows", "4"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "per-window degradation (4 buckets" in serial


class TestRobustnessSurfacing:
    def test_filter_and_queue_drops_in_result(self):
        system = System(preset("repl"))
        result = system.run(get_trace(APP, scale=SCALE))
        ulmt = system.memproc.ulmt
        assert result.robustness.filter_passed == ulmt.filter.passed
        assert result.robustness.filter_dropped == ulmt.filter.dropped
        assert result.robustness.filter_passed > 0
        assert result.robustness.queue2_overflow_drops == \
            ulmt.obs_queue.dropped_overflow
        assert result.robustness.queue3_overflow_drops == \
            system.prefetch_queue.dropped_overflow
        assert result.ulmt.prefetches_filtered == \
            result.robustness.filter_dropped

    def test_nopref_result_has_zeroed_robustness(self):
        result = run_simulation("tree", "nopref", scale=0.05)
        assert result.robustness.total_sheds == 0
        assert result.faults.total_faults == 0
