"""Tests for ``python -m repro trace`` (:mod:`repro.obs.cli`)."""

import json

import pytest

from repro.obs import cli
from repro.obs.runner import run_traced

SCALE = 0.05


@pytest.fixture(scope="module")
def cg_nopref():
    return run_traced("cg", "nopref", scale=SCALE)


class TestTraceCli:
    def test_digest_output_is_deterministic(self, capsys, cg_nopref):
        assert cli.main(["cg", "nopref", "--scale", str(SCALE)]) == 0
        first = capsys.readouterr().out
        assert cli.main(["cg", "nopref", "--scale", str(SCALE)]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert f"{len(cg_nopref.events):,} events" in first
        assert "merged metrics (all cells):" in first
        assert cli.trace_digest(cg_nopref)[:16] in first

    def test_events_mode_prints_the_stream(self, capsys, cg_nopref):
        assert cli.main(["cg", "nopref", "--scale", str(SCALE),
                         "--events"]) == 0
        out = capsys.readouterr().out
        assert out == cg_nopref.jsonl()
        # Every line is a standalone JSON record with a known kind.
        first = json.loads(out.splitlines()[0])
        assert "kind" in first and "cycle" in first

    def test_events_mode_requires_single_cell(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["cg", "nopref,repl", "--events"])

    def test_out_dir_writes_streams_and_metrics(self, tmp_path, capsys,
                                                cg_nopref):
        out = tmp_path / "traces"
        assert cli.main(["cg", "nopref", "--scale", str(SCALE),
                         "--out-dir", str(out)]) == 0
        capsys.readouterr()
        stream = out / "cg_nopref.jsonl"
        assert stream.read_text() == cg_nopref.jsonl()
        merged = json.loads((out / "metrics.json").read_text())
        assert merged == cg_nopref.metrics

    def test_empty_cell_list_rejected(self):
        with pytest.raises(SystemExit):
            cli.main([",", "nopref"])

    def test_main_module_forwards_trace(self, capsys):
        from repro.__main__ import main
        assert main(["trace", "cg", "nopref", "--scale", str(SCALE)]) == 0
        assert "merged metrics" in capsys.readouterr().out
