"""Golden-trace battery for the multicore layer (satellite 3 of ISSUE 9).

One committed digest freezes the 2-core ``tree+cg`` cell under ``repl``:
event count, SHA-256 of the merged JSON-lines stream, per-kind counts,
the shared metrics snapshot, and the first lines — the scheme of
``tests/test_obs_golden.py``, extended with the bundle's allocation so a
coordination-policy change shows up in review, not just as a hash flip.

The parity tests then pin the acceptance criterion directly: the serial
run, a ``--jobs 2`` pool run, and a warm-cache replay of the same
multicore cells are *byte-identical*.  Two cells (``repl`` + ``nopref``)
are used so the pool genuinely forks — ``run_tasks`` falls back to
serial with a single pending task.

Finally, the per-core event tags are exercised through the existing
trace tools: every merged event carries ``core`` in {0..N-1}, the
timeline lane fold covers the tagged stream, and ``tracediff`` of the
per-core sub-streams attributes every event to exactly one core.

Regenerate the golden after an intentional schema or model change::

    PYTHONPATH=src python tests/test_multicore_golden.py
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.multicore import MulticoreTraceRun, run_multicore_traced
from repro.multicore.result import MULTICORE_FORMAT_VERSION
from repro.obs.analysis.diff import diff_streams
from repro.obs.analysis.lanes import fold_stream
from repro.perf.cache import ResultCache
from repro.perf.pool import mc_task, run_tasks
from repro.sim.config import preset

SCALE = 0.02
BUNDLE = "tree+cg"
CONFIGS = ["nopref", "repl"]
GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN = GOLDEN_DIR / "multicore_tree_cg_repl.json"


def _config(name: str):
    return preset(name).with_cores(2)


def digest(run: MulticoreTraceRun) -> dict:
    """The committed shape of the 2-core traced cell."""
    jsonl = run.jsonl()
    lines = jsonl.splitlines()
    counts: dict[str, int] = {}
    for event in run.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return {
        "bundle": run.result.workload,
        "config": run.result.config_name,
        "scale": SCALE,
        "multicore_format_version": MULTICORE_FORMAT_VERSION,
        "allocation": run.result.allocation.to_dict(),
        "events": len(run.events),
        "sha256": hashlib.sha256(jsonl.encode("ascii")).hexdigest(),
        "execution_time": run.result.execution_time,
        "kind_counts": {k: counts[k] for k in sorted(counts)},
        "metrics": run.metrics,
        "head": lines[:10],
    }


@pytest.fixture(scope="module")
def serial_runs():
    return {config: run_multicore_traced(BUNDLE, _config(config),
                                         scale=SCALE)
            for config in CONFIGS}


class TestGolden:
    def test_repl_cell_matches_golden(self, serial_runs):
        assert GOLDEN.exists(), (
            f"missing golden {GOLDEN}; regenerate with "
            f"`PYTHONPATH=src python tests/test_multicore_golden.py`")
        golden = json.loads(GOLDEN.read_text())
        got = digest(serial_runs["repl"])
        # Cheap fields first for a readable failure, then the
        # byte-identity proxy (the stream hash) and the full snapshot.
        assert got["allocation"] == golden["allocation"]
        assert got["events"] == golden["events"]
        assert got["kind_counts"] == golden["kind_counts"]
        assert got["execution_time"] == golden["execution_time"]
        assert got["head"] == golden["head"]
        assert got["metrics"] == golden["metrics"]
        assert got["sha256"] == golden["sha256"]


class TestParity:
    """Serial == ``--jobs 2`` == warm-cache, byte for byte."""

    def _tasks(self):
        return [mc_task(BUNDLE, _config(config), SCALE, trace=True)
                for config in CONFIGS]

    def test_parallel_pool_matches_serial(self, serial_runs):
        results = run_tasks(self._tasks(), jobs=2)
        for config, run in zip(CONFIGS, results):
            want = serial_runs[config]
            assert run.jsonl() == want.jsonl()
            assert run.metrics == want.metrics
            assert run.result.to_dict() == want.result.to_dict()

    def test_warm_cache_matches_serial(self, serial_runs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_tasks(self._tasks(), cache=cache)
        assert cache.stats.stores == len(CONFIGS)
        warm = run_tasks(self._tasks(), cache=cache)
        assert cache.stats.hits == len(CONFIGS)
        for config, run_cold, run_warm in zip(CONFIGS, cold, warm):
            want = serial_runs[config]
            assert run_cold.jsonl() == want.jsonl()
            assert run_warm.jsonl() == want.jsonl()
            assert run_warm.metrics == want.metrics


class TestCoreTags:
    """Per-core lane tags flow through the existing trace tools."""

    def test_every_event_is_tagged_with_its_core(self, serial_runs):
        run = serial_runs["repl"]
        cores = {dict(e.info)["core"] for e in run.events}
        assert cores == {0, 1}

    def test_merged_stream_is_cycle_sorted(self, serial_runs):
        cycles = [e.cycle for e in serial_runs["repl"].events]
        assert cycles == sorted(cycles)

    def test_timeline_folds_the_tagged_stream(self, serial_runs):
        run = serial_runs["repl"]
        activity = fold_stream((e.kind, e.cycle) for e in run.events)
        assert activity.total_events == len(run.events)
        # Tagged kinds still land on their Figure-3 lanes, not on '?'.
        assert "?" not in activity.columns

    def test_tracediff_attributes_every_event_to_one_core(self, serial_runs):
        run = serial_runs["repl"]
        records = [json.loads(line) for line in run.event_lines()]
        assert all(record["core"] in (0, 1) for record in records)
        by_core = {core: [r for r in records if r["core"] == core]
                   for core in (0, 1)}
        # The two per-core sub-streams partition the merged stream ...
        assert len(by_core[0]) + len(by_core[1]) == len(records)
        # ... and tracediff of the merged stream against itself is clean
        # (core tags survive the record round-trip without confusing the
        # (cycle, kind, addr) alignment).
        report = diff_streams(records, records)
        assert report.identical
        # Across cores the streams are genuinely different programs.
        cross = diff_streams(by_core[0], by_core[1])
        assert not cross.identical


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    run = run_multicore_traced(BUNDLE, _config("repl"), scale=SCALE)
    GOLDEN.write_text(json.dumps(digest(run), indent=2, sort_keys=True)
                      + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    _regen()
