"""Edge-of-the-envelope traces, parametrized over both engines.

The batch kernel partitions a trace into epochs between prefetch-relevant
boundary events; these tests aim at the partition boundaries themselves:
empty traces, one-access traces, scaled prefixes that end mid-epoch, and
streams whose every reference is a store (the walk's hit-run machinery
only batches loads, so an all-store trace exercises the scalar path in
full).  Every case asserts the two engines agree exactly — on the
degenerate inputs, not just the benchmark-shaped ones.
"""

import pytest

from repro.kernel import run_batch, trace_arrays
from repro.kernel.engine import fused_supported
from repro.sim.config import preset
from repro.sim.driver import run_simulation
from repro.sim.system import System
from repro.workloads.registry import get_trace
from repro.workloads.trace import MemRef, Trace

ENGINES = ("event", "batch")

#: Configs that cover the three walk regimes: no prefetcher (pure runs),
#: a correlation ULMT (observation traffic), and one with the L1-side
#: conventional prefetcher folded in.
CONFIGS = ("nopref", "repl", "conven4+repl")


def run_engine(trace: Trace, config_name: str, engine: str):
    config = preset(config_name).with_engine(engine)
    return run_simulation(trace, config)


def ref(addr: int, write: bool = False, comp: int = 2,
        dep: bool = False) -> MemRef:
    return MemRef(addr=addr, is_write=write, comp_cycles=comp,
                  dependent=dep)


@pytest.mark.parametrize("engine", ENGINES)
class TestDegenerateTraces:
    def test_zero_length_trace(self, engine):
        result = run_engine(Trace([], name="empty"), "repl", engine)
        assert result.to_dict()["processor"]["refs"] == 0
        assert result.execution_time == 0
        assert result.to_dict() == \
            run_engine(Trace([], name="empty"), "repl",
                       "event").to_dict()

    @pytest.mark.parametrize("write", (False, True),
                             ids=("load", "store"))
    def test_single_access(self, engine, write):
        trace = Trace([ref(0x4000, write=write)], name="one")
        event = run_engine(trace, "repl", "event").to_dict()
        assert run_engine(trace, "repl", engine).to_dict() == event

    @pytest.mark.parametrize("config", CONFIGS)
    def test_write_only_stream(self, engine, config):
        # Stores never enter a hit run (the batch fast path is
        # load-only), so this pins the scalar leg of the walk against
        # the oracle across every config family.
        refs = [ref(0x1000 + 64 * (i % 37), write=True, comp=i % 5)
                for i in range(400)]
        trace = Trace(refs, name="stores")
        event = run_engine(trace, config, "event").to_dict()
        assert run_engine(trace, config, engine).to_dict() == event
        assert event["processor"]["refs"] == 400

    @pytest.mark.parametrize("config", CONFIGS)
    def test_scaled_prefix_ends_mid_epoch(self, engine, config):
        # Truncating a real workload at an arbitrary reference leaves
        # in-flight fills, a non-empty observation queue, and half-run
        # state at trace end — finalization must drain them identically.
        full = get_trace("mcf", scale=0.02)
        for cut in (1, 7, len(full) // 3, len(full) - 1):
            prefix = Trace(full.refs[:cut], name=f"mcf[:{cut}]")
            event = run_engine(prefix, config, "event").to_dict()
            assert run_engine(prefix, config, engine).to_dict() == event

    def test_dependent_chain_only(self, engine):
        # Every reference chases the previous one: no two misses
        # overlap, the window-stall loops run on each step.
        refs = [ref(0x8000 + 64 * i * 13, dep=(i > 0)) for i in range(64)]
        trace = Trace(refs, name="chase")
        event = run_engine(trace, "repl", "event").to_dict()
        assert run_engine(trace, "repl", engine).to_dict() == event


class TestTraceArraysEdges:
    def test_empty_trace_arrays(self):
        arrays = trace_arrays(Trace([], name="empty"), 64)
        assert arrays.n == 0
        assert len(arrays.comp_cumsum) == 1
        assert arrays.comp_cumsum[0] == 0

    def test_single_ref_arrays(self):
        arrays = trace_arrays(Trace([ref(0x40, comp=9)], name="one"), 64)
        assert arrays.n == 1
        assert list(arrays.l1_lines_np) == [1]
        assert list(arrays.comp_cumsum) == [0, 9]


def test_fault_injection_forces_fallback():
    # Fault plans make the run data-dependent on injected events; the
    # kernel must refuse to fuse and the fallback must keep parity.
    from dataclasses import replace

    from repro.faults.plan import FaultPlan

    config = replace(preset("repl"),
                     fault_plan=FaultPlan.parse("obs_drop=0.2", seed=7))
    assert not fused_supported(System(config))
    trace = get_trace("cg", scale=0.02)
    event = System(config).run(trace).to_dict()
    assert run_batch(trace, config).to_dict() == event
