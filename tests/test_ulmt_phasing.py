"""Tests for phased prefetch issue and cost-model phase boundaries."""

import pytest

from repro.core.cost_model import CostConstants, UlmtCostModel
from repro.core.customization import build_algorithm
from repro.core.ulmt import Ulmt
from repro.memsys.controller import MemoryController
from repro.params import MemProcLocation


def make_ulmt(spec: str) -> Ulmt:
    ctrl = MemoryController()
    return Ulmt(build_algorithm(spec), UlmtCostModel(ctrl))


CHASE = [(k * 131) % 4093 + 50_000 for k in range(40)]


class TestPhasedIssue:
    def test_combined_batches_have_increasing_issue_times(self):
        """Seq1's batch must issue before Repl's (the CG customisation)."""
        u = make_ulmt("seq1+repl")
        t = 0
        # Interleave a stream (for Seq1) with a long repeating chase (for
        # Repl); the chase period exceeds the 32-entry Filter window.
        for round_idx in range(3):
            for k, chase_line in enumerate(CHASE):
                u.observe_miss(100 + round_idx * 40 + k, t)
                t += 2000
                u.observe_miss(chase_line, t)
                t += 2000
        # A stream miss: Seq1 tops up; then the chase miss right after it
        # in Repl's history also appears among Repl's successors.
        issued = u.observe_miss(100 + 3 * 40, t)
        times = [p.issue_time for p in issued]
        assert issued
        assert times == sorted(times)

    def test_response_marked_at_first_batch(self):
        u = make_ulmt("seq1+repl")
        t = 0
        for miss in range(100, 140):
            u.observe_miss(miss, t)
            t += 2000
        cm = u.cost_model
        # Response (first batch) must be strictly below occupancy
        # (which includes Repl's lookup and all learning).
        assert cm.avg_response < cm.avg_occupancy

    def test_single_algorithm_single_batch(self):
        """All of one algorithm's prefetches carry the same issue time
        (one batch).  The chase period exceeds the Filter window so the
        prefetches are admitted."""
        u = make_ulmt("repl")
        t = 0
        for _ in range(2):
            for miss in CHASE:
                u.observe_miss(miss, t)
                t += 2000
        issued = u.observe_miss(CHASE[0], t)
        assert issued
        assert len({p.issue_time for p in issued}) == 1


class TestCostModelPlacement:
    def test_nb_stalls_exceed_dram_stalls(self):
        results = {}
        for loc in MemProcLocation:
            cm = UlmtCostModel(MemoryController(location=loc))
            cm.begin(0)
            cm.charge_row_access(0x9000_0000)
            obs = cm.end()
            results[loc] = obs.mem_stall
        assert (results[MemProcLocation.NORTH_BRIDGE]
                > results[MemProcLocation.DRAM])

    def test_clock_ratio_applied(self):
        constants = CostConstants(issue_ipc=1.0, cache_hit_cycles=0)
        cm = UlmtCostModel(MemoryController(), constants)
        cm.begin(0)   # charges observe_overhead instructions
        cm.charge_instructions(10)
        obs = cm.end()
        expected = (10 + constants.observe_overhead) * constants.clock_ratio
        assert obs.occupancy == expected

    def test_observation_aggregates(self):
        cm = UlmtCostModel(MemoryController())
        for start in (0, 1000, 2000):
            cm.begin(start)
            cm.charge_instructions(15)
            cm.mark_response()
            cm.charge_instructions(15)
            cm.end()
        assert cm.observations == 3
        assert cm.avg_response < cm.avg_occupancy
        assert cm.total_instructions >= 3 * 30


class TestSpecNames:
    def test_override_reflected_in_name(self):
        assert build_algorithm("repl@levels=4").name == "repl@levels=4"
        assert build_algorithm("repl").name == "repl"
        assert build_algorithm("base@succ=2").name == "base@succ=2"
