"""Smoke tests: every example script runs end to end (tiny scales)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str]) -> None:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py", ["0.05"])
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "ULMT" in out

    def test_custom_prefetcher(self, capsys):
        run_example("custom_prefetcher.py", ["0.05"])
        out = capsys.readouterr().out
        assert "repl@levels=4" in out
        assert "verbose" in out

    def test_placement_study(self, capsys):
        run_example("placement_study.py", ["0.05", "tree"])
        out = capsys.readouterr().out
        assert "NB" in out or "North Bridge" in out

    def test_adaptive_phases(self, capsys):
        run_example("adaptive_phases.py", [])
        out = capsys.readouterr().out
        assert "selected: seq4" in out
        assert "selected: repl" in out

    def test_miss_profiling(self, capsys):
        run_example("miss_profiling.py", ["0.05"])
        out = capsys.readouterr().out
        assert "Hottest pages" in out
        assert "Predictability" in out

    def test_os_multiprogramming(self, capsys):
        run_example("os_multiprogramming.py", [])
        out = capsys.readouterr().out
        assert "registered" in out
        assert "page re-map" in out
        assert "aggregate correlation-table memory" in out
