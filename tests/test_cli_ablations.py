"""Tests for the CLI and the ablation sweeps."""

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import ablations

SMALL = 0.4


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "repl" in out

    def test_run(self, capsys):
        assert cli_main(["run", "tree", "nopref", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out

    def test_run_with_ulmt_prints_timing(self, capsys):
        assert cli_main(["run", "tree", "repl", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ULMT" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli_main([])


class TestAblations:
    def test_num_levels_sweep(self):
        points = ablations.sweep_num_levels("mcf", scale=SMALL,
                                            levels=(1, 3))
        assert [p.value for p in points] == [1, 3]
        # One level cannot cover more than three levels on a repeating app.
        assert points[0].coverage <= points[1].coverage + 0.02

    def test_num_rows_sweep_monotone_coverage(self):
        points = ablations.sweep_num_rows("mcf", scale=SMALL,
                                          rows=(1024, 65536))
        assert points[0].coverage <= points[1].coverage + 0.02

    def test_queue_depth_drops(self):
        points = ablations.sweep_queue_depth("cg", scale=SMALL,
                                             depths=(2, 64))
        drops_shallow = int(points[0].detail.split("=")[1])
        drops_deep = int(points[1].detail.split("=")[1])
        assert drops_shallow >= drops_deep

    def test_filter_sweep_reports_filtered(self):
        points = ablations.sweep_filter("mcf", scale=SMALL, sizes=(1, 32))
        assert all("filtered=" in p.detail for p in points)

    def test_rob_sweep_speedup_decreases(self):
        points = ablations.sweep_rob("cg", scale=SMALL, robs=(4, 16))
        assert points[0].speedup >= points[1].speedup - 0.05

    def test_run_collects_all_sweeps(self):
        results = ablations.run(scale=SMALL, apps=("tree",),
                                sweeps=("num_succ",))
        assert set(results) == {"num_succ"}
        assert "tree" in results["num_succ"]
