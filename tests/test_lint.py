"""Tests for ``repro lint`` (the static-analysis tentpole).

Each rule gets one violating fixture and one passing fixture; the engine
gets suppression and baseline round-trip coverage; and two subprocess
tests pin the CI contract — the repo itself lints clean, and a scratch
file with a seeded-RNG or unit-mixing violation fails the gate.
"""

import ast
import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.baseline import Baseline, fingerprints
from repro.lint.engine import (
    ModuleContext,
    ProjectContext,
    Severity,
    all_rules,
    lint_source,
    select_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def codes(findings):
    return [f.rule for f in findings]


def module_ctx(source: str, relpath: str) -> ModuleContext:
    """A ModuleContext with an explicit package-relative path (so rules
    scoped to core/ or to sim packages can be exercised from strings)."""
    return ModuleContext(path=relpath, relpath=relpath, source=source,
                         tree=ast.parse(source),
                         lines=source.splitlines(),
                         in_sim_path=True)


def run_rule(code: str, source: str, relpath: str = "core/fixture.py"):
    (rule,) = select_rules(select=[code])
    return list(rule.check_module(module_ctx(source, relpath)))


# ---------------------------------------------------------------------------
# Determinism rules
# ---------------------------------------------------------------------------


class TestDeterminismRules:
    def test_det001_flags_global_rng_and_unseeded_random(self):
        findings = lint_source(
            "import random\n"
            "x = random.random()\n"
            "r = random.Random()\n",
            select=["DET001"])
        assert codes(findings) == ["DET001", "DET001"]

    def test_det001_passes_seeded_random(self):
        findings = lint_source(
            "import random\n"
            "r = random.Random(42)\n"
            "s = random.Random(f'{seed}:kind')\n"
            "x = r.random()\n",
            select=["DET001"])
        assert findings == []

    def test_det001_flags_systemrandom_even_with_args(self):
        findings = lint_source("import random\nr = random.SystemRandom()\n",
                               select=["DET001"])
        assert codes(findings) == ["DET001"]

    def test_det002_flags_numpy_global_state(self):
        findings = lint_source(
            "import numpy as np\n"
            "np.random.seed(1)\n"
            "x = np.random.rand(4)\n"
            "g = np.random.default_rng()\n",
            select=["DET002"])
        assert codes(findings) == ["DET002", "DET002", "DET002"]

    def test_det002_passes_seeded_generator(self):
        findings = lint_source(
            "import numpy as np\n"
            "g = np.random.default_rng(7)\n"
            "x = g.random(4)\n",
            select=["DET002"])
        assert findings == []

    def test_det003_flags_wall_clock_in_sim_path(self):
        findings = lint_source(
            "import time\n"
            "from datetime import datetime\n"
            "def f():\n"
            "    t = time.time()\n"
            "    d = datetime.now()\n",
            select=["DET003"])
        assert codes(findings) == ["DET003", "DET003"]

    def test_det003_exempts_reporting_paths(self):
        source = "import time\nt = time.time()\n"
        (rule,) = select_rules(select=["DET003"])
        module = module_ctx(source, "experiments/common.py")
        module.in_sim_path = False
        assert list(rule.check_module(module)) == []

    def test_det004_flags_set_iteration(self):
        findings = lint_source(
            "def f(items):\n"
            "    pending = set(items)\n"
            "    for x in pending:\n"
            "        print(x)\n",
            select=["DET004"])
        assert codes(findings) == ["DET004"]

    def test_det004_passes_sorted_iteration(self):
        findings = lint_source(
            "def f(items):\n"
            "    pending = set(items)\n"
            "    for x in sorted(pending):\n"
            "        print(x)\n",
            select=["DET004"])
        assert findings == []

    def test_det005_flags_mutable_default(self):
        findings = lint_source("def f(acc=[]):\n    return acc\n",
                               select=["DET005"])
        assert codes(findings) == ["DET005"]

    def test_det005_passes_none_default(self):
        findings = lint_source(
            "def f(acc=None):\n"
            "    acc = [] if acc is None else acc\n"
            "    return acc\n",
            select=["DET005"])
        assert findings == []

    def test_det006_flags_module_cache_mutation(self):
        findings = lint_source(
            "_CACHE = {}\n"
            "def put(k, v):\n"
            "    _CACHE[k] = v\n",
            select=["DET006"])
        assert codes(findings) == ["DET006"]

    def test_det006_passes_explicit_state(self):
        findings = lint_source(
            "_FROZEN = {'a': 1}\n"
            "def get(k):\n"
            "    return _FROZEN[k]\n"
            "def local_shadow():\n"
            "    _CACHE = {}\n"
            "    _CACHE['x'] = 1\n",
            select=["DET006"])
        assert findings == []


# ---------------------------------------------------------------------------
# Unit-safety rules
# ---------------------------------------------------------------------------


class TestUnitRules:
    def test_unit001_flags_additive_mixing(self):
        findings = lint_source(
            "total = push_delay_cycles + tsystem_ns\n",
            select=["UNIT001"])
        assert codes(findings) == ["UNIT001"]

    def test_unit001_flags_comparison_mixing(self):
        findings = lint_source(
            "if stall_cycles > timeout_ns:\n    pass\n",
            select=["UNIT001"])
        assert codes(findings) == ["UNIT001"]

    def test_unit001_passes_explicit_conversion(self):
        findings = lint_source(
            "total_cycles = push_delay_cycles + ns_to_cycles(tsystem_ns)\n",
            select=["UNIT001"])
        assert findings == []

    def test_unit001_passes_multiplicative_conversion_idiom(self):
        findings = lint_source("cycles = duration_ns * frequency_ghz\n",
                               select=["UNIT001"])
        assert findings == []

    def test_unit002_flags_cross_unit_assignment(self):
        findings = lint_source("timeout_cycles = tsystem_ns\n",
                               select=["UNIT002"])
        assert codes(findings) == ["UNIT002"]

    def test_unit002_passes_converted_assignment(self):
        findings = lint_source(
            "timeout_cycles = ns_to_cycles(tsystem_ns)\n"
            "budget_cycles = stall_cycles + 4\n",
            select=["UNIT002"])
        assert findings == []


# ---------------------------------------------------------------------------
# Sim-phase rules (scoped to core/)
# ---------------------------------------------------------------------------

PHASE_VIOLATION = (
    "class Table:\n"
    "    def __init__(self):\n"
    "        self.hits = 0\n"
    "    def lookup(self, key):\n"
    "        self.hits += 1\n"
    "        return key\n"
)

PHASE_CLEAN = (
    "class Table:\n"
    "    _STEP_METHODS = ('lookup',)\n"
    "    def __init__(self):\n"
    "        self.hits = 0\n"
    "    def lookup(self, key):\n"
    "        self.hits += 1\n"
    "        return key\n"
    "    def peek(self, key):\n"
    "        return self.hits\n"
)


class TestPhaseRules:
    def test_phase001_flags_undeclared_stateful_class(self):
        findings = run_rule("PHASE001", PHASE_VIOLATION)
        assert codes(findings) == ["PHASE001"]

    def test_phase001_passes_declared_class(self):
        assert run_rule("PHASE001", PHASE_CLEAN) == []

    def test_phase001_ignores_non_core_modules(self):
        assert run_rule("PHASE001", PHASE_VIOLATION,
                        relpath="sim/fixture.py") == []

    def test_phase002_flags_mutation_outside_step_methods(self):
        source = PHASE_CLEAN + (
            "    def sneaky(self):\n"
            "        self.hits = 0\n"
        )
        findings = run_rule("PHASE002", source)
        assert codes(findings) == ["PHASE002"]
        assert "sneaky" in findings[0].message

    def test_phase002_passes_declared_mutators(self):
        assert run_rule("PHASE002", PHASE_CLEAN) == []

    def test_phase002_flags_declared_but_missing_method(self):
        source = (
            "class Table:\n"
            "    _STEP_METHODS = ('lookup', 'ghost')\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "    def lookup(self, key):\n"
            "        self.hits += 1\n"
        )
        findings = run_rule("PHASE002", source)
        assert codes(findings) == ["PHASE002"]
        assert "ghost" in findings[0].message


# ---------------------------------------------------------------------------
# Config-drift rules (project-wide)
# ---------------------------------------------------------------------------

CONFIG_SOURCE = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class SystemConfig:\n"
    "    name: str = 'x'\n"
    "    queue_depth: int = 16\n"
    "    dead_knob: int = 0\n"
)

READER_SOURCE = (
    "def build(config):\n"
    "    return (config.name, config.queue_depth)\n"
)

MAIN_SOURCE = (
    "import argparse\n"
    "def main():\n"
    "    p = argparse.ArgumentParser()\n"
    "    p.add_argument('--queue-depth', type=int)\n"
    "    p.add_argument('--scale', type=float)\n"
    "    p.add_argument('--phantom-flag')\n"
)


class TestConfigDriftRules:
    def project(self, config=CONFIG_SOURCE, reader=READER_SOURCE,
                main=MAIN_SOURCE):
        return ProjectContext(modules=[
            module_ctx(config, "sim/config.py"),
            module_ctx(reader, "sim/system.py"),
            module_ctx(main, "__main__.py"),
        ])

    def test_cfg001_flags_unread_field(self):
        (rule,) = select_rules(select=["CFG001"])
        findings = list(rule.check_project(self.project()))
        assert codes(findings) == ["CFG001"]
        assert "dead_knob" in findings[0].message

    def test_cfg001_passes_when_all_fields_read(self):
        (rule,) = select_rules(select=["CFG001"])
        reader = READER_SOURCE + "def audit(c):\n    return c.dead_knob\n"
        assert list(rule.check_project(self.project(reader=reader))) == []

    def test_cfg002_flags_unmapped_flag(self):
        (rule,) = select_rules(select=["CFG002"])
        findings = list(rule.check_project(self.project()))
        assert codes(findings) == ["CFG002"]
        assert "phantom_flag" in findings[0].message

    def test_cfg002_passes_mapped_and_harness_flags(self):
        (rule,) = select_rules(select=["CFG002"])
        main = (
            "import argparse\n"
            "def main():\n"
            "    p = argparse.ArgumentParser()\n"
            "    p.add_argument('--queue-depth', type=int)\n"
            "    p.add_argument('--scale', type=float)\n"
        )
        assert list(rule.check_project(self.project(main=main))) == []


# ---------------------------------------------------------------------------
# Parallel-engine rules
# ---------------------------------------------------------------------------


class TestParallelRules:
    def test_par001_flags_cross_module_rebind(self):
        # The exact specimen the rule exists for: runall.main used to do
        # ``common.DEFAULT_SCALE = args.scale``.
        findings = lint_source(
            "from repro.experiments import common\n"
            "def main(args):\n"
            "    common.DEFAULT_SCALE = args.scale\n",
            select=["PAR001"])
        assert codes(findings) == ["PAR001"]

    def test_par001_flags_module_level_monkeypatch(self):
        findings = lint_source(
            "import repro.experiments.common as common\n"
            "common.DEFAULT_SCALE = 0.5\n",
            select=["PAR001"])
        assert codes(findings) == ["PAR001"]

    def test_par001_flags_global_rebind(self):
        findings = lint_source(
            "SCALE = 1.0\n"
            "def set_scale(value):\n"
            "    global SCALE\n"
            "    SCALE = value\n",
            select=["PAR001"])
        assert codes(findings) == ["PAR001"]

    def test_par001_flags_global_augassign(self):
        findings = lint_source(
            "COUNT = 0\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT += 1\n",
            select=["PAR001"])
        assert codes(findings) == ["PAR001"]

    def test_par001_passes_context_manager_override(self):
        findings = lint_source(
            "from repro.experiments import common\n"
            "def main(args):\n"
            "    with common.use_scale(args.scale):\n"
            "        pass\n",
            select=["PAR001"])
        assert findings == []

    def test_par001_passes_self_and_local_attributes(self):
        findings = lint_source(
            "import math\n"
            "class C:\n"
            "    def set(self, v):\n"
            "        self.value = v\n"
            "def local(obj):\n"
            "    obj.value = 1\n",
            select=["PAR001"])
        assert findings == []

    def test_par001_passes_shadowed_import(self):
        findings = lint_source(
            "from repro.experiments import common\n"
            "def f():\n"
            "    common = make_thing()\n"
            "    common.attr = 1\n",
            select=["PAR001"])
        assert findings == []

    def test_par001_suppressible_with_justification(self):
        findings = lint_source(
            "HOLDER = 1.0\n"
            "def install(value):\n"
            "    global HOLDER\n"
            "    # repro-lint: disable=PAR001 -- parent-only holder\n"
            "    HOLDER = value\n",
            select=["PAR001"])
        assert findings == []


# ---------------------------------------------------------------------------
# Suppressions and baseline
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression(self):
        findings = lint_source(
            "import random\n"
            "x = random.random()  # repro-lint: disable=DET001 -- fixture\n",
            select=["DET001"])
        assert findings == []

    def test_comment_above_suppression_covers_next_code_line(self):
        findings = lint_source(
            "import random\n"
            "# repro-lint: disable=DET001 -- justified at length,\n"
            "# across several comment lines\n"
            "x = random.random()\n",
            select=["DET001"])
        assert findings == []

    def test_rule_name_accepted_as_identifier(self):
        findings = lint_source(
            "import random\n"
            "x = random.random()  # repro-lint: disable=unseeded-rng\n",
            select=["DET001"])
        assert findings == []

    def test_file_wide_suppression(self):
        findings = lint_source(
            "# repro-lint: disable-file=DET001\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.random()\n",
            select=["DET001"])
        assert findings == []

    def test_suppression_does_not_leak_to_other_lines(self):
        findings = lint_source(
            "import random\n"
            "x = random.random()  # repro-lint: disable=DET001\n"
            "y = random.random()\n",
            select=["DET001"])
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_unrelated_rule_not_suppressed(self):
        findings = lint_source(
            "import random\n"
            "x = random.random()  # repro-lint: disable=DET003\n",
            select=["DET001"])
        assert codes(findings) == ["DET001"]


class TestBaseline:
    def make_findings(self, source):
        return lint_source(source, select=["DET001"])

    def test_round_trip(self, tmp_path):
        findings = self.make_findings(
            "import random\nx = random.random()\n")
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries.keys() == baseline.entries.keys()
        assert loaded.filter_new(findings) == []

    def test_fingerprints_stable_across_line_shifts(self):
        before = self.make_findings(
            "import random\nx = random.random()\n")
        after = self.make_findings(
            "import random\n# an unrelated comment pushes the line down\n"
            "\nx = random.random()\n")
        assert fingerprints(before) == fingerprints(after)

    def test_new_findings_survive_filter(self):
        old = self.make_findings("import random\nx = random.random()\n")
        baseline = Baseline.from_findings(old)
        new = self.make_findings(
            "import random\nx = random.random()\ny = random.randint(0, 9)\n")
        surviving = baseline.filter_new(new)
        assert [f.line for f in surviving] == [3]

    def test_repeated_identical_lines_disambiguated(self):
        findings = self.make_findings(
            "import random\nx = random.random()\nx = random.random()\n")
        fps = fingerprints(findings)
        assert len(fps) == len(set(fps)) == 2

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == {}

    def test_committed_baseline_is_empty(self):
        data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert data["findings"] == []


# ---------------------------------------------------------------------------
# CLI contract (the CI gate)
# ---------------------------------------------------------------------------


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        cwd=cwd, capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})


class TestCli:
    def test_repo_lints_clean(self):
        proc = run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_scratch_rng_violation_fails(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text("import random\nx = random.random()\n")
        proc = run_cli(str(scratch))
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_scratch_unit_violation_fails(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text("t_cycles = delay_cycles + budget_ns\n")
        proc = run_cli(str(scratch))
        assert proc.returncode == 1
        assert "UNIT001" in proc.stdout

    def test_json_output(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text("def f(a=[]):\n    return a\n")
        proc = run_cli(str(scratch), "--format", "json")
        data = json.loads(proc.stdout)
        assert data["errors"] == 1
        assert data["findings"][0]["rule"] == "DET005"

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule in all_rules():
            assert rule.code in proc.stdout

    def test_unknown_rule_is_usage_error(self):
        proc = run_cli("--select", "NOPE999")
        assert proc.returncode == 2


class TestRegistry:
    def test_expected_rule_families_present(self):
        present = {rule.code for rule in all_rules()}
        assert {"DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
                "UNIT001", "UNIT002", "PHASE001", "PHASE002",
                "CFG001", "CFG002", "PAR001",
                "FLOW001", "FLOW002", "FLOW003",
                "RACE001", "RACE002",
                "RES001", "RES002", "RES003", "RES004"} <= present

    def test_every_rule_has_rationale_and_severity(self):
        for rule in all_rules():
            assert rule.rationale, rule.code
            assert isinstance(rule.severity, Severity)


# ---------------------------------------------------------------------------
# mypy wiring (satellite): config present; run it when installed
# ---------------------------------------------------------------------------


class TestMypyWiring:
    def test_pyproject_declares_strict_core_and_sim(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.mypy]" in text
        assert '"repro.core.*"' in text and '"repro.sim.*"' in text
        assert ('"repro.perf.*"' in text and '"repro.campaign.*"' in text
                and '"repro.faults.*"' in text)
        assert "disallow_untyped_defs = true" in text

    def test_core_and_sim_defs_fully_annotated(self):
        """Static stand-in for strict mypy when it is not installed:
        every def in the strict packages annotates all params and the
        return.  perf/, campaign/ and faults/ joined core/ and sim/ when
        the strict override was extended to them."""
        gaps = []
        for pkg in ("core", "sim", "perf", "campaign", "faults"):
            for path in sorted((SRC / "repro" / pkg).glob("*.py")):
                tree = ast.parse(path.read_text())
                for node in ast.walk(tree):
                    if not isinstance(node, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                        continue
                    args = node.args
                    for a in args.posonlyargs + args.args + args.kwonlyargs:
                        if a.annotation is None and a.arg not in ("self",
                                                                  "cls"):
                            gaps.append(f"{path.name}:{node.name}:{a.arg}")
                    if node.returns is None:
                        gaps.append(f"{path.name}:{node.name}:<return>")
        assert gaps == []

    @pytest.mark.skipif(shutil.which("mypy") is None,
                        reason="mypy not installed (CI installs it)")
    def test_mypy_passes(self):
        proc = subprocess.run(
            ["mypy", "-p", "repro"], cwd=REPO_ROOT,
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ---------------------------------------------------------------------------
# AST cache (satellite): correctness and a measured wall-clock win
# ---------------------------------------------------------------------------


class TestAstCache:
    def test_warm_parse_reuses_tree_and_beats_cold(self):
        """Parsing dominates lint wall-clock; a warm cache must return the
        identical tree object and measurably beat re-parsing the package."""
        import time

        from repro.lint.engine import _parse_cached, clear_ast_cache

        files = sorted((SRC / "repro").rglob("*.py"))
        assert len(files) > 50  # the whole package, not a toy sample

        clear_ast_cache()
        t0 = time.perf_counter()
        cold = [_parse_cached(p)[1] for p in files]
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = [_parse_cached(p)[1] for p in files]
        warm_s = time.perf_counter() - t0

        assert all(a is b for a, b in zip(cold, warm))  # cache hits
        assert warm_s < cold_s / 2, (warm_s, cold_s)

    def test_cache_invalidated_by_file_change(self, tmp_path):
        import os

        from repro.lint.engine import _parse_cached

        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        _, tree1 = _parse_cached(path)
        path.write_text("x = 2\n")
        # mtime granularity can swallow back-to-back writes; force it.
        os.utime(path, ns=(1, 1))
        _, tree2 = _parse_cached(path)
        assert tree1 is not tree2
        assert tree2.body[0].value.value == 2


# ---------------------------------------------------------------------------
# Path-scoped rule config (satellite): benchmarks/examples without blanket
# suppressions
# ---------------------------------------------------------------------------


class TestPathScopedConfig:
    def test_benchmarks_scope_ignores_wall_clock_only(self):
        from repro.lint.pathconfig import scoped_ignores

        assert "DET003" in scoped_ignores("benchmarks/bench_lint.py")
        assert "DET003" in scoped_ignores("examples/demo.py")
        assert scoped_ignores("core/table.py") == frozenset()
        # Only wall-clock reads are role-appropriate for harnesses;
        # unseeded RNGs are not.
        assert "DET001" not in scoped_ignores("benchmarks/bench_lint.py")

    def test_wall_clock_ignored_under_benchmarks_flagged_under_sim(
            self, tmp_path):
        from repro.lint.engine import run_lint

        source = "import time\n\ndef bench():\n    t0 = time.time()\n"
        for rel in ("benchmarks", "sim"):
            (tmp_path / rel).mkdir()
            (tmp_path / rel / "timed.py").write_text(source)
        findings = run_lint([tmp_path], package_root=tmp_path,
                            select=["DET003"])
        assert [f.relpath for f in findings] == ["sim/timed.py"]

    def test_no_blanket_suppressions_in_harness_trees(self):
        """The satellite's contract: benchmarks/ and examples/ are linted
        via path-scoped config, not disable-file comments."""
        for tree in ("benchmarks", "examples"):
            for path in sorted((REPO_ROOT / tree).glob("*.py")):
                assert "disable-file" not in path.read_text(), path


# ---------------------------------------------------------------------------
# SARIF output (tentpole wiring)
# ---------------------------------------------------------------------------


class TestSarif:
    def test_document_shape_and_fingerprints(self):
        from repro.lint.sarif import FINGERPRINT_KEY, render_sarif

        findings = lint_source("import random\nx = random.random()\n",
                               select=["DET001"])
        doc = json.loads(render_sarif(findings))
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "DET001" in rule_ids and "FLOW001" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert (result["partialFingerprints"][FINGERPRINT_KEY]
                == fingerprints(findings)[0])
        assert driver["rules"][result["ruleIndex"]]["id"] == "DET001"

    def test_cli_sarif_on_clean_repo(self):
        proc = run_cli("--output", "sarif")
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["runs"][0]["results"] == []
        # Every registered rule ships a descriptor with a rationale.
        for rule in doc["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["fullDescription"]["text"], rule["id"]

    def test_cli_sarif_carries_findings(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text("import random\nx = random.random()\n")
        proc = run_cli(str(scratch), "--output", "sarif")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["DET001"]
