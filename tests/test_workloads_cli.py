"""Tests for the workload/trace CLI."""

import pytest

from repro.workloads.__main__ import main as wl_main


class TestWorkloadsCli:
    def test_stats(self, capsys):
        assert wl_main(["stats", "tree", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "references" in out
        assert "footprint" in out
        assert "Barnes-Hut" in out

    def test_save_and_info_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "tree.trc.npz")
        assert wl_main(["save", "tree", path, "--scale", "0.05"]) == 0
        assert wl_main(["info", path]) == 0
        out = capsys.readouterr().out
        assert "saved" in out
        assert "tree" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            wl_main(["stats", "quake3"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            wl_main([])
