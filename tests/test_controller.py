"""Tests for the memory controller: round trips and contention."""

import pytest

from repro.memsys.controller import MemoryController
from repro.params import MemoryParams, MemProcLocation


class TestContentionFreeRoundTrips:
    """The paper's Table 3 latencies, end to end through the controller."""

    def test_demand_fetch_row_miss(self):
        ctrl = MemoryController()
        completion = ctrl.demand_fetch(0, 0)
        assert completion == 243

    def test_demand_fetch_row_hit(self):
        ctrl = MemoryController()
        ctrl.demand_fetch(0, 0)
        # Second access to the same row, long after contention has drained.
        completion = ctrl.demand_fetch(128, 10_000)
        assert completion - 10_000 == 208

    def test_memproc_fetch_in_dram(self):
        ctrl = MemoryController(location=MemProcLocation.DRAM)
        assert ctrl.memproc_fetch(0, 0) == 56
        assert ctrl.memproc_fetch(128, 10_000) - 10_000 == 21

    def test_memproc_fetch_in_north_bridge(self):
        ctrl = MemoryController(location=MemProcLocation.NORTH_BRIDGE)
        assert ctrl.memproc_fetch(0, 0) == 100
        assert ctrl.memproc_fetch(128, 10_000) - 10_000 == 65

    def test_round_trip_helper_matches_params(self):
        for loc in MemProcLocation:
            ctrl = MemoryController(location=loc)
            p = MemoryParams()
            assert ctrl.memproc_round_trip(True) == p.memproc_round_trip(loc, True)
            assert ctrl.memproc_round_trip(False) == p.memproc_round_trip(loc, False)


class TestPrefetchPath:
    def test_north_bridge_prefetch_pays_request_delay(self):
        dram_ctrl = MemoryController(location=MemProcLocation.DRAM)
        nb_ctrl = MemoryController(location=MemProcLocation.NORTH_BRIDGE)
        t_dram = dram_ctrl.push_prefetch(0, 0)
        t_nb = nb_ctrl.push_prefetch(0, 0)
        assert t_nb - t_dram == MemoryParams().nb_prefetch_request_delay

    def test_push_uses_prefetch_bus_class(self):
        ctrl = MemoryController()
        ctrl.push_prefetch(0, 0)
        assert ctrl.bus.stats.prefetch_cycles > 0
        assert ctrl.bus.stats.demand_cycles == 0

    def test_push_is_one_way_traffic(self):
        """A push occupies the bus once (reply direction only)."""
        ctrl = MemoryController()
        ctrl.push_prefetch(0, 0)
        p = MemoryParams()
        assert ctrl.bus.stats.prefetch_cycles == p.bus_transfer_l2_line


class TestContention:
    def test_demand_and_prefetch_share_bus(self):
        ctrl = MemoryController()
        t1 = ctrl.demand_fetch(0, 0)
        # A prefetch racing the demand is delayed by bus/bank occupancy.
        t2 = ctrl.push_prefetch(64, 0)
        solo = MemoryController().push_prefetch(64, 0)
        assert t2 >= solo

    def test_writeback_consumes_bus(self):
        ctrl = MemoryController()
        ctrl.writeback(0, 0)
        assert ctrl.bus.stats.writeback_cycles == MemoryParams().bus_transfer_l2_line

    def test_counters(self):
        ctrl = MemoryController()
        ctrl.demand_fetch(0, 0)
        ctrl.push_prefetch(64, 0)
        ctrl.memproc_fetch(128, 0)
        assert ctrl.demand_fetches == 1
        assert ctrl.prefetch_pushes == 1
        assert ctrl.memproc_fetches == 1
