"""Dual-channel banked DRAM timing model with open-row policy.

Addresses are interleaved across channels and banks at line granularity so
that sequential streams exploit both channels, matching the paper's
dual-channel 3.2 GB/s organisation.  Each bank keeps its open row; a request
to the open row pays the CAS-only service time (16 cycles) while a row miss
pays RAS+CAS (51 cycles).  After bank service the line is moved over the
bank's channel (64 cycles for a 64 B L2 line on a 2 B x 800 MHz channel).

Contention is modelled with per-bank and per-channel ``busy_until`` horizons;
requests must be presented in non-decreasing time order, which the
event-driven system simulator guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import MemoryParams


@dataclass(frozen=True)
class DramAccess:
    """Result of one DRAM access."""

    data_ready: int     # time the line is available at the controller
    row_hit: bool
    channel: int
    bank: int


class _Bank:
    __slots__ = ("busy_until", "open_row")

    def __init__(self) -> None:
        self.busy_until = 0
        self.open_row = -1


class Dram:
    """The DRAM array shared by demand, prefetch, and ULMT-table traffic."""

    def __init__(self, params: MemoryParams) -> None:
        self.params = params
        # Two priority lanes per channel, mirroring the bus: demand data
        # movement is never delayed by prefetch transfers (queue 3 has
        # lower priority than queue 1), while bank occupancy stays shared
        # because an activated row cannot be preempted.
        self._demand_busy = [0] * params.num_channels
        self._low_busy = [0] * params.num_channels
        self._banks = [[_Bank() for _ in range(params.banks_per_channel)]
                       for _ in range(params.num_channels)]
        self.row_hits = 0
        self.row_misses = 0

    # -- address mapping ------------------------------------------------------

    def map_address(self, byte_addr: int) -> tuple[int, int, int]:
        """Return (channel, bank, row) for a byte address.

        Channel interleaving is at 64 B granularity, bank interleaving at row
        (4 KB) granularity, so a sequential stream alternates channels while
        staying in one open row per bank.
        """
        p = self.params
        line = byte_addr // 64
        channel = line % p.num_channels
        row_id = byte_addr // p.row_bytes
        bank = (row_id // p.num_channels) % p.banks_per_channel
        row = row_id // (p.num_channels * p.banks_per_channel)
        return channel, bank, row

    # -- timing ----------------------------------------------------------------

    def access(self, byte_addr: int, ready_time: int,
               transfer_cycles: int | None = None,
               low_priority: bool = False) -> DramAccess:
        """Service one line request arriving at the controller at ``ready_time``.

        ``transfer_cycles`` is the channel occupancy of the data movement
        (defaults to a full 64 B L2 line); the memory processor's 32 B lines
        pass ``channel_transfer_mp_line`` instead.  ``low_priority`` puts
        the channel transfer in the prefetch/write-back lane.
        """
        p = self.params
        if transfer_cycles is None:
            transfer_cycles = p.channel_transfer_l2_line
        channel, bank_idx, row = self.map_address(byte_addr)
        bank = self._banks[channel][bank_idx]

        start = max(ready_time, bank.busy_until)
        row_hit = bank.open_row == row
        service = (p.bank_service_row_hit if row_hit
                   else p.bank_service_row_miss)
        bank_done = start + service
        bank.busy_until = bank_done
        bank.open_row = row
        if row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1

        if low_priority:
            xfer_start = max(bank_done, self._demand_busy[channel],
                             self._low_busy[channel])
            data_ready = xfer_start + transfer_cycles
            self._low_busy[channel] = data_ready
        else:
            xfer_start = max(bank_done, self._demand_busy[channel])
            data_ready = xfer_start + transfer_cycles
            self._demand_busy[channel] = data_ready
        return DramAccess(data_ready, row_hit, channel, bank_idx)

    def access_no_transfer(self, byte_addr: int, ready_time: int) -> DramAccess:
        """Bank access with negligible data movement (in-DRAM memory processor).

        The in-DRAM memory processor reads over a 32 B-wide internal bus, so
        the transfer is not a contended channel resource; only the fixed
        ``memproc_dram_transfer`` latency applies (added by the caller).
        """
        p = self.params
        channel, bank_idx, row = self.map_address(byte_addr)
        bank = self._banks[channel][bank_idx]
        start = max(ready_time, bank.busy_until)
        row_hit = bank.open_row == row
        service = (p.bank_service_row_hit if row_hit
                   else p.bank_service_row_miss)
        bank.busy_until = start + service
        bank.open_row = row
        if row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        return DramAccess(start + service, row_hit, channel, bank_idx)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
