"""Memory-system substrate: caches, MSHRs, DRAM, buses, and queues."""

from repro.memsys.bus import Bus, BusStats
from repro.memsys.cache import Cache, Eviction, Line
from repro.memsys.controller import MemoryController
from repro.memsys.dram import Dram, DramAccess
from repro.memsys.l2 import DemandKind, DemandOutcome, L2Cache, L2Stats
from repro.memsys.mshr import MshrEntry, MshrFile
from repro.memsys.queues import (
    ObservationQueue,
    ObservedMiss,
    PrefetchQueue,
    PrefetchRequest,
    WritebackQueue,
)

__all__ = [
    "Bus",
    "BusStats",
    "Cache",
    "Eviction",
    "Line",
    "MemoryController",
    "Dram",
    "DramAccess",
    "DemandKind",
    "DemandOutcome",
    "L2Cache",
    "L2Stats",
    "MshrEntry",
    "MshrFile",
    "ObservationQueue",
    "ObservedMiss",
    "PrefetchQueue",
    "PrefetchRequest",
    "WritebackQueue",
]
