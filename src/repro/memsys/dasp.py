"""A DASP-style hardwired memory-side stride prefetcher (related work).

Section 2.1 and Section 6 of the paper contrast the ULMT against existing
memory-side engines: simple hardwired controllers like NVIDIA's DASP in
the nForce North Bridge, which "recognize only simple stride-based
sequences and prefetch data into local buffers" — a *pull* prefetcher (the
data waits in a buffer near memory until the processor asks) rather than
the paper's *push* approach (lines travel to the L2 uninvited).

This module implements that baseline so the push-vs-pull and
general-vs-stride comparisons of the paper's related-work discussion can
be measured:

* a stride detector watching the miss addresses that reach memory;
* a small local prefetch buffer in the North Bridge holding prefetched
  lines;
* demand misses that hit the buffer are served without a DRAM access,
  saving the bank+channel portion of the round trip but still paying the
  bus and fixed delays (the data still has to reach the processor).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.sequential import StreamDetector
from repro.memsys.controller import _REPLY_FIXED, _REQ_FIXED
from repro.memsys.controller import MemoryController
from repro.params import SequentialParams


@dataclass
class DaspStats:
    buffer_hits: int = 0
    buffer_misses: int = 0
    prefetches_fetched: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0


class DaspEngine:
    """Stride recognition + local prefetch buffer in the North Bridge."""

    def __init__(self, controller: MemoryController,
                 buffer_lines: int = 64,
                 params: SequentialParams | None = None) -> None:
        self.controller = controller
        self.buffer_lines = buffer_lines
        self.detector = StreamDetector(params
                                       or SequentialParams(num_seq=4,
                                                           num_pref=6))
        #: line -> time the line is present in the local buffer (LRU).
        self._buffer: OrderedDict[int, int] = OrderedDict()
        self.stats = DaspStats()

    def demand_fetch(self, line_addr: int, now: int) -> int:
        """Serve one demand L2 miss, using the buffer when possible."""
        ready_at = self._buffer_lookup(line_addr)
        if ready_at is not None and ready_at <= now:
            # Buffer hit: skip the DRAM access; still cross the bus.
            self.stats.buffer_hits += 1
            completion = self._serve_from_buffer(line_addr, now)
        else:
            self.stats.buffer_misses += 1
            completion = self.controller.demand_fetch(line_addr * 64, now)
        for pf_line in self.detector.observe(line_addr):
            self._prefetch_into_buffer(pf_line, now)
        return completion

    # -- internals ---------------------------------------------------------------

    def _buffer_lookup(self, line_addr: int) -> int | None:
        ready = self._buffer.get(line_addr)
        if ready is not None:
            self._buffer.move_to_end(line_addr)
        return ready

    def _serve_from_buffer(self, line_addr: int, now: int) -> int:
        p = self.controller.params
        bus = self.controller.bus
        at_bus = now + _REQ_FIXED
        bus.schedule(at_bus, p.bus_request_cycles, "demand")
        bus_done = bus.schedule(at_bus + p.bus_request_cycles,
                                p.bus_transfer_l2_line, "demand")
        self._buffer.pop(line_addr, None)
        return bus_done + _REPLY_FIXED

    def _prefetch_into_buffer(self, line_addr: int, now: int) -> None:
        if line_addr < 0 or line_addr in self._buffer:
            return
        # Fetch DRAM -> buffer: bank + channel only, no main-bus traffic
        # (the whole point of buffering locally).
        access = self.controller.dram.access(line_addr * 64, now,
                                             low_priority=True)
        self.stats.prefetches_fetched += 1
        self._buffer[line_addr] = access.data_ready
        while len(self._buffer) > self.buffer_lines:
            self._buffer.popitem(last=False)
