"""Miss Status Handling Registers.

The L2 cache uses MSHRs both for its own demand misses and — per Section 2.1
of the paper — to accept *pushed* prefetch lines it never requested: a free
MSHR is allocated when an unrequested line arrives, and a prefetched line
arriving for an address with a pending demand request "steals" that MSHR and
acts as the reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from repro.obs.metrics import MetricsRegistry

#: Sentinel completion time meaning "no outstanding transaction".
_NEVER = float("inf")


@dataclass(slots=True)
class MshrEntry:
    """One outstanding transaction."""

    line_addr: int
    is_prefetch: bool
    issue_time: int
    completion_time: int


class MshrFile:
    """A fixed-capacity pool of MSHR entries keyed by line address.

    Tracks the minimum outstanding completion time so the (very hot)
    "anything finished yet?" poll is a single comparison instead of a scan.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"MSHR capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: dict[int, MshrEntry] = {}
        self._min_completion: float = _NEVER
        #: Observability hook; None (the default) costs one test per
        #: allocation (the miss path — never the demand-hit path).
        self.metrics: "MetricsRegistry | None" = None

    def _recompute_min(self) -> None:
        self._min_completion = min(
            (e.completion_time for e in self._entries.values()),
            default=_NEVER)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MshrEntry]:
        return self._entries.get(line_addr)

    def allocate(self, line_addr: int, is_prefetch: bool,
                 issue_time: int, completion_time: int) -> Optional[MshrEntry]:
        """Allocate an entry; returns None when the file is full.

        Allocating for an address that already has an entry is a caller bug
        (the caller must check :meth:`lookup` first) and raises.
        """
        if line_addr in self._entries:
            raise ValueError(f"MSHR already allocated for line {line_addr:#x}")
        if self.full:
            return None
        entry = MshrEntry(line_addr, is_prefetch, issue_time, completion_time)
        self._entries[line_addr] = entry
        if completion_time < self._min_completion:
            self._min_completion = completion_time
        if self.metrics is not None:
            self.metrics.observe("mshr.occupancy", len(self._entries))
        return entry

    def free(self, line_addr: int) -> MshrEntry:
        """Release the entry for ``line_addr`` (it must exist)."""
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            raise KeyError(f"no MSHR for line {line_addr:#x}")
        if entry.completion_time <= self._min_completion:
            self._recompute_min()
        return entry

    def any_due(self, now: int) -> bool:
        """True when at least one transaction has completed by ``now``."""
        return now >= self._min_completion

    def retire_completed(self, now: int) -> list[MshrEntry]:
        """Free and return all entries whose transaction has completed."""
        if now < self._min_completion:
            return []
        done = [e for e in self._entries.values() if e.completion_time <= now]
        for entry in done:
            del self._entries[entry.line_addr]
        self._recompute_min()
        return done

    def outstanding(self) -> list[MshrEntry]:
        return list(self._entries.values())
