"""Set-associative write-back cache model with LRU replacement.

The model is *functional* (which lines are present) rather than cycle-timed;
timing is layered on top by the processor / memory-controller models.  Each
line carries the state bits the paper's evaluation needs:

``dirty``
    Set by stores; evicting a dirty line produces a write-back.
``prefetched``
    The line entered the cache through a prefetch rather than a demand miss.
``referenced``
    The line has been touched by a demand access since it was filled.  A
    prefetched line that is evicted with ``referenced == False`` is counted
    in the ``Replaced`` category of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.params import CacheParams


@dataclass(slots=True)
class Line:
    """State of one resident cache line."""

    tag: int
    dirty: bool = False
    prefetched: bool = False
    referenced: bool = False


@dataclass(frozen=True, slots=True)
class Eviction:
    """Information about a line evicted to make room for a fill."""

    line_addr: int
    dirty: bool
    prefetched: bool
    referenced: bool


class Cache:
    """A set-associative cache operating on *line* addresses.

    Callers convert byte addresses via :meth:`line_addr` once and use line
    addresses afterwards; this keeps the L1 (32 B) and L2 (64 B) granularity
    explicit at the call sites.
    """

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self.num_sets = params.num_sets
        if self.num_sets <= 0 or (self.num_sets & (self.num_sets - 1)) != 0:
            raise ValueError(f"number of sets must be a power of two: {self.num_sets}")
        # Python dicts preserve insertion order; each set maps tag -> Line
        # with the most recently used tag re-inserted last.
        self._sets: list[dict[int, Line]] = [{} for _ in range(self.num_sets)]

    # -- address helpers ----------------------------------------------------

    def line_addr(self, byte_addr: int) -> int:
        return byte_addr // self.params.line_bytes

    def _set_index(self, line_addr: int) -> int:
        return line_addr & (self.num_sets - 1)

    # -- functional interface ------------------------------------------------

    def access(self, line_addr: int, is_write: bool = False) -> bool:
        """Demand access.  Returns True on hit and updates LRU/state bits."""
        cset = self._sets[self._set_index(line_addr)]
        line = cset.pop(line_addr, None)
        if line is None:
            return False
        line.referenced = True
        if is_write:
            line.dirty = True
        cset[line_addr] = line  # re-insert as MRU
        return True

    def contains(self, line_addr: int) -> bool:
        """Presence check with no LRU or state side effects."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def fill(self, line_addr: int, dirty: bool = False,
             prefetched: bool = False) -> Optional[Eviction]:
        """Install a line, returning the eviction it caused, if any.

        Filling a line that is already resident refreshes its LRU position
        and merges the dirty bit but does not evict.
        """
        cset = self._sets[self._set_index(line_addr)]
        existing = cset.pop(line_addr, None)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            cset[line_addr] = existing
            return None
        evicted = None
        if len(cset) >= self.params.assoc:
            victim_tag = next(iter(cset))  # LRU = oldest insertion
            victim = cset.pop(victim_tag)
            evicted = Eviction(victim_tag, victim.dirty,
                               victim.prefetched, victim.referenced)
        cset[line_addr] = Line(line_addr, dirty=dirty, prefetched=prefetched,
                               referenced=not prefetched)
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line if present.  Returns True if it was resident."""
        cset = self._sets[self._set_index(line_addr)]
        return cset.pop(line_addr, None) is not None

    def peek(self, line_addr: int) -> Optional[Line]:
        """Return the resident line's state without touching LRU."""
        return self._sets[self._set_index(line_addr)].get(line_addr)

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[int]:
        for cset in self._sets:
            yield from cset

    def resident_tags(self) -> list[int]:
        """All resident line addresses as one list (set order, then LRU
        order within a set).  Snapshot primitive for the batch kernel's
        vectorized membership scans."""
        tags: list[int] = []
        for cset in self._sets:
            tags.extend(cset)
        return tags

    def set_occupancy(self, line_addr: int) -> int:
        """Number of resident lines in the set this address maps to."""
        return len(self._sets[self._set_index(line_addr)])
