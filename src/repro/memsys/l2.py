"""The main processor's L2 cache with support for pushed prefetches.

Section 2.1 of the paper lists the only hardware changes the scheme needs on
the processor side, all in the L2 controller:

1. The L2 accepts lines from memory that it has not requested, using a free
   MSHR for the fill.
2. If a pending demand request exists for the address of an arriving
   prefetched line, the prefetch *steals* the MSHR and acts as the reply.
3. An arriving prefetched line is dropped when: the cache already holds the
   line, the write-back queue holds the line, all MSHRs are busy, or every
   line in the target set is in transaction-pending state.

The cache is functional; timing lives in the memory-controller and processor
models.  This module also owns the miss/prefetch classification counters of
Figure 9 (Hits, DelayedHits, NonPrefMisses, Replaced, Redundant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from typing import TYPE_CHECKING

from repro.memsys.cache import Cache
from repro.memsys.mshr import MshrFile
from repro.memsys.queues import WritebackQueue
from repro.params import CacheParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from repro.obs.tracer import Tracer


class DemandKind(Enum):
    """Outcome of a demand lookup."""

    HIT = "hit"
    PENDING = "pending"          # merged into an outstanding MSHR
    MISS = "miss"                # caller must fetch from memory
    MISS_MSHR_FULL = "mshr_full"  # miss but no MSHR free: retry after retire


@dataclass(frozen=True, slots=True)
class DemandOutcome:
    kind: DemandKind
    #: For HIT: True when this is the first demand touch of a prefetched
    #: line (a fully eliminated miss — the ``Hits`` category of Figure 9).
    prefetch_first_touch: bool = False
    #: For PENDING: when the outstanding transaction completes.
    completion_time: int = 0
    #: For PENDING: the outstanding transaction is a prefetch (so the wait,
    #: if any, is a ``DelayedHit``).
    pending_is_prefetch: bool = False
    #: For MISS_MSHR_FULL: earliest time an MSHR frees up.
    earliest_free: int = 0


#: The three field-free outcomes, pre-built: demand lookups run once per L1
#: miss, and the overwhelming majority resolve to one of these, so the hot
#: path reuses singletons instead of allocating a fresh frozen dataclass.
_OUTCOME_HIT = DemandOutcome(DemandKind.HIT)
_OUTCOME_HIT_FIRST_TOUCH = DemandOutcome(DemandKind.HIT,
                                         prefetch_first_touch=True)
_OUTCOME_MISS = DemandOutcome(DemandKind.MISS)


@dataclass
class L2Stats:
    """Figure 9 classification plus auxiliary counters."""

    demand_accesses: int = 0
    demand_hits: int = 0
    prefetch_hits: int = 0           # Hits: miss fully eliminated by prefetch
    delayed_hits: int = 0            # DelayedHits: partial latency eliminated
    nonpref_misses: int = 0          # misses paying the full latency
    replaced_prefetches: int = 0     # prefetched, evicted before any use
    redundant_prefetches: int = 0    # dropped: line already in cache
    dropped_writeback_match: int = 0
    dropped_mshr_full: int = 0
    dropped_set_pending: int = 0
    accepted_prefetches: int = 0
    writebacks: int = 0
    #: misses that found an in-flight prefetch and waited only for it.
    merged_with_prefetch: int = 0

    extra: dict = field(default_factory=dict)

    @property
    def total_prefetches_arrived(self) -> int:
        return (self.accepted_prefetches + self.redundant_prefetches
                + self.dropped_writeback_match + self.dropped_mshr_full
                + self.dropped_set_pending)

    @property
    def original_misses_equivalent(self) -> int:
        """Misses there would have been without prefetching ~= eliminated +
        remaining (the ``1.0`` normalisation line of Figure 9)."""
        return self.prefetch_hits + self.delayed_hits + self.nonpref_misses

    def coverage(self) -> float:
        """Fraction of original misses fully or partially eliminated."""
        denom = self.original_misses_equivalent
        if denom == 0:
            return 0.0
        return (self.prefetch_hits + self.delayed_hits) / denom

    def to_dict(self) -> dict:
        from repro.sim.serialize import flat_to_dict
        return flat_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "L2Stats":
        from repro.sim.serialize import flat_from_dict
        return flat_from_dict(cls, data)


class L2Cache:
    """Functional L2 with MSHRs, a write-back queue, and push support."""

    def __init__(self, params: CacheParams, mshr_capacity: int = 8,
                 writeback_depth: int = 8) -> None:
        self.params = params
        self.cache = Cache(params)
        self.mshrs = MshrFile(mshr_capacity)
        self.writeback_queue = WritebackQueue(writeback_depth)
        self.stats = L2Stats()
        self._pending_is_write: dict[int, bool] = {}
        #: Observability hook; None (the default) keeps the demand path
        #: untouched — only the push-arrival path tests it.
        self.tracer: "Tracer | None" = None

    # -- demand path ----------------------------------------------------------

    def demand_lookup(self, line_addr: int, is_write: bool, now: int) -> DemandOutcome:
        """Look up a demand access (an L1 miss reaching the L2)."""
        self.retire(now)
        stats = self.stats
        stats.demand_accesses += 1

        line = self.cache.peek(line_addr)
        if line is not None:
            first_touch = line.prefetched and not line.referenced
            if first_touch:
                stats.prefetch_hits += 1
            stats.demand_hits += 1
            self.cache.access(line_addr, is_write)
            return _OUTCOME_HIT_FIRST_TOUCH if first_touch else _OUTCOME_HIT

        entry = self.mshrs.lookup(line_addr)
        if entry is not None:
            if entry.is_prefetch:
                # The in-flight prefetch becomes the reply for this demand
                # miss: the processor waits only until the prefetch arrives.
                self.stats.merged_with_prefetch += 1
                if entry.completion_time > now:
                    self.stats.delayed_hits += 1
                else:
                    self.stats.prefetch_hits += 1
            if is_write:
                self._pending_is_write[line_addr] = True
            return DemandOutcome(DemandKind.PENDING,
                                 completion_time=entry.completion_time,
                                 pending_is_prefetch=entry.is_prefetch)

        if self.mshrs.full:
            earliest = min(e.completion_time for e in self.mshrs.outstanding())
            return DemandOutcome(DemandKind.MISS_MSHR_FULL, earliest_free=earliest)

        return _OUTCOME_MISS

    def register_demand_miss(self, line_addr: int, is_write: bool,
                             now: int, completion_time: int) -> None:
        """Record a demand miss that was sent to memory."""
        self.stats.nonpref_misses += 1
        self.mshrs.allocate(line_addr, is_prefetch=False,
                            issue_time=now, completion_time=completion_time)
        self._pending_is_write[line_addr] = is_write
        # A queued write-back for the same line is superseded by the refetch.
        self.writeback_queue.remove(line_addr)

    # -- push-prefetch path -----------------------------------------------------

    def accept_prefetch(self, line_addr: int, now: int) -> str:
        """Handle a pushed prefetch line arriving from memory.

        Returns one of ``"redundant"``, ``"writeback_match"``, ``"steal"``,
        ``"mshr_full"``, ``"set_pending"``, or ``"filled"`` — the first
        four are the Section 2.1 drop rules, in the order the hardware
        checks them; each outcome is traced as ``l2.push.<outcome>``.
        """
        outcome = self._accept_prefetch(line_addr, now)
        if self.tracer is not None:
            self.tracer.emit(f"l2.push.{outcome}", now, line_addr)
            self.tracer.metrics.count(f"l2.push.{outcome}")
        return outcome

    def _accept_prefetch(self, line_addr: int, now: int) -> str:
        self.retire(now)

        if self.cache.contains(line_addr):
            self.stats.redundant_prefetches += 1
            return "redundant"
        if self.writeback_queue.contains(line_addr):
            self.stats.dropped_writeback_match += 1
            return "writeback_match"

        entry = self.mshrs.lookup(line_addr)
        if entry is not None:
            # Steal the MSHR: the prefetched line is treated as the reply to
            # the outstanding transaction, completing it now.
            entry_was_prefetch = entry.is_prefetch
            self.mshrs.free(line_addr)
            dirty = self._pending_is_write.pop(line_addr, False)
            self._fill(line_addr, dirty=dirty,
                       prefetched=entry_was_prefetch, now=now)
            return "steal"

        if self.mshrs.full:
            self.stats.dropped_mshr_full += 1
            return "mshr_full"
        if self._set_transaction_pending(line_addr):
            self.stats.dropped_set_pending += 1
            return "set_pending"

        self.stats.accepted_prefetches += 1
        self._fill(line_addr, dirty=False, prefetched=True, now=now)
        return "filled"

    def register_prefetch_inflight(self, line_addr: int, now: int,
                                   completion_time: int) -> bool:
        """Allocate an MSHR for a prefetch travelling from memory.

        Modelling note: the real hardware allocates the MSHR when the line
        *arrives*; tracking it from issue lets a later demand miss merge with
        the in-flight prefetch (the DelayedHits of Figure 9).  Returns False
        when no MSHR is free or the address already has one.
        """
        self.retire(now)
        if self.mshrs.lookup(line_addr) is not None or self.mshrs.full:
            return False
        self.mshrs.allocate(line_addr, is_prefetch=True,
                            issue_time=now, completion_time=completion_time)
        return True

    def fill_demand_merged(self, line_addr: int, now: int,
                           dirty: bool = False) -> Optional[int]:
        """Install a pushed line that a demand miss already consumed in
        flight (the DelayedHit merge path): it fills as a referenced demand
        line, not as an unreferenced prefetch."""
        self.retire(now)
        if self.cache.contains(line_addr):
            return None
        return self._fill(line_addr, dirty=dirty, prefetched=False, now=now)

    # -- completion -----------------------------------------------------------

    def retire(self, now: int) -> list[int]:
        """Complete finished transactions; returns write-backs to drain."""
        if not self.mshrs.any_due(now):  # hot path: usually nothing to do
            return []
        writebacks: list[int] = []
        for entry in self.mshrs.retire_completed(now):
            dirty = self._pending_is_write.pop(entry.line_addr, False)
            wb = self._fill(entry.line_addr, dirty=dirty,
                            prefetched=entry.is_prefetch, now=now)
            if wb is not None:
                writebacks.append(wb)
        return writebacks

    def flush_writebacks(self) -> list[int]:
        """Drain the whole write-back queue (end of simulation)."""
        drained = self.writeback_queue.drain_all()
        self.stats.writebacks += len(drained)
        return drained

    # -- invariant audit ----------------------------------------------------------

    def audit(self) -> list[str]:
        """Self-check of the L2's redundant bookkeeping.

        Called by :class:`repro.faults.invariants.InvariantChecker` after
        every external event; returns a list of violation descriptions
        (empty when everything holds).
        """
        problems: list[str] = []
        if len(self.mshrs) > self.mshrs.capacity:
            problems.append(f"MSHR file over capacity: {len(self.mshrs)} > "
                            f"{self.mshrs.capacity}")
        mshr_lines = {e.line_addr for e in self.mshrs.outstanding()}
        stale = set(self._pending_is_write) - mshr_lines
        if stale:
            problems.append(f"pending-write flags without MSHR entries: "
                            f"{sorted(stale)[:4]}")
        for entry in self.mshrs.outstanding():
            if entry.completion_time < entry.issue_time:
                problems.append(f"MSHR for line {entry.line_addr:#x} "
                                f"completes before it issues")
        if len(self.writeback_queue) > self.writeback_queue.depth:
            problems.append(
                f"write-back queue over depth: {len(self.writeback_queue)} "
                f"> {self.writeback_queue.depth}")
        for name in ("prefetch_hits", "delayed_hits", "nonpref_misses",
                     "accepted_prefetches", "redundant_prefetches",
                     "dropped_mshr_full", "dropped_set_pending",
                     "dropped_writeback_match"):
            if getattr(self.stats, name) < 0:
                problems.append(f"negative L2 counter {name}")
        return problems

    # -- internals --------------------------------------------------------------

    def _fill(self, line_addr: int, dirty: bool, prefetched: bool,
              now: int) -> Optional[int]:
        evicted = self.cache.fill(line_addr, dirty=dirty, prefetched=prefetched)
        if evicted is None:
            return None
        if evicted.prefetched and not evicted.referenced:
            self.stats.replaced_prefetches += 1
        if evicted.dirty:
            drained = self.writeback_queue.push(evicted.line_addr)
            if drained is not None:
                self.stats.writebacks += 1
                return drained
        return None

    def _set_transaction_pending(self, line_addr: int) -> bool:
        """True when every way of the target set has a pending transaction."""
        set_mask = self.cache.num_sets - 1
        target = line_addr & set_mask
        pending = sum(1 for e in self.mshrs.outstanding()
                      if (e.line_addr & set_mask) == target)
        return pending >= self.params.assoc
