"""Queues 1-3 of the paper's Figure 3 micro-architecture.

Queue 1 (demand requests to memory) is implicit in our event-driven model:
demand misses are presented to the DRAM/bus models in time order, which is
equivalent to a FIFO of higher priority than prefetches.  The two queues with
interesting semantics are modelled explicitly:

* **Queue 2** — the observation queue feeding the ULMT.  Miss addresses are
  deposited here; when the ULMT is still busy with earlier misses and the
  queue is full, new entries are simply dropped (paper Section 3.2).
* **Queue 3** — prefetch addresses produced by the ULMT, waiting to access
  memory at lower priority.

Cross-matching (paper Section 3.2): when an address is pushed to queue 3 and
the same address sits in queue 2, both entries are removed — the prefetch is
redundant and processing the miss would waste ULMT occupancy.  Conversely,
when a main-processor miss arrives and the same address sits in queue 3, the
queue-3 entry is removed (the demand fetch supersedes the prefetch).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from repro.obs.tracer import Tracer


@dataclass(frozen=True, slots=True)
class ObservedMiss:
    """An entry of queue 2: one L2 miss (or, in Verbose mode, one
    processor-side prefetch request) observed by the memory processor."""

    line_addr: int
    arrival_time: int
    is_processor_prefetch: bool = False


class ObservationQueue:
    """Queue 2: bounded FIFO of misses awaiting the ULMT."""

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError(f"queue depth must be positive: {depth}")
        self.depth = depth
        self._fifo: deque[ObservedMiss] = deque()
        self.dropped_overflow = 0
        self.dropped_matched = 0
        #: Observability hook; None (the default) costs one test per push.
        self.tracer: "Tracer | None" = None

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.depth

    def push(self, miss: ObservedMiss) -> bool:
        """Deposit an observed miss; returns False when dropped on overflow."""
        tr = self.tracer
        if self.full:
            self.dropped_overflow += 1
            if tr is not None:
                tr.emit("q2.drop_overflow", miss.arrival_time, miss.line_addr)
                tr.metrics.count("q2.drop_overflow")
            return False
        self._fifo.append(miss)
        if tr is not None:
            tr.emit("q2.enqueue", miss.arrival_time, miss.line_addr,
                    depth=len(self._fifo))
            tr.metrics.observe("q2.depth", len(self._fifo))
        return True

    def pop(self) -> Optional[ObservedMiss]:
        if not self._fifo:
            return None
        miss = self._fifo.popleft()
        if self.tracer is not None:
            self.tracer.emit("q2.dequeue", miss.arrival_time, miss.line_addr,
                            depth=len(self._fifo))
        return miss

    def peek(self) -> Optional[ObservedMiss]:
        return self._fifo[0] if self._fifo else None

    def remove_address(self, line_addr: int) -> bool:
        """Cross-match removal: drop the entry for ``line_addr`` if queued."""
        for entry in self._fifo:
            if entry.line_addr == line_addr:
                self._fifo.remove(entry)
                self.dropped_matched += 1
                if self.tracer is not None:
                    self.tracer.emit("q2.crossmatch", entry.arrival_time,
                                     line_addr)
                    self.tracer.metrics.count("q2.crossmatch")
                return True
        return False

    def clear(self) -> int:
        """Discard every queued observation (ULMT warm restart); returns
        how many were lost."""
        lost = len(self._fifo)
        self._fifo.clear()
        return lost

    def audit(self) -> list[str]:
        """Self-check for the invariant checker; returns violations."""
        problems = []
        if len(self._fifo) > self.depth:
            problems.append(f"queue 2 over depth: {len(self._fifo)} > "
                            f"{self.depth}")
        if self.dropped_overflow < 0 or self.dropped_matched < 0:
            problems.append("negative queue-2 drop counter")
        return problems


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """An entry of queue 3: one line the ULMT wants pushed to the L2."""

    line_addr: int
    issue_time: int
    #: Bounded-retry push semantics: how many times this request has been
    #: re-queued after its push was lost in transit (fault injection).
    retries: int = 0


class PrefetchQueue:
    """Queue 3: bounded FIFO of prefetch requests awaiting memory access."""

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError(f"queue depth must be positive: {depth}")
        self.depth = depth
        self._fifo: deque[PrefetchRequest] = deque()
        self.dropped_overflow = 0
        self.cancelled_by_demand = 0
        #: Observability hook; None (the default) costs one test per push.
        self.tracer: "Tracer | None" = None

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.depth

    def push(self, request: PrefetchRequest) -> bool:
        """Enqueue a prefetch; returns False when dropped on overflow."""
        tr = self.tracer
        if self.full:
            self.dropped_overflow += 1
            if tr is not None:
                tr.emit("q3.drop_overflow", request.issue_time,
                        request.line_addr)
                tr.metrics.count("q3.drop_overflow")
            return False
        self._fifo.append(request)
        if tr is not None:
            tr.emit("q3.enqueue", request.issue_time, request.line_addr,
                    depth=len(self._fifo), retries=request.retries)
            tr.metrics.observe("q3.depth", len(self._fifo))
        return True

    def pop(self) -> Optional[PrefetchRequest]:
        return self._fifo.popleft() if self._fifo else None

    def push_front(self, request: PrefetchRequest) -> None:
        """Return a popped entry to the head (it was not due yet)."""
        self._fifo.appendleft(request)

    def contains(self, line_addr: int) -> bool:
        return any(e.line_addr == line_addr for e in self._fifo)

    def cancel_address(self, line_addr: int) -> bool:
        """Remove the request for ``line_addr`` (a demand miss superseded it)."""
        for entry in self._fifo:
            if entry.line_addr == line_addr:
                self._fifo.remove(entry)
                self.cancelled_by_demand += 1
                if self.tracer is not None:
                    self.tracer.emit("q3.cancel_demand", entry.issue_time,
                                     line_addr)
                    self.tracer.metrics.count("q3.cancel_demand")
                return True
        return False

    def audit(self) -> list[str]:
        """Self-check for the invariant checker; returns violations."""
        problems = []
        if len(self._fifo) > self.depth:
            problems.append(f"queue 3 over depth: {len(self._fifo)} > "
                            f"{self.depth}")
        if self.dropped_overflow < 0 or self.cancelled_by_demand < 0:
            problems.append("negative queue-3 drop counter")
        return problems


class WritebackQueue:
    """The L2's write-back queue.

    Dirty victims wait here before draining to memory; a pushed prefetch whose
    address matches a queued write-back is dropped (drop rule 2 of Section
    2.1).  Entries are drained oldest-first whenever the queue grows beyond
    its depth, each drain scheduling one bus write-back transfer.
    """

    def __init__(self, depth: int = 8) -> None:
        if depth <= 0:
            raise ValueError(f"queue depth must be positive: {depth}")
        self.depth = depth
        self._fifo: deque[int] = deque()

    def __len__(self) -> int:
        return len(self._fifo)

    def push(self, line_addr: int) -> Optional[int]:
        """Add a dirty victim; returns a line address to drain now, if any."""
        self._fifo.append(line_addr)
        if len(self._fifo) > self.depth:
            return self._fifo.popleft()
        return None

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._fifo

    def remove(self, line_addr: int) -> bool:
        try:
            self._fifo.remove(line_addr)
        except ValueError:
            return False
        return True

    def drain_all(self) -> list[int]:
        drained = list(self._fifo)
        self._fifo.clear()
        return drained
