"""Memory controller: glues the bus, the DRAM, and the memory processor path.

The controller exposes exactly the timing questions the rest of the system
asks:

* ``demand_fetch``     — a main-processor L2 miss: when does the line arrive?
* ``push_prefetch``    — a ULMT prefetch: when does the pushed line reach L2?
* ``memproc_fetch``    — a memory-processor cache miss on the correlation
  table: when is the table data available to the ULMT?
* ``writeback``        — drain one dirty L2 victim.

Latency composition is documented in :mod:`repro.params`; the unit tests
assert that the contention-free round trips equal the paper's Table 3
numbers (208/243, 21/56, 65/100 cycles).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.memsys.bus import Bus
from repro.memsys.dram import Dram
from repro.params import MemoryParams, MemProcLocation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from repro.obs.tracer import Tracer

#: Split of ``main_fixed`` (96 cycles, tSystem) around the bus address phase:
#: request pipe + 4-cycle address phase + reply pipe = 40 + 4 + 52 = 96.
_REQ_FIXED = 40
_REPLY_FIXED = 52


class MemoryController:
    """Timing model of the North Bridge + DRAM subsystem."""

    def __init__(self, params: MemoryParams | None = None,
                 location: MemProcLocation = MemProcLocation.DRAM) -> None:
        self.params = params or MemoryParams()
        self.location = location
        self.bus = Bus()
        self.dram = Dram(self.params)
        self.demand_fetches = 0
        self.prefetch_pushes = 0
        self.memproc_fetches = 0
        #: Observability hook; None (the default) costs one test per fetch
        #: that reaches memory (never on cache hits).
        self.tracer: "Tracer | None" = None

    # -- main processor demand path --------------------------------------------

    def demand_fetch(self, byte_addr: int, now: int,
                     low_priority: bool = False) -> int:
        """Fetch a 64 B line for an L2 miss; returns its arrival time.

        ``low_priority`` marks processor-side *prefetch* requests (they are
        tagged, like the MIPS R10000 tags the paper cites): they use the
        same path but yield to demand traffic on the bus and channels.
        """
        p = self.params
        self.demand_fetches += 1
        kind = "prefetch" if low_priority else "demand"
        at_bus = now + _REQ_FIXED
        at_controller = self.bus.schedule(at_bus, p.bus_request_cycles, kind)
        access = self.dram.access(byte_addr, at_controller,
                                  low_priority=low_priority)
        bus_done = self.bus.schedule(access.data_ready,
                                     p.bus_transfer_l2_line, kind)
        complete = bus_done + _REPLY_FIXED
        if self.tracer is not None:
            # Queue 1 of Figure 3: demand (and tagged processor-prefetch)
            # requests entering the memory system in time order.
            self.tracer.emit("q1.issue", now, byte_addr // 64,
                             complete=complete, source=kind)
            self.tracer.metrics.observe("q1.latency", complete - now)
        return complete

    def writeback(self, byte_addr: int, now: int) -> int:
        """Drain one dirty L2 line to memory; returns completion time."""
        p = self.params
        bus_done = self.bus.schedule(now, p.bus_transfer_l2_line, "writeback")
        access = self.dram.access(byte_addr, bus_done, low_priority=True)
        if self.tracer is not None:
            self.tracer.emit("mem.writeback", now, byte_addr // 64,
                             complete=access.data_ready)
            self.tracer.metrics.count("mem.writebacks")
        return access.data_ready

    # -- prefetch push path -------------------------------------------------------

    def push_prefetch(self, byte_addr: int, now: int) -> int:
        """Push one prefetched line toward the L2; returns its arrival time.

        When the memory processor sits in the North Bridge, its prefetch
        request takes an extra 25 cycles to reach the DRAM (paper Table 3).
        Memory-side prefetching adds only one-way (memory -> processor)
        traffic on the main bus.
        """
        p = self.params
        self.prefetch_pushes += 1
        ready = now
        if self.location is MemProcLocation.NORTH_BRIDGE:
            ready += p.nb_prefetch_request_delay
        access = self.dram.access(byte_addr, ready, low_priority=True)
        bus_done = self.bus.schedule(access.data_ready,
                                     p.bus_transfer_l2_line, "prefetch")
        complete = bus_done + p.push_fixed
        if self.tracer is not None:
            self.tracer.emit("mem.push", now, byte_addr // 64,
                             complete=complete)
            self.tracer.metrics.observe("push.latency", complete - now)
        return complete

    # -- memory-processor (ULMT table) path -----------------------------------------

    def memproc_fetch(self, byte_addr: int, now: int) -> int:
        """Fetch a 32 B memory-processor line (correlation-table miss)."""
        p = self.params
        self.memproc_fetches += 1
        if self.location is MemProcLocation.DRAM:
            access = self.dram.access_no_transfer(
                byte_addr, now + p.memproc_dram_fixed)
            return access.data_ready + p.memproc_dram_transfer
        access = self.dram.access(byte_addr, now + p.memproc_nb_fixed,
                                  transfer_cycles=p.channel_transfer_mp_line)
        return access.data_ready

    def memproc_round_trip(self, row_hit: bool) -> int:
        """Contention-free round trip for the configured placement."""
        return self.params.memproc_round_trip(self.location, row_hit)
