"""Split-transaction memory bus occupancy model.

The bus between the North Bridge and the main processor is 8 B wide at
400 MHz (3.2 GB/s peak, paper Table 3).  We model it as a single resource
with a ``busy_until`` horizon: every transfer reserves the earliest slot at
or after its ready time.  Figure 11's utilisation metric falls directly out
of the accumulated busy cycles.

Traffic is tagged so utilisation can be attributed to demand fetches,
write-backs, and prefetch pushes (memory-side prefetching adds only one-way
traffic, which the paper highlights as the reason its bandwidth cost stays
low).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BusStats:
    """Accumulated busy cycles by traffic class."""

    demand_cycles: int = 0
    writeback_cycles: int = 0
    prefetch_cycles: int = 0
    transfers: dict[str, int] = field(default_factory=dict)

    @property
    def total_busy(self) -> int:
        return self.demand_cycles + self.writeback_cycles + self.prefetch_cycles

    def utilization(self, total_cycles: int) -> float:
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.total_busy / total_cycles)

    def prefetch_utilization(self, total_cycles: int) -> float:
        if total_cycles <= 0:
            return 0.0
        return self.prefetch_cycles / total_cycles

    def to_dict(self) -> dict:
        from repro.sim.serialize import flat_to_dict
        return flat_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BusStats":
        from repro.sim.serialize import flat_from_dict
        return flat_from_dict(cls, data)


_KINDS = ("demand", "writeback", "prefetch")


class Bus:
    """A single shared bus with two priority lanes.

    Queue 3 (prefetches) has lower priority than queue 1 (demand) in the
    paper's Figure 3, and write-backs drain opportunistically.  We model
    strict priority with two horizons: demand transfers see only earlier
    demand traffic, while low-priority transfers (prefetch pushes and
    write-backs) must additionally wait behind all demand traffic.  This
    slightly idealises arbitration (an in-flight prefetch transfer is
    treated as preemptible) but captures what matters: prefetch traffic
    cannot delay demand fetches.
    """

    #: Traffic classes scheduled in the low-priority lane.
    _LOW_PRIORITY = ("prefetch", "writeback")

    def __init__(self) -> None:
        self._demand_horizon = 0
        self._low_horizon = 0
        self.stats = BusStats()

    @property
    def busy_until(self) -> int:
        return max(self._demand_horizon, self._low_horizon)

    def schedule(self, ready_time: int, duration: int, kind: str) -> int:
        """Reserve the bus for ``duration`` cycles at or after ``ready_time``.

        Returns the completion time of the transfer.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown traffic kind: {kind!r}")
        if duration < 0:
            raise ValueError(f"negative transfer duration: {duration}")
        if kind in self._LOW_PRIORITY:
            start = max(ready_time, self._demand_horizon, self._low_horizon)
            end = start + duration
            self._low_horizon = end
        else:
            start = max(ready_time, self._demand_horizon)
            end = start + duration
            self._demand_horizon = end
        if kind == "demand":
            self.stats.demand_cycles += duration
        elif kind == "writeback":
            self.stats.writeback_cycles += duration
        else:
            self.stats.prefetch_cycles += duration
        self.stats.transfers[kind] = self.stats.transfers.get(kind, 0) + 1
        return end
