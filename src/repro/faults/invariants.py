"""Runtime invariant audits over the simulator's bookkeeping.

The system keeps redundant state on purpose — MSHR entries mirror pending
writes, the arrival heap mirrors the in-flight push map, queue lengths are
bounded by construction.  Fault injection pokes at exactly these structures,
so the :class:`InvariantChecker` re-derives every cross-structure invariant
after each external event and raises :class:`InvariantViolation` the moment
one breaks, pointing at the corrupted structure instead of letting the error
surface thousands of events later as a wrong statistic.

Enabled per :class:`~repro.sim.config.SystemConfig` (``invariants=True``) or
globally with ``REPRO_INVARIANTS=1`` in the environment (how CI runs the
suite); when disabled the system holds no checker at all, so the cost is one
``is None`` test per access.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # sim.system imports this module; annotation only
    from repro.sim.system import System


class InvariantViolation(AssertionError):
    """A cross-structure bookkeeping invariant does not hold."""


def invariants_enabled_in_env() -> bool:
    """True when ``REPRO_INVARIANTS`` requests audits for every system."""
    return os.environ.get("REPRO_INVARIANTS", "").lower() not in (
        "", "0", "false", "no")


class InvariantChecker:
    """Audits one :class:`~repro.sim.system.System` after every event."""

    def __init__(self) -> None:
        self.audits = 0

    def _fail(self, message: str) -> None:
        raise InvariantViolation(f"after {self.audits} audits: {message}")

    def audit(self, system: "System") -> None:
        """Validate every cross-structure invariant of ``system``."""
        self.audits += 1
        for problem in self.collect(system):
            self._fail(problem)

    def collect(self, system: "System") -> list[str]:
        """Gather every violation without raising (tests and tooling)."""
        problems = list(system.l2.audit())
        problems.extend(self._audit_push_tracking(system))
        problems.extend(system.prefetch_queue.audit())
        if system.memproc is not None:
            ulmt = system.memproc.ulmt
            problems.extend(ulmt.obs_queue.audit())
            if ulmt.free_at < 0:
                problems.append(f"ULMT free_at went negative: {ulmt.free_at}")
            if len(ulmt.filter) > ulmt.filter.entries:
                problems.append(f"Filter over capacity: {len(ulmt.filter)} "
                                f"> {ulmt.filter.entries}")
        return problems

    # -- cross-structure audits ---------------------------------------------------

    def _audit_push_tracking(self, system: "System") -> list[str]:
        problems: list[str] = []
        inflight = set(system._inflight)
        merged = set(system._merged)
        overlap = inflight & merged
        if overlap:
            problems.append(f"lines both in flight and demand-merged: "
                            f"{sorted(overlap)[:4]}")
        heap_lines = {line for _, line, _ in system._arrivals}
        tracked = inflight | merged
        if heap_lines != tracked:
            problems.append(
                f"arrival heap and push tracking disagree: "
                f"heap-only={sorted(heap_lines - tracked)[:4]}, "
                f"tracked-only={sorted(tracked - heap_lines)[:4]}")
        return problems
