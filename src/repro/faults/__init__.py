"""Fault injection and graceful degradation for the ULMT memory system.

Three collaborating pieces:

* :mod:`repro.faults.plan` — the :class:`FaultPlan` (what can go wrong, as
  seeded per-event probabilities) and the :class:`FaultInjector` that draws
  the deterministic fault schedule and counts what fired;
* :mod:`repro.faults.watchdog` — the :class:`UlmtWatchdog` that detects
  queue-2 backlog growth and sheds the learning step (prefetch-only mode)
  until the ULMT catches up;
* :mod:`repro.faults.invariants` — the :class:`InvariantChecker` auditing
  the simulator's cross-structure bookkeeping after every event.

See ``docs/ROBUSTNESS.md`` for the fault taxonomy and how to run a chaos
sweep.
"""

from repro.faults.invariants import (
    InvariantChecker,
    InvariantViolation,
    invariants_enabled_in_env,
)
from repro.faults.plan import ZERO_PLAN, FaultInjector, FaultPlan, FaultStats
from repro.faults.process import (
    PROCESS_FAULTS_ENV,
    InjectedProcessFault,
    ProcessFault,
    maybe_inject,
    parse_process_faults,
)
from repro.faults.watchdog import UlmtWatchdog

__all__ = [
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "ZERO_PLAN",
    "UlmtWatchdog",
    "InvariantChecker",
    "InvariantViolation",
    "invariants_enabled_in_env",
    "PROCESS_FAULTS_ENV",
    "InjectedProcessFault",
    "ProcessFault",
    "maybe_inject",
    "parse_process_faults",
]
