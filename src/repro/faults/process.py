"""Process-level fault injection: crash a worker on purpose.

:mod:`repro.faults.plan` injects faults *inside* a simulation; this module
injects them at the level the resilient pool defends — the worker process
itself.  It exists for tests and CI: the kill-and-resume smoke job starts a
real campaign, has a worker die with SIGKILL on its first attempt, feeds
the runner one poison task, and asserts the retry/quarantine/resume
machinery produces a byte-identical ``run_table.csv``.

The injection point is the environment variable ``REPRO_PROCESS_FAULTS``,
a semicolon-separated list of directives::

    <label>@<attempt>=<action>[;...]

* ``label`` — the task's fault label: ``MatrixTask.label()`` plus
  ``#<seed>`` when the task carries a workload seed (so one repetition of
  a campaign cell can be targeted without hitting its siblings).
* ``attempt`` — a 1-based attempt number, or ``*`` for every attempt
  (``*`` is what makes a task *poison*: it fails every retry and ends up
  quarantined).
* ``action`` — one of:

  - ``kill``   — ``SIGKILL`` to self (the abrupt worker-loss case);
  - ``exit``   — ``os._exit(86)`` (abnormal exit without a signal);
  - ``raise``  — raise :class:`InjectedProcessFault` (an ordinary
    exception the worker reports before dying cleanly);
  - ``sleep:N`` — sleep ``N`` seconds first (for exercising wall-clock
    timeouts), then return without failing.

Example — crash ``tree/repl`` seed 0 once, poison ``cg/nopref`` seed 1::

    REPRO_PROCESS_FAULTS="tree/repl#0@1=kill;cg/nopref#1@*=raise"

Attempt numbers restart when a killed campaign is resumed (the journal
records finished tasks, not in-flight attempt counts), which keeps the
injected schedule — and therefore the resumed run's results — exactly
reproducible.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

#: The environment variable holding the directive list.
PROCESS_FAULTS_ENV = "REPRO_PROCESS_FAULTS"

_ACTIONS = ("kill", "exit", "raise", "sleep")

#: Exit code used by the ``exit`` action (distinguishable from signals).
INJECTED_EXIT_CODE = 86


class InjectedProcessFault(RuntimeError):
    """The exception the ``raise`` action throws inside a worker."""


@dataclass(frozen=True)
class ProcessFault:
    """One parsed directive."""

    label: str
    attempt: "int | None"      # None = every attempt ('*')
    action: str
    sleep_s: float = 0.0

    def matches(self, label: str, attempt: int) -> bool:
        return (self.label == label
                and (self.attempt is None or self.attempt == attempt))


def parse_process_faults(spec: str) -> tuple[ProcessFault, ...]:
    """Parse a ``REPRO_PROCESS_FAULTS`` value; raises ValueError loudly.

    A malformed spec must never be silently ignored — a typo'd directive
    in a resilience test would make the test vacuously pass.
    """
    faults = []
    for raw in spec.split(";"):
        directive = raw.strip()
        if not directive:
            continue
        try:
            target, action = directive.split("=", 1)
            label, attempt_s = target.rsplit("@", 1)
        except ValueError:
            raise ValueError(
                f"bad process-fault directive {directive!r} "
                f"(expected label@attempt=action)") from None
        attempt = None if attempt_s == "*" else int(attempt_s)
        if attempt is not None and attempt < 1:
            raise ValueError(f"attempt must be >= 1 in {directive!r}")
        sleep_s = 0.0
        if action.startswith("sleep:"):
            sleep_s = float(action.split(":", 1)[1])
            action = "sleep"
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown process-fault action {action!r} in {directive!r}")
        faults.append(ProcessFault(label=label.strip(), attempt=attempt,
                                   action=action, sleep_s=sleep_s))
    return tuple(faults)


def maybe_inject(label: str, attempt: int) -> None:
    """Fire any matching directive; a no-op without the env variable.

    Called by the resilient worker right before executing its task, in
    the child process — ``kill`` and ``exit`` therefore take down only
    that worker, exactly like a real crash would.
    """
    spec = os.environ.get(PROCESS_FAULTS_ENV)
    if not spec:
        return
    for fault in parse_process_faults(spec):
        if not fault.matches(label, attempt):
            continue
        if fault.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.action == "exit":
            os._exit(INJECTED_EXIT_CODE)
        elif fault.action == "raise":
            raise InjectedProcessFault(
                f"injected fault: {label} attempt {attempt}")
        elif fault.action == "sleep":
            time.sleep(fault.sleep_s)
