"""Fault plans and the seeded fault injector.

A :class:`FaultPlan` describes *what can go wrong* at every boundary of the
paper's Figure-3 pipeline, as independent per-event probabilities:

* queue 2 (observation) — an observed miss silently dropped before the
  ULMT sees it, or duplicated (the push logic deposited it twice);
* queue 3 (prefetch requests) — a push rejected as if the queue had
  overflowed;
* the push path — a prefetched line lost in transit to the L2 (retried a
  bounded number of times by the :class:`~repro.sim.system.System`), or
  delayed by a fixed number of cycles (a late push racing the demand miss);
* the memory processor — a transient stall (the core is preempted or
  servicing something else), or a full ULMT crash followed by a warm
  restart in which the correlation table is rebuilt from the live miss
  stream;
* the correlation table itself — a flipped bit in a successor entry
  (the table is plain software state in main memory, so it is exposed to
  whatever corrupts that memory).

A :class:`FaultInjector` owns one seeded RNG *per fault kind*, each derived
deterministically from the plan's master seed, so a (plan, trace, config)
triple replays the exact same fault schedule — and, crucially, enabling or
tuning one fault kind never perturbs the decision stream of any other kind
(with a single shared RNG, turning on ``obs_drop`` would shift every
subsequent ``push_loss`` draw).  An all-zero plan never draws from any RNG
and never perturbs the simulation: the zero-fault path stays bit-identical
to a run with no plan at all.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.core.table import CorrelationTable

if TYPE_CHECKING:  # annotation-only: core.ulmt holds the injector
    from repro.core.algorithms import UlmtAlgorithm

#: Bit width of a correlation-table successor entry (line addresses on the
#: paper's 32-bit machine) — the range a fault may flip a bit in.
_SUCC_BITS = 32


@dataclass(frozen=True)
class FaultPlan:
    """Per-event fault probabilities plus their magnitude parameters.

    Rates are probabilities in ``[0, 1]`` evaluated independently at each
    opportunity (one observation, one push, one learning step...).  The
    ``*_cycles`` / ``*_limit`` fields shape what happens when a fault fires.
    """

    #: RNG seed for the fault schedule.
    seed: int = 0
    #: P(an observed miss is dropped before reaching queue 2).
    obs_drop: float = 0.0
    #: P(an observed miss is deposited into queue 2 twice).
    obs_dup: float = 0.0
    #: P(a queue-3 push is rejected as if the queue had overflowed).
    q3_reject: float = 0.0
    #: P(a pushed line is lost in transit to the L2).
    push_loss: float = 0.0
    #: P(a pushed line arrives late) / how late it arrives.
    push_delay: float = 0.0
    push_delay_cycles: int = 400
    #: P(transient memory-processor stall per observation) / its length.
    stall: float = 0.0
    stall_cycles: int = 2000
    #: P(full ULMT crash per observation) / warm-restart downtime.
    crash: float = 0.0
    crash_restart_cycles: int = 20000
    #: P(one bit of a correlation-table successor flips per learning step).
    bitflip: float = 0.0
    #: Bounded-retry push semantics: how many times the System re-queues a
    #: lost push, and how long it backs off before the retry.
    push_retry_limit: int = 2
    push_retry_backoff: int = 200

    _RATE_FIELDS = ("obs_drop", "obs_dup", "q3_reject", "push_loss",
                    "push_delay", "stall", "crash", "bitflip")

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {name}={rate} outside [0, 1]")
        for name in ("push_delay_cycles", "stall_cycles",
                     "crash_restart_cycles", "push_retry_limit",
                     "push_retry_backoff"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire (the bit-identical path)."""
        return all(getattr(self, name) == 0.0 for name in self._RATE_FIELDS)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec like ``"obs_drop=0.01,push_loss=0.05"``.

        Keys are the dataclass field names; values are parsed as float for
        rates and int for magnitudes.
        """
        valid = {f.name: f.type for f in fields(cls)}
        kwargs: dict[str, float | int] = {"seed": seed}
        spec = spec.strip()
        if spec:
            for item in spec.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or key not in valid:
                    raise ValueError(
                        f"bad fault spec item {item!r}; valid keys: "
                        f"{', '.join(sorted(valid))}")
                kwargs[key] = (float(value) if key in cls._RATE_FIELDS
                               else int(value))
        return cls(**kwargs)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A chaos-sweep plan stressing every boundary at intensity ``rate``.

        Per-event rates scale with how often the event recurs: frequent
        boundary events (drops, losses, rejects, delays) fire at ``rate``,
        duplications at half that, stalls and bit flips at a tenth, and full
        crashes at a hundredth (a crash costs ~20k cycles of downtime, so
        higher rates would just measure the restart penalty).
        """
        return cls(seed=seed, obs_drop=rate, obs_dup=rate / 2,
                   q3_reject=rate, push_loss=rate, push_delay=rate,
                   stall=rate / 10, crash=rate / 100, bitflip=rate / 10)

    def describe(self) -> str:
        """Non-zero fields, for logs: ``"obs_drop=0.01 push_loss=0.05"``."""
        parts = [f"{name}={getattr(self, name):g}"
                 for name in self._RATE_FIELDS if getattr(self, name) > 0]
        return " ".join(parts) if parts else "none"

    def for_core(self, core: int) -> "FaultPlan":
        """This plan re-seeded for one core of a multicore bundle.

        Each tile owns a private :class:`FaultInjector`, so a shared seed
        would replay the *same* schedule on every core — crashes striking
        all ULMTs in lockstep instead of independently.  The derived seed
        is a pure function of ``(seed, core)``, and core 0 keeps the base
        seed so a 1-core bundle stays bit-identical to the solo machine.
        """
        if core == 0:
            return self
        return dataclasses.replace(self, seed=self.seed * 1_000_003 + core)


#: The no-fault plan used when a system is built without one.
ZERO_PLAN = FaultPlan()


@dataclass
class FaultStats:
    """How many faults of each kind actually fired during a run."""

    observations_dropped: int = 0
    observations_duplicated: int = 0
    queue3_rejects: int = 0
    push_loss_events: int = 0
    pushes_retried: int = 0
    pushes_abandoned: int = 0
    pushes_delayed: int = 0
    delay_cycles_injected: int = 0
    stalls_injected: int = 0
    stall_cycles_injected: int = 0
    crashes_injected: int = 0
    bitflips_injected: int = 0

    @property
    def total_faults(self) -> int:
        """Total independent fault events injected."""
        return (self.observations_dropped + self.observations_duplicated
                + self.queue3_rejects + self.push_loss_events
                + self.pushes_delayed + self.stalls_injected
                + self.crashes_injected + self.bitflips_injected)

    def describe(self) -> str:
        parts = [f"{f.name}={getattr(self, f.name)}"
                 for f in dataclasses.fields(self) if getattr(self, f.name)]
        return " ".join(parts) if parts else "none"

    def to_dict(self) -> dict:
        from repro.sim.serialize import flat_to_dict
        return flat_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultStats":
        from repro.sim.serialize import flat_from_dict
        return flat_from_dict(cls, data)


class FaultInjector:
    """Draws the fault schedule for one simulated run.

    Every fault site asks a dedicated method; a method returns the "no
    fault" answer without touching its RNG when its rate is zero, which is
    what keeps the all-zero plan bit-identical (and nearly free).

    Each fault kind draws from its own :class:`random.Random`, seeded with
    ``f"{plan.seed}:{kind}"`` (string seeding is deterministic in CPython:
    it hashes the bytes with SHA-512, unaffected by ``PYTHONHASHSEED``).
    Independent streams mean the schedule of one fault kind is a pure
    function of ``(seed, kind, event index)``: changing the ``obs_drop``
    rate, or adding a second fault kind to a plan, cannot shift when a
    ``push_loss`` fires.  ``tests/test_faults.py`` pins this property.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or ZERO_PLAN
        self.active = not self.plan.is_zero
        #: One independent RNG stream per fault kind (see class docstring).
        self._rngs = {kind: random.Random(f"{self.plan.seed}:{kind}")
                      for kind in FaultPlan._RATE_FIELDS}
        self.stats = FaultStats()

    def _fires(self, kind: str) -> bool:
        rate: float = getattr(self.plan, kind)
        return rate > 0.0 and self._rngs[kind].random() < rate

    # -- queue-2 boundary ---------------------------------------------------------

    def drop_observation(self) -> bool:
        if self._fires("obs_drop"):
            self.stats.observations_dropped += 1
            return True
        return False

    def duplicate_observation(self) -> bool:
        if self._fires("obs_dup"):
            self.stats.observations_duplicated += 1
            return True
        return False

    # -- queue-3 / push boundary --------------------------------------------------

    def reject_queue3(self) -> bool:
        if self._fires("q3_reject"):
            self.stats.queue3_rejects += 1
            return True
        return False

    def lose_push(self) -> bool:
        """A push vanishes in transit (disposition counted by the System)."""
        if self._fires("push_loss"):
            self.stats.push_loss_events += 1
            return True
        return False

    def push_delay(self) -> int:
        """Extra cycles a pushed line spends in transit (usually 0)."""
        if self._fires("push_delay"):
            self.stats.pushes_delayed += 1
            self.stats.delay_cycles_injected += self.plan.push_delay_cycles
            return self.plan.push_delay_cycles
        return 0

    # -- memory-processor faults --------------------------------------------------

    def stall_cycles(self) -> int:
        """Transient stall charged to the ULMT before this observation."""
        if self._fires("stall"):
            self.stats.stalls_injected += 1
            self.stats.stall_cycles_injected += self.plan.stall_cycles
            return self.plan.stall_cycles
        return 0

    def crash_ulmt(self) -> bool:
        if self._fires("crash"):
            self.stats.crashes_injected += 1
            return True
        return False

    # -- correlation-table corruption ---------------------------------------------

    def corrupt_table(self, algorithm: "UlmtAlgorithm") -> bool:
        """Flip one random successor bit in the algorithm's table(s).

        The flip's location draws from the same ``bitflip`` stream as the
        fire decision, so table corruption is fully determined by
        ``(seed, "bitflip")`` alone."""
        if not self._fires("bitflip"):
            return False
        rng = self._rngs["bitflip"]
        tables = _tables_of(algorithm)
        flipped = False
        if tables:
            flipped = _flip_random_successor(rng.choice(tables), rng)
        if flipped:
            self.stats.bitflips_injected += 1
        return flipped


def _tables_of(algorithm: "UlmtAlgorithm") -> list[CorrelationTable]:
    """Correlation tables reachable from an algorithm (composites recurse)."""
    components = getattr(algorithm, "components", None)
    if components is not None:
        tables: list[CorrelationTable] = []
        for component in components:
            tables.extend(_tables_of(component))
        return tables
    table = getattr(algorithm, "table", None)
    return [table] if isinstance(table, CorrelationTable) else []


def _flip_random_successor(table: CorrelationTable,
                           rng: random.Random) -> bool:
    """XOR one random bit of one random successor entry; False if empty."""
    rows = [row for cset in table._sets for row in cset.values()
            if any(row.levels)]
    if not rows:
        return False
    row = rng.choice(rows)
    levels = [lvl for lvl in row.levels if lvl]
    succs = rng.choice(levels)
    idx = rng.randrange(len(succs))
    succs[idx] ^= 1 << rng.randrange(_SUCC_BITS)
    return True
