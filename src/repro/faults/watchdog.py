"""The ULMT backlog watchdog and its degraded (prefetch-only) mode.

Figure 2 of the paper bounds the ULMT's usefulness by its occupancy: when
observations arrive faster than the thread retires them, queue 2 fills and
misses are dropped unobserved — the prefetcher silently goes blind.  The
watchdog turns that cliff into a slope: when the backlog crosses a high-water
mark it *sheds the learning step* (the occupancy-heavy half of the loop,
Table 1's ``NumLevels`` row updates for Replicated), so the thread answers
with prefetches only and drains its queue faster; once the backlog falls to
the low-water mark, learning resumes.

The watchdog is pure bookkeeping over the queue-2 length, so it costs a
comparison per observation.  It is only wired in when fault injection is
active (or explicitly requested), keeping the fault-free path untouched.
"""

from __future__ import annotations


class UlmtWatchdog:
    """Hysteresis controller over the queue-2 backlog."""

    def __init__(self, queue_depth: int, high_frac: float = 0.75,
                 low_frac: float = 0.25) -> None:
        if queue_depth <= 0:
            raise ValueError(f"queue depth must be positive: {queue_depth}")
        if not 0.0 <= low_frac < high_frac <= 1.0:
            raise ValueError(
                f"need 0 <= low_frac < high_frac <= 1, got "
                f"low={low_frac}, high={high_frac}")
        self.queue_depth = queue_depth
        self.high_mark = max(1, int(queue_depth * high_frac))
        self.low_mark = int(queue_depth * low_frac)
        self.degraded = False
        self.activations = 0
        self.recoveries = 0
        self.degraded_observations = 0

    def update(self, backlog: int) -> bool:
        """Feed the current queue-2 length; returns the (new) mode."""
        if not self.degraded and backlog >= self.high_mark:
            self.degraded = True
            self.activations += 1
        elif self.degraded and backlog <= self.low_mark:
            self.degraded = False
            self.recoveries += 1
        return self.degraded

    def shed_learning(self) -> bool:
        """Asked once per processed observation: skip the learning step?"""
        if self.degraded:
            self.degraded_observations += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "degraded" if self.degraded else "normal"
        return (f"UlmtWatchdog({mode}, marks={self.low_mark}/"
                f"{self.high_mark}, activations={self.activations})")
