"""Drive a campaign over the resilient pool and emit its artifacts.

Artifacts, all under the campaign directory (``--out``):

* ``journal.jsonl`` — the append-only run journal (checkpoint/resume);
* ``run_table.csv`` — the first-class results table, one row per
  run×repetition in the MCC shape: identity columns, then latency,
  coverage, accuracy, then the robustness counters;
* ``failures.json`` — the quarantined tasks as typed rows;
* ``metrics.json`` — the campaign's execution counters (retries,
  timeouts, crashes, quarantines, ...) as a standard mergeable metrics
  snapshot (:mod:`repro.obs.metrics`).

``run_table.csv`` and ``failures.json`` are **deterministic**: rows are
emitted in spec order, numbers derive only from simulation results and
the (deterministic) retry schedule, and no wall-clock value is written —
which is why a ``--resume`` after SIGKILL reproduces the uninterrupted
file byte for byte (CI enforces this).  ``metrics.json`` is the one
artifact that legitimately differs across resumes (it counts what *this*
invocation did, e.g. ``campaign.resumed``).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.multicore.result import MulticoreResult
from repro.obs.metrics import snapshot_from_counters
from repro.perf.cache import ResultCache, atomic_write_text
from repro.perf.journal import RunJournal
from repro.perf.pool import MatrixTask
from repro.perf.resilient import ResilientRun, run_tasks_resilient
from repro.perf.retry import RetryPolicy
from repro.sim.serialize import json_line
from repro.sim.stats import SimResult

#: Exit codes of ``python -m repro campaign`` beyond 0 (success) and the
#: argparse-reserved 2 (usage / spec mismatch).
EXIT_QUARANTINED = 1   # completed, but at least one task was quarantined
EXIT_INTERRUPTED = 3   # graceful shutdown (SIGINT/SIGTERM) cut the run short

#: ``run_table.csv`` column order — identity, execution, latency/quality,
#: then robustness (one row per run×repetition, the MCC shape).
RUN_TABLE_COLUMNS = (
    "app", "config", "scale", "seed", "repetition",
    "status", "attempts",
    "execution_time", "speedup", "coverage", "accuracy",
    "demand_misses", "prefetches_issued",
    "filter_dropped", "q2_overflow_drops", "q3_overflow_drops",
    "warm_restarts", "watchdog_activations", "degraded_observations",
    "total_sheds",
)

#: Row status for a cell never started/finished before an interrupt.
STATUS_ABANDONED = "abandoned"
STATUS_OK = "ok"


class CampaignError(RuntimeError):
    """A campaign could not start (journal clash, spec mismatch, ...)."""


@dataclass
class CampaignOutcome:
    """Everything :func:`run_campaign` produced."""

    spec: "CampaignSpec"
    out_dir: Path
    run: ResilientRun
    rows: list[dict[str, str]] = field(default_factory=list)

    @property
    def run_table_path(self) -> Path:
        return self.out_dir / "run_table.csv"

    @property
    def exit_code(self) -> int:
        if self.run.interrupted:
            return EXIT_INTERRUPTED
        if self.run.failures:
            return EXIT_QUARANTINED
        return 0


def _fmt(value: float) -> str:
    return f"{value:.6f}"


def run_table_rows(spec: "CampaignSpec",
                   run: ResilientRun) -> list[dict[str, str]]:
    """One CSV row dict per run×repetition, in spec order.

    Failed cells keep their identity columns and status/attempts and
    leave every metric cell empty; ``speedup`` is filled only when the
    spec sweeps a ``nopref`` baseline and that baseline's repetition
    succeeded.

    Multicore campaign cells (:class:`MulticoreResult`) fill the same
    columns with bundle aggregates: makespan execution time, summed
    miss/prefetch counters, bundle-wide coverage/accuracy, and the
    field-wise sum of the per-core robustness counters.
    """
    keys = spec.row_keys()
    baseline_time: dict[tuple[str, int], int] = {}
    if "nopref" in spec.configs:
        for i, (app, name, rep) in enumerate(keys):
            result = run.results[i]
            if (name == "nopref"
                    and isinstance(result, (SimResult, MulticoreResult))):
                baseline_time[(app, rep)] = result.execution_time

    rows: list[dict[str, str]] = []
    for i, (app, name, rep) in enumerate(keys):
        row = {column: "" for column in RUN_TABLE_COLUMNS}
        row.update({
            "app": app, "config": name, "scale": format(spec.scale, "g"),
            "seed": str(spec.base_seed + rep), "repetition": str(rep),
            "attempts": str(run.attempts[i]),
        })
        result = run.results[i]
        if not isinstance(result, (SimResult, MulticoreResult)):
            failure = run.failure_for(i)
            row["status"] = failure.kind if failure else STATUS_ABANDONED
            rows.append(row)
            continue
        if isinstance(result, MulticoreResult):
            rb = result.robustness_totals()
            arrived = result.prefetches_arrived()
            eliminated = result.eliminated_misses()
        else:
            rb = result.robustness
            arrived = result.l2.total_prefetches_arrived
            eliminated = result.l2.prefetch_hits + result.l2.delayed_hits
        base = baseline_time.get((app, rep))
        row.update({
            "status": STATUS_OK,
            "execution_time": str(result.execution_time),
            "speedup": (_fmt(base / result.execution_time)
                        if base else ""),
            "coverage": _fmt(result.coverage()),
            "accuracy": _fmt(eliminated / arrived if arrived else 0.0),
            "demand_misses": str(result.demand_misses_to_memory),
            "prefetches_issued": str(result.prefetches_issued_to_memory),
            "filter_dropped": str(rb.filter_dropped),
            "q2_overflow_drops": str(rb.queue2_overflow_drops),
            "q3_overflow_drops": str(rb.queue3_overflow_drops),
            "warm_restarts": str(rb.ulmt_warm_restarts),
            "watchdog_activations": str(rb.watchdog_activations),
            "degraded_observations": str(rb.degraded_observations),
            "total_sheds": str(rb.total_sheds),
        })
        rows.append(row)
    return rows


def render_run_table(rows: list[dict[str, str]]) -> str:
    lines = [",".join(RUN_TABLE_COLUMNS)]
    lines += [",".join(row[column] for column in RUN_TABLE_COLUMNS)
              for row in rows]
    return "\n".join(lines) + "\n"


def run_campaign(spec: "CampaignSpec",
                 out_dir: "Path | str",
                 jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 policy: Optional[RetryPolicy] = None,
                 resume: bool = False,
                 stop_event: Optional[threading.Event] = None,
                 drain_s: float = 30.0,
                 verbose: bool = True,
                 engine: str = "event") -> CampaignOutcome:
    """Execute (or resume) one campaign; see the module docstring.

    A fresh campaign refuses a directory that already has a journal
    (``resume=False``) — silently mixing two campaigns' checkpoints is
    how resume guarantees die.  ``resume=True`` validates the journal
    header against ``spec`` and replays every finished task from it.

    ``engine`` is an *execution* choice, like ``jobs`` — not part of the
    spec and not recorded in the journal header.  Journal identities and
    cache keys are engine-blind (the engines are bit-identical), so a
    campaign may be resumed under either engine: finished cells replay
    from the journal, remaining cells compute on the requested engine.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    journal = RunJournal(out / "journal.jsonl")

    header = journal.header() if journal.exists() else None
    if header is not None and not resume:
        raise CampaignError(
            f"{journal.path} already exists — resume it with --resume "
            f"{out} or start a fresh --out directory")
    if resume:
        if header is None:
            raise CampaignError(
                f"{journal.path} has no campaign header to resume from")
        recorded = header.get("campaign")
        if recorded != spec.to_dict():
            raise CampaignError(
                f"journal {journal.path} records a different campaign "
                f"spec ({recorded!r}); refusing to resume")
    else:
        journal.write_header({"campaign": spec.to_dict()})

    tasks = spec.tasks()
    if engine != "event":
        from repro.perf.pool import with_engine

        tasks = [with_engine(task, engine) for task in tasks]
    if verbose:
        engine_note = f" [{engine} engine]" if engine != "event" else ""
        print(f"[campaign] {spec.describe()}{engine_note}", file=sys.stderr)

    progress = None
    if verbose:
        def progress(done: int, total: int, task: MatrixTask) -> None:
            print(f"[campaign] {done}/{total} {task.label()}",
                  file=sys.stderr, flush=True)

    run = run_tasks_resilient(tasks, jobs=jobs, cache=cache, policy=policy,
                              journal=journal, stop_event=stop_event,
                              drain_s=drain_s, progress=progress)

    rows = run_table_rows(spec, run)
    outcome = CampaignOutcome(spec=spec, out_dir=out, run=run, rows=rows)
    atomic_write_text(outcome.run_table_path, render_run_table(rows),
                      encoding="ascii")
    atomic_write_text(
        out / "failures.json",
        json_line([f.to_dict() for f in run.failures]) + "\n",
        encoding="ascii")
    counters = {f"campaign.{name}": value
                for name, value in sorted(run.counters.items())}
    atomic_write_text(out / "metrics.json",
                      json_line(snapshot_from_counters(counters)) + "\n",
                      encoding="ascii")
    if verbose:
        summary = ", ".join(f"{name}={value}"
                            for name, value in run.counters.items() if value)
        print(f"[campaign] {summary or 'nothing to do'}", file=sys.stderr)
        print(f"[campaign] run table: {outcome.run_table_path}",
              file=sys.stderr)
    return outcome
