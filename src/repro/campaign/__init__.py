"""Statistical campaign runner: crash-safe sweeps over the matrix.

The MCC use-case scripts and the mubench replication (SNIPPETS.md §2–3)
define the shape this package reproduces: an N-repetition sweep driver
whose single first-class artifact is ``run_table.csv`` — one row per
run×repetition carrying latency, coverage, accuracy, and robustness
columns — plus a journal that makes the whole campaign resumable after
any crash, including SIGKILL.

* :mod:`repro.campaign.spec` — the frozen :class:`CampaignSpec` (what to
  sweep) and its journal-header round trip;
* :mod:`repro.campaign.runner` — :func:`run_campaign` over the resilient
  pool (:mod:`repro.perf.resilient`): retries, timeouts, quarantine,
  journaled checkpoint/resume, graceful drain;
* :mod:`repro.campaign.cli` — ``python -m repro campaign``.

See the "Execution robustness" section of ``docs/ROBUSTNESS.md`` for the
failure semantics and exit codes.
"""

from repro.campaign.runner import (
    EXIT_INTERRUPTED,
    EXIT_QUARANTINED,
    CampaignError,
    CampaignOutcome,
    run_campaign,
    run_table_rows,
)
from repro.campaign.spec import CampaignSpec

__all__ = [
    "CampaignSpec",
    "CampaignError",
    "CampaignOutcome",
    "run_campaign",
    "run_table_rows",
    "EXIT_QUARANTINED",
    "EXIT_INTERRUPTED",
]
