"""``python -m repro campaign`` — crash-safe N-repetition sweeps.

Examples::

    # 5 repetitions of two apps under three configs, 4 workers:
    python -m repro campaign mcf,tree nopref,base,repl \\
        --reps 5 --scale 0.2 --jobs 4 --out results/c1

    # the same campaign after a crash / SIGKILL / Ctrl-C — only the
    # unfinished cells run, run_table.csv comes out byte-identical:
    python -m repro campaign --resume results/c1

Exit status: 0 success; 1 completed with quarantined task(s); 2 usage or
spec mismatch; 3 interrupted (graceful shutdown wrote a partial table).
SIGINT/SIGTERM trigger the graceful path: no new cells launch, in-flight
cells drain up to ``--drain`` seconds and their results are salvaged
into the journal for the next ``--resume``.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path

from repro.campaign.runner import CampaignError, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.perf.cache import ResultCache, default_cache_dir
from repro.perf.journal import JournalError, RunJournal
from repro.perf.retry import RetryPolicy
from repro.sim.config import PRESETS
from repro.workloads.registry import list_workloads


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    apps = tuple(args.apps.split(","))
    configs = tuple(args.configs.split(","))
    known_apps = set(list_workloads())
    known_configs = set(PRESETS) | {"custom"}
    for app in apps:
        # With --cores N every "app" is a +-joined bundle of N components.
        components = app.split("+") if args.cores > 1 else [app]
        if args.cores > 1 and len(components) != args.cores:
            raise CampaignError(
                f"bundle {app!r} is not {args.cores} apps wide; with "
                f"--cores {args.cores} each entry must join exactly "
                f"{args.cores} apps with '+'")
        for component in components:
            if component not in known_apps:
                raise CampaignError(f"unknown app {component!r}; available: "
                                    f"{', '.join(sorted(known_apps))}")
    for name in configs:
        if name not in known_configs:
            raise CampaignError(f"unknown config {name!r}; available: "
                                f"{', '.join(sorted(known_configs))}")
        if args.cores > 1 and name == "custom":
            raise CampaignError("the per-application 'custom' preset "
                                "cannot scale to multicore bundles")
    return CampaignSpec(apps=apps, configs=configs, scale=args.scale,
                        repetitions=args.reps, base_seed=args.seed,
                        faults=args.faults, fault_seed=args.fault_seed,
                        cores=args.cores, coordination=args.coordination)


def _spec_from_journal(out_dir: Path) -> CampaignSpec:
    journal = RunJournal(out_dir / "journal.jsonl")
    if not journal.exists():
        raise CampaignError(f"nothing to resume: {journal.path} not found")
    header = journal.header()
    if header is None or "campaign" not in header:
        raise CampaignError(
            f"{journal.path} has no campaign header to resume from")
    return CampaignSpec.from_dict(header["campaign"])


def _install_stop_handlers(stop_event: threading.Event) -> None:
    def _handler(signum: int, _frame: object) -> None:
        if stop_event.is_set():
            # A second signal means "stop now": skip the drain.
            raise SystemExit(128 + signum)
        print(f"[campaign] received {signal.Signals(signum).name}; "
              f"draining (signal again to abort)", file=sys.stderr)
        stop_event.set()

    signal.signal(signal.SIGINT, _handler)
    signal.signal(signal.SIGTERM, _handler)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro campaign", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("apps", nargs="?", default=None,
                        help="comma-separated workloads (omit with --resume)")
    parser.add_argument("configs", nargs="?", default="nopref,repl",
                        help="comma-separated configs "
                             "(default nopref,repl)")
    parser.add_argument("--reps", type=int, default=1, metavar="N",
                        help="repetitions per cell; repetition r uses "
                             "workload seed SEED+r (default 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base workload seed (default 0)")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="fault plan applied to every non-baseline "
                             'cell, e.g. "obs_drop=0.05"')
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--cores", type=int, default=1, metavar="N",
                        help="cores per cell (default 1); with N > 1 each "
                             "apps entry is a +-joined bundle of exactly N "
                             "apps, e.g. tree+cg")
    parser.add_argument("--coordination", choices=("static", "demand"),
                        default="static",
                        help="multicore resource-arbitration policy "
                             "(default static)")
    parser.add_argument("--out", default="campaign-out", metavar="DIR",
                        help="campaign directory (journal + run_table.csv; "
                             "default campaign-out)")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="resume the campaign journaled in DIR "
                             "(spec comes from the journal header)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent worker processes (default 1)")
    parser.add_argument("--timeout", type=float, default=0.0, metavar="S",
                        help="per-task wall-clock timeout in seconds "
                             "(0 = none; default 0)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="attempts before quarantine (default 3)")
    parser.add_argument("--backoff-base", type=float, default=0.5,
                        metavar="S", help="first retry delay (default 0.5)")
    parser.add_argument("--backoff-cap", type=float, default=30.0,
                        metavar="S", help="maximum retry delay (default 30)")
    parser.add_argument("--drain", type=float, default=30.0, metavar="S",
                        help="graceful-shutdown drain deadline (default 30)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache directory (default "
                             ".repro-cache, or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--engine", choices=("event", "batch"),
                        default="event",
                        help="simulation engine (default event); 'batch' "
                             "uses the vectorized kernel — results, journal "
                             "identities and the run table are identical, "
                             "so a campaign can be resumed under either "
                             "engine")
    args = parser.parse_args(argv)

    try:
        if args.resume is not None:
            out_dir = Path(args.resume)
            spec = _spec_from_journal(out_dir)
        else:
            if args.apps is None:
                parser.error("apps is required unless --resume is given")
            out_dir = Path(args.out)
            spec = _spec_from_args(args)
        policy = RetryPolicy(max_attempts=args.max_attempts,
                             timeout_s=args.timeout,
                             backoff_base_s=args.backoff_base,
                             backoff_cap_s=args.backoff_cap)
        cache = (None if args.no_cache
                 else ResultCache(args.cache_dir or default_cache_dir()))
        stop_event = threading.Event()
        _install_stop_handlers(stop_event)
        outcome = run_campaign(spec, out_dir, jobs=args.jobs, cache=cache,
                               policy=policy,
                               resume=args.resume is not None,
                               stop_event=stop_event, drain_s=args.drain,
                               verbose=not args.quiet, engine=args.engine)
    except (CampaignError, JournalError, ValueError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    return outcome.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
