"""What a campaign sweeps: the frozen, journal-round-trippable spec."""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Any, Mapping, Optional

from repro.faults.plan import FaultPlan
from repro.multicore.coordination import POLICIES
from repro.perf.pool import MatrixTask, mc_task, sim_task
from repro.sim.config import SystemConfig, custom_config, preset


@dataclass(frozen=True)
class CampaignSpec:
    """One sweep: ``apps × configs × repetitions`` simulation cells.

    Repetition ``r`` runs under workload trace seed ``base_seed + r`` —
    each repetition is a genuinely different trace layout, which is what
    gives the per-row statistics their spread, while staying a pure
    function of the spec (two campaigns with the same spec enumerate
    bit-identical tasks).  ``faults``/``fault_seed`` optionally put every
    non-baseline cell under a seeded :class:`~repro.faults.FaultPlan`, so
    the robustness columns of the run table exercise the same degradation
    machinery the chaos sweep reports.

    ``cores > 1`` makes it a *multicore* campaign: each entry of ``apps``
    is then a ``+``-joined bundle exactly ``cores`` wide (``"tree+cg"``
    for 2 cores) and every non-string config resolves through
    :meth:`~repro.sim.config.SystemConfig.with_cores` under the
    ``coordination`` policy.  ``cores == 1`` campaigns serialise exactly
    as before — the new keys stay out of the journal header, so existing
    journals resume untouched.
    """

    apps: tuple[str, ...]
    configs: tuple[str, ...]
    scale: float = 0.1
    repetitions: int = 1
    base_seed: int = 0
    faults: Optional[str] = None
    fault_seed: int = 0
    cores: int = 1
    coordination: str = "static"

    def __post_init__(self) -> None:
        if not self.apps or not self.configs:
            raise ValueError("campaign needs at least one app and config")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be > 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.coordination not in POLICIES:
            raise ValueError(f"unknown coordination policy "
                             f"{self.coordination!r} (expected one of "
                             f"{POLICIES})")
        if self.cores > 1:
            if "custom" in self.configs:
                raise ValueError("the per-application 'custom' preset "
                                 "cannot scale to multicore bundles")
            for bundle in self.apps:
                if len(bundle.split("+")) != self.cores:
                    raise ValueError(f"bundle {bundle!r} is not "
                                     f"{self.cores} apps wide")

    # -- enumeration -------------------------------------------------------------

    def resolve_config(self, app: str, name: str) -> "str | SystemConfig":
        """The config one cell runs under (cores and fault plan folded in)."""
        if self.cores > 1:
            config = preset(name).with_cores(self.cores, self.coordination)
            if self.faults is None or name == "nopref":
                return config
            return dc_replace(config, fault_plan=FaultPlan.parse(
                self.faults, seed=self.fault_seed))
        if self.faults is None:
            return name
        config = (custom_config(app) if name == "custom" else preset(name))
        if name == "nopref":
            return config  # the baseline stays clean by definition
        return dc_replace(config, fault_plan=FaultPlan.parse(
            self.faults, seed=self.fault_seed))

    def tasks(self) -> list[MatrixTask]:
        """Every cell, app-major then config then repetition.

        The order is the row order of ``run_table.csv`` and the journal's
        task identity set — deterministic by construction.
        """
        cells = []
        for app in self.apps:
            for name in self.configs:
                config = self.resolve_config(app, name)
                for rep in range(self.repetitions):
                    seed = self.base_seed + rep
                    if self.cores > 1:
                        assert isinstance(config, SystemConfig)
                        cells.append(mc_task(app, config, self.scale,
                                             seed=seed))
                    else:
                        cells.append(sim_task(app, config, self.scale,
                                              seed=seed))
        return cells

    def row_keys(self) -> list[tuple[str, str, int]]:
        """(app, config name, repetition) per task, in task order."""
        return [(app, name, rep)
                for app in self.apps
                for name in self.configs
                for rep in range(self.repetitions)]

    # -- journal header round trip ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data = {
            "apps": list(self.apps),
            "configs": list(self.configs),
            "scale": self.scale,
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
            "faults": self.faults,
            "fault_seed": self.fault_seed,
        }
        if self.cores != 1:
            # Emitted only off-default: a single-core spec's header must
            # stay byte-identical to pre-multicore journals, or resuming
            # them would fail the header equality check.
            data["cores"] = self.cores
            data["coordination"] = self.coordination
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(apps=tuple(data["apps"]), configs=tuple(data["configs"]),
                   scale=float(data["scale"]),
                   repetitions=int(data["repetitions"]),
                   base_seed=int(data["base_seed"]),
                   faults=data.get("faults"),
                   fault_seed=int(data.get("fault_seed", 0)),
                   cores=int(data.get("cores", 1)),
                   coordination=str(data.get("coordination", "static")))

    def describe(self) -> str:
        cells = len(self.apps) * len(self.configs) * self.repetitions
        text = (f"{','.join(self.apps)} × {','.join(self.configs)} × "
                f"{self.repetitions} rep(s) @ scale {self.scale:g} "
                f"({cells} cells, seeds {self.base_seed}.."
                f"{self.base_seed + self.repetitions - 1})")
        if self.faults:
            text += f", faults \"{self.faults}\" seed {self.fault_seed}"
        if self.cores > 1:
            text += f", {self.cores} cores ({self.coordination})"
        return text
