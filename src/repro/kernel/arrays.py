"""Frozen columnar views of a :class:`~repro.workloads.trace.Trace`.

The batch engine (:mod:`repro.kernel.engine`) replays a trace many times
faster than the per-event loop, but only if it can stop paying the
per-reference cost of attribute access on ``MemRef`` named tuples.  This
module snapshots a trace once into parallel numpy columns (for the
vectorized L1 tag scans) plus plain Python lists (for the fused scalar
walk, where list indexing beats ``ndarray`` item access), and caches the
snapshot per trace object so repeated cells over the same trace — the
normal shape of an evaluation matrix — freeze it exactly once.

The cache is keyed by trace *identity* in a ``WeakKeyDictionary``: traces
are interned by the workload registry, and the weak keying means a trace
evicted from the registry cache releases its columns too.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.workloads.trace import Trace


class TraceArrays:
    """Immutable columnar snapshot of one trace at one L1 line size."""

    __slots__ = ("n", "l1_line_bytes", "l1_lines_np", "writes_np",
                 "comp_cumsum", "l1_lines", "writes", "dependent",
                 "comp_cycles")

    def __init__(self, trace: Trace, l1_line_bytes: int) -> None:
        refs = trace.refs
        n = len(refs)
        self.n = n
        self.l1_line_bytes = l1_line_bytes
        addrs = np.fromiter((r.addr for r in refs), dtype=np.int64, count=n)
        #: L1 line address per reference (the unit the processor model
        #: works in; the L2 line is ``l1_line // 2``).
        self.l1_lines_np: np.ndarray = addrs // l1_line_bytes
        self.writes_np: np.ndarray = np.fromiter(
            (r.is_write for r in refs), dtype=np.bool_, count=n)
        #: ``comp_cumsum[j] - comp_cumsum[i]`` = Busy cycles of refs [i, j).
        comp = np.fromiter((r.comp_cycles for r in refs),
                           dtype=np.int64, count=n)
        self.comp_cumsum: np.ndarray = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(comp)))
        # Python-native mirrors for the scalar walk.
        self.l1_lines: list[int] = self.l1_lines_np.tolist()
        self.writes: list[bool] = self.writes_np.tolist()
        self.dependent: list[bool] = [r.dependent for r in refs]
        self.comp_cycles: list[int] = comp.tolist()


_CACHE: "weakref.WeakKeyDictionary[Trace, TraceArrays]" = (
    weakref.WeakKeyDictionary())


def trace_arrays(trace: Trace, l1_line_bytes: int) -> TraceArrays:
    """The (cached) columnar snapshot of ``trace``.

    ``Trace`` objects are immutable by convention once built, so the
    snapshot never needs invalidation; a different ``l1_line_bytes`` (no
    current config varies it) simply rebuilds.
    """
    cached = _CACHE.get(trace)
    if cached is not None and cached.l1_line_bytes == l1_line_bytes:
        return cached
    arrays = TraceArrays(trace, l1_line_bytes)
    _CACHE[trace] = arrays
    return arrays
