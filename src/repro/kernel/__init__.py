"""Batched array engine for the simulator (``engine="batch"``).

A performance twin of the event engine: same machine, same numbers,
bit-identical ``SimResult`` (CI-enforced), several times faster.  See
:mod:`repro.kernel.engine` for the design notes and docs/PERFORMANCE.md
("Batch kernel") for the user-facing story.
"""

from repro.kernel.arrays import TraceArrays, trace_arrays
from repro.kernel.engine import fused_supported, run_batch

__all__ = ["TraceArrays", "trace_arrays", "fused_supported", "run_batch"]
