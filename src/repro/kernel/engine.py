"""Batched array engine: the event simulator's fast twin.

:func:`run_batch` replays a frozen trace (:mod:`repro.kernel.arrays`)
through a *fused* walk of the exact same state machines the event engine
(:class:`repro.sim.system.System` + :class:`~repro.cpu.processor.MainProcessor`)
steps one call at a time.  It is a performance twin, not a model variant:
every counter update, LRU motion, horizon max, and stall attribution below
is a line-for-line transcription of the oracle, and the CI ``kernel-parity``
job enforces bit-identical ``SimResult.to_dict()`` across both engines for
the whole tier-1 matrix (see docs/PERFORMANCE.md, "Batch kernel").

Two mechanisms carry the speedup:

* **Fused scalar walk** — one function holds the processor step, the L1,
  the L2 demand path, the MSHR file, the bus/DRAM timing arithmetic, and
  the queue-3 issue/arrival pump as locals, eliminating the ~30 method
  calls and attribute chains the event engine pays per reference.  The
  ULMT itself (algorithm + cost model + watchdog), the L2 push-arrival
  rules, and the stream-prefetcher state machine stay *delegated*: they
  run rarely relative to references, and keeping them behind their own
  methods keeps this module honest about what it re-implements.
* **Epoch-partitioned hit runs** — between "boundary events" (any L1 fill
  in flight, any outstanding load/store miss) the machine is quiescent:
  an L1 hit touches nothing below the L1 and advances time by its own
  Busy cycles only.  The engine detects maximal runs of such hits with a
  vectorized ``isin`` scan over the frozen address column and applies the
  whole run at once — bulk counter updates, a cumulative-sum time jump,
  and an order-preserving last-occurrence LRU replay.

Scalar fallback to the *whole-run* event engine happens whenever state
is data-dependent in ways the fused walk does not transcribe: tracing
(observability hooks in every subsystem), invariant audits, fault
injection, and the DASP baseline.  See :func:`fused_supported`.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cpu.processor import LEVEL_L1, LEVEL_L2, LEVEL_MEM, InflightFill
from repro.kernel.arrays import trace_arrays
from repro.memsys.cache import Line
from repro.memsys.controller import _REPLY_FIXED, _REQ_FIXED
from repro.memsys.mshr import MshrEntry
from repro.memsys.queues import PrefetchRequest
from repro.params import MemoryParams, MemProcLocation
from repro.sim.stats import SimResult, distance_bin
from repro.sim.system import System
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from repro.obs.tracer import Tracer
    from repro.sim.config import SystemConfig

#: Scalar probe length before committing to a vectorized hit scan, and the
#: block size of that scan.  Runs shorter than the probe stay pure-Python
#: (a set-membership loop; numpy's per-call overhead dominates below a few
#: hundred elements — measured on the tree workload, whose hit runs average
#: ~114 references); the scan block bounds per-chunk work so a miss early
#: in a long run does not pay for scanning the whole tail.
_PROBE_REFS = 256
_SCAN_BLOCK = 4096

#: Hit runs at most this long replay LRU per-reference in Python; longer
#: runs switch to the last-occurrence dedup (each line's final position in
#: the LRU order depends only on its last hit in the run).
_SMALL_RUN = 512

_INF = float("inf")


def fused_supported(system: System) -> bool:
    """Can ``system`` run under the fused walk bit-identically?

    The fused walk transcribes the fault-free, untraced hot path.  Four
    features make state data-dependent in ways it deliberately does not
    re-implement, and any of them routes the whole run to the event
    engine instead:

    * a tracer (emission sites exist in every subsystem the walk inlines);
    * invariant audits (``config.invariants`` or ``REPRO_INVARIANTS=1``);
    * an active fault plan (injected crashes/losses branch everywhere);
    * the DASP baseline (its pull engine replaces the demand path).
    """
    return (system.tracer is None
            and system.invariants is None
            and system.dasp is None
            and not system.fault_injector.active)


def run_batch(trace: Trace, config: "SystemConfig",
              memory_params: MemoryParams | None = None,
              tracer: "Tracer | None" = None,
              miss_observer: Optional[Callable[[int, int, bool], None]] = None,
              ) -> SimResult:
    """Simulate ``trace`` under ``config`` with the batch engine.

    Drop-in equivalent of ``System(config).run(trace)`` — same result,
    bit-identical (the parity gate's contract).  ``miss_observer`` mirrors
    ``System.miss_observer`` (the Figure 5 queue-2 tap) and is supported
    on the fused path.
    """
    system = System(config, memory_params=memory_params, tracer=tracer)
    if miss_observer is not None:
        system.miss_observer = miss_observer
    if not fused_supported(system):
        return system.run(trace)
    return _run_fused(system, trace)


def _run_fused(system: System, trace: Trace) -> SimResult:
    """The fused walk.  Mirrors ``MainProcessor.step`` + ``System._access``.

    Aliasing discipline (the correctness core of this function):

    * *mutable containers* (set dicts, windows, FIFOs, the arrival heap,
      the miss bins) are aliased as locals — delegated calls mutate the
      same objects;
    * *scalar state shared with delegated code* (bus horizons, the MSHR
      min-completion, ``ulmt.free_at``, DRAM row counters) is always read
      and written through its owning object, never cached;
    * *scalar state only this walk touches* (the processor clock and
      counters, ``prefetches_issued``, the miss-distance clock) lives in
      locals and is written back before ``System.finalize_result`` runs
      the oracle's own end-of-run code.
    """
    proc = system.processor
    stats = proc.stats
    pending_loads = proc.params.pending_loads
    pending_stores = proc.params.pending_stores
    rob_refs = proc.params.rob_refs
    stream = proc.stream_prefetcher

    arrays = trace_arrays(trace, proc.l1.params.line_bytes)
    n = arrays.n
    l1l = arrays.l1_lines
    l1l_np = arrays.l1_lines_np
    w_list = arrays.writes
    w_np = arrays.writes_np
    deps = arrays.dependent
    comps = arrays.comp_cycles
    comp_cumsum = arrays.comp_cumsum

    # -- processor state -> locals (written back at the end)
    now = proc.now
    refs = stats.refs
    busy = stats.busy_cycles
    uptol2 = stats.uptol2_stall
    beyondl2 = stats.beyondl2_stall
    l1_hits = stats.l1_hits
    l1_misses = stats.l1_misses
    l1_prefetch_hits = stats.l1_prefetch_hits
    load_window = proc._load_window
    store_window = proc._store_window
    l1_inflight = proc._l1_inflight
    min_arrival = proc._min_arrival
    prev_completion, prev_level = proc._prev_load

    l1 = proc.l1
    l1_sets = l1._sets
    l1_set_mask = l1.num_sets - 1
    l1_assoc = l1.params.assoc

    # -- L2 / memory-system aliases
    l2 = system.l2
    l2stats = l2.stats
    l2_sets = l2.cache._sets
    l2_set_mask = l2.cache.num_sets - 1
    l2_assoc = l2.params.assoc
    l2_hit_cycles = l2.params.hit_cycles
    mshrs = l2.mshrs
    mshr_entries = mshrs._entries
    mshr_capacity = mshrs.capacity
    pending_is_write = l2._pending_is_write
    wb_fifo = l2.writeback_queue._fifo
    wb_depth = l2.writeback_queue.depth
    l2_accept_prefetch = l2.accept_prefetch
    l2_fill_demand_merged = l2.fill_demand_merged

    controller = system.controller
    bus = controller.bus
    busstats = bus.stats
    transfers = busstats.transfers
    dram = controller.dram
    banks = dram._banks
    demand_busy = dram._demand_busy
    low_busy = dram._low_busy
    p = controller.params
    bus_request_cycles = p.bus_request_cycles
    bus_transfer = p.bus_transfer_l2_line
    channel_xfer = p.channel_transfer_l2_line
    svc_hit = p.bank_service_row_hit
    svc_miss = p.bank_service_row_miss
    num_channels = p.num_channels
    banks_per_channel = p.banks_per_channel
    row_bytes = p.row_bytes
    push_fixed = p.push_fixed
    nb_push_delay = (p.nb_prefetch_request_delay
                     if controller.location is MemProcLocation.NORTH_BRIDGE
                     else 0)
    controller_writeback = controller.writeback

    memproc = system.memproc
    ulmt = memproc.ulmt if memproc is not None else None
    obs_fifo = ulmt.obs_queue._fifo if ulmt is not None else None

    prefetch_queue = system.prefetch_queue
    pq_fifo = prefetch_queue._fifo
    pq_depth = prefetch_queue.depth
    inflight_push = system._inflight
    arrivals = system._arrivals
    merged = system._merged
    miss_bins = system._miss_bins
    miss_observer = system.miss_observer

    heappush = heapq.heappush
    heappop = heapq.heappop

    # -- system scalars -> locals (written back at the end)
    prefetches_issued = system.prefetches_issued
    demand_misses = system.demand_misses_to_memory
    last_miss_time = system._last_miss_time

    # L1 residency mirror for the hit scans: membership only changes when
    # a fill lands (hits just move lines within their set), so the walk
    # maintains this set incrementally at the landing site instead of
    # re-snapshotting the cache.  The numpy view used by the vectorized
    # scan is rebuilt lazily, at most once per landing epoch.
    resident: set[int] = set(l1.resident_lines())
    resident_np: np.ndarray | None = None

    def enqueue_prefetches(issued: list) -> None:
        # System._enqueue_prefetches, fault-free path.
        for pf in issued:
            la = pf.line_addr
            if la in inflight_push:
                continue
            if len(pq_fifo) >= pq_depth:
                prefetch_queue.dropped_overflow += 1
            else:
                pq_fifo.append(PrefetchRequest(la, pf.issue_time))

    def issue_prefetches(t: int) -> None:
        # System._issue_prefetches with controller.push_prefetch,
        # Dram.access (low priority), and Bus.schedule inlined.
        nonlocal prefetches_issued
        while pq_fifo:
            head = pq_fifo.popleft()
            if head.issue_time > t:
                pq_fifo.appendleft(head)
                return
            la = head.line_addr
            if la in inflight_push:
                continue
            controller.prefetch_pushes += 1
            ready = head.issue_time + nb_push_delay
            byte = la * 64
            channel = la % num_channels
            row_id = byte // row_bytes
            bank = banks[channel][(row_id // num_channels) % banks_per_channel]
            row = row_id // num_channels // banks_per_channel
            start = ready if ready > bank.busy_until else bank.busy_until
            if bank.open_row == row:
                dram.row_hits += 1
                bank_done = start + svc_hit
            else:
                dram.row_misses += 1
                bank_done = start + svc_miss
            bank.busy_until = bank_done
            bank.open_row = row
            xfer_start = bank_done
            if demand_busy[channel] > xfer_start:
                xfer_start = demand_busy[channel]
            if low_busy[channel] > xfer_start:
                xfer_start = low_busy[channel]
            data_ready = xfer_start + channel_xfer
            low_busy[channel] = data_ready
            bstart = data_ready
            if bus._demand_horizon > bstart:
                bstart = bus._demand_horizon
            if bus._low_horizon > bstart:
                bstart = bus._low_horizon
            bus_done = bstart + bus_transfer
            bus._low_horizon = bus_done
            busstats.prefetch_cycles += bus_transfer
            transfers["prefetch"] = transfers.get("prefetch", 0) + 1
            arrival = bus_done + push_fixed
            prefetches_issued += 1
            inflight_push[la] = arrival
            heappush(arrivals, (arrival, la, False))

    def process_arrivals(t: int) -> None:
        # System._process_arrivals; the two L2 landing paths stay
        # delegated (drop rules + eviction bookkeeping live there).
        while arrivals and arrivals[0][0] <= t:
            arrival, line, _ = heappop(arrivals)
            if line in merged:
                merged.discard(line)
                l2_fill_demand_merged(line, arrival)
                continue
            if line in inflight_push:
                del inflight_push[line]
                l2_accept_prefetch(line, arrival)

    def l2_fill(line_addr: int, dirty: bool, prefetched: bool) -> int | None:
        # L2Cache._fill + Cache.fill + WritebackQueue.push, fused (and
        # without materialising an Eviction record).  Returns a line to
        # write back now, if the queue overflowed.
        cset = l2_sets[line_addr & l2_set_mask]
        existing = cset.pop(line_addr, None)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            cset[line_addr] = existing
            return None
        if len(cset) >= l2_assoc:
            victim_tag = next(iter(cset))
            victim = cset.pop(victim_tag)
            if victim.prefetched and not victim.referenced:
                l2stats.replaced_prefetches += 1
            if victim.dirty:
                wb_fifo.append(victim_tag)
                if len(wb_fifo) > wb_depth:
                    l2stats.writebacks += 1
                    cset[line_addr] = Line(line_addr, dirty=dirty,
                                           prefetched=prefetched,
                                           referenced=not prefetched)
                    return wb_fifo.popleft()
        cset[line_addr] = Line(line_addr, dirty=dirty, prefetched=prefetched,
                               referenced=not prefetched)
        return None

    def advance(t: int) -> None:
        # System._advance: four guarded pumps.  The drain guard equals
        # Ulmt.drain's own while-condition, so skipping the call when it
        # would do nothing is behaviour-preserving.
        if t >= mshrs._min_completion:
            # l2.retire + MshrFile.retire_completed, fused: free every
            # due entry (recomputing the min once), then fill each.
            done = [e for e in mshr_entries.values()
                    if e.completion_time <= t]
            for entry in done:
                del mshr_entries[entry.line_addr]
            m = _INF
            for e in mshr_entries.values():
                ct = e.completion_time
                if ct < m:
                    m = ct
            mshrs._min_completion = m
            for entry in done:
                la = entry.line_addr
                wb_line = l2_fill(la, pending_is_write.pop(la, False),
                                  entry.is_prefetch)
                if wb_line is not None:
                    controller_writeback(wb_line * 64, t)
        if ulmt is not None and obs_fifo and ulmt.free_at <= t:
            issued = ulmt.drain(t)
            if issued:
                enqueue_prefetches(issued)
        if pq_fifo:
            issue_prefetches(t)
        if arrivals:
            process_arrivals(t)

    def sys_access(l2_line: int, is_write: bool, t: int,
                   is_prefetch: bool) -> tuple[int, str]:
        # System._access + L2Cache.demand_lookup/register_demand_miss +
        # controller.demand_fetch + Dram.access + Bus.schedule, fused.
        # ``t`` is local time: the MSHR-full retry loop advances it
        # without ever touching the processor clock (as in the oracle).
        nonlocal last_miss_time, demand_misses
        advance(t)
        while True:
            # demand_lookup.  Its leading retire(t) is a proven no-op
            # here: advance(t) just retired everything due by t.
            l2stats.demand_accesses += 1
            cset = l2_sets[l2_line & l2_set_mask]
            line = cset.pop(l2_line, None)
            if line is not None:
                # HIT.  first-touch test reads the flags *before* the
                # demand access sets referenced.
                if line.prefetched and not line.referenced:
                    l2stats.prefetch_hits += 1
                l2stats.demand_hits += 1
                line.referenced = True
                if is_write:
                    line.dirty = True
                cset[l2_line] = line
                return t + l2_hit_cycles, LEVEL_L2
            entry = mshr_entries.get(l2_line)
            if entry is not None:
                # PENDING: merge into the outstanding transaction.
                if entry.is_prefetch:
                    l2stats.merged_with_prefetch += 1
                    if entry.completion_time > t:
                        l2stats.delayed_hits += 1
                    else:
                        l2stats.prefetch_hits += 1
                if is_write:
                    pending_is_write[l2_line] = True
                return entry.completion_time, LEVEL_MEM
            if len(mshr_entries) < mshr_capacity:
                break
            # MISS_MSHR_FULL: wait for the earliest free and retry.
            earliest = min(e.completion_time for e in mshr_entries.values())
            t1 = t + 1
            t = t1 if t1 > earliest else earliest
            advance(t)

        # A genuine L2 miss.  In-flight pushed prefetch covering it?
        arrival = inflight_push.get(l2_line)
        if arrival is not None:
            merged.add(l2_line)
            del inflight_push[l2_line]
            if arrival > t:
                l2stats.delayed_hits += 1
                return arrival, LEVEL_MEM
            l2stats.prefetch_hits += 1
            return t, LEVEL_MEM

        # Queue 2/3 cross-match (scan only when queue 3 is non-empty —
        # an empty scan has no observable effect).
        if pq_fifo:
            prefetch_queue.cancel_address(l2_line)

        # controller.demand_fetch: request phase on the bus ...
        controller.demand_fetches += 1
        byte = l2_line * 64
        at_bus = t + _REQ_FIXED
        if is_prefetch:
            bstart = at_bus
            if bus._demand_horizon > bstart:
                bstart = bus._demand_horizon
            if bus._low_horizon > bstart:
                bstart = bus._low_horizon
            at_controller = bstart + bus_request_cycles
            bus._low_horizon = at_controller
            busstats.prefetch_cycles += bus_request_cycles
            transfers["prefetch"] = transfers.get("prefetch", 0) + 1
        else:
            bstart = at_bus if at_bus > bus._demand_horizon \
                else bus._demand_horizon
            at_controller = bstart + bus_request_cycles
            bus._demand_horizon = at_controller
            busstats.demand_cycles += bus_request_cycles
            transfers["demand"] = transfers.get("demand", 0) + 1
        # ... DRAM bank + channel ...
        channel = l2_line % num_channels
        row_id = byte // row_bytes
        bank = banks[channel][(row_id // num_channels) % banks_per_channel]
        row = row_id // num_channels // banks_per_channel
        dstart = (at_controller if at_controller > bank.busy_until
                  else bank.busy_until)
        if bank.open_row == row:
            dram.row_hits += 1
            bank_done = dstart + svc_hit
        else:
            dram.row_misses += 1
            bank_done = dstart + svc_miss
        bank.busy_until = bank_done
        bank.open_row = row
        if is_prefetch:
            xfer_start = bank_done
            if demand_busy[channel] > xfer_start:
                xfer_start = demand_busy[channel]
            if low_busy[channel] > xfer_start:
                xfer_start = low_busy[channel]
            data_ready = xfer_start + channel_xfer
            low_busy[channel] = data_ready
            bstart = data_ready
            if bus._demand_horizon > bstart:
                bstart = bus._demand_horizon
            if bus._low_horizon > bstart:
                bstart = bus._low_horizon
            bus_done = bstart + bus_transfer
            bus._low_horizon = bus_done
            busstats.prefetch_cycles += bus_transfer
            transfers["prefetch"] += 1
        else:
            xfer_start = (bank_done if bank_done > demand_busy[channel]
                          else demand_busy[channel])
            data_ready = xfer_start + channel_xfer
            demand_busy[channel] = data_ready
            bstart = (data_ready if data_ready > bus._demand_horizon
                      else bus._demand_horizon)
            bus_done = bstart + bus_transfer
            bus._demand_horizon = bus_done
            busstats.demand_cycles += bus_transfer
            transfers["demand"] += 1
        completion = bus_done + _REPLY_FIXED

        # l2.register_demand_miss (allocation is known to succeed: the
        # retry loop above only exits with a free MSHR and no entry).
        l2stats.nonpref_misses += 1
        mshr_entries[l2_line] = MshrEntry(l2_line, False, t, completion)
        if completion < mshrs._min_completion:
            mshrs._min_completion = completion
        pending_is_write[l2_line] = is_write
        if wb_fifo and l2_line in wb_fifo:
            wb_fifo.remove(l2_line)

        if not is_prefetch:
            if last_miss_time is not None:
                miss_bins[distance_bin(t - last_miss_time)] += 1
            last_miss_time = t
        demand_misses += 1
        if miss_observer is not None:
            miss_observer(l2_line, t, is_prefetch)
        if ulmt is not None:
            issued = ulmt.observe_miss(l2_line, t,
                                       is_processor_prefetch=is_prefetch)
            if issued:
                enqueue_prefetches(issued)
        return completion, LEVEL_MEM

    def issue_pf_lines(lines: list[int]) -> None:
        # MainProcessor._issue_prefetch_lines (Conven4 stream prefetches).
        nonlocal min_arrival
        for pf_line in lines:
            if pf_line < 0 or pf_line in l1_sets[pf_line & l1_set_mask]:
                continue
            if pf_line in l1_inflight:
                continue
            completion, level = sys_access(pf_line // 2, False, now, True)
            l1_inflight[pf_line] = InflightFill(completion, level, True)
            if completion < min_arrival:
                min_arrival = completion

    # ================= main walk =================
    i = 0
    while i < n:
        # -- quiescence: no L1 fill in flight and (after dropping entries
        # that any retire at `now` would drop) no outstanding miss.  Then
        # L1 hits are pure: refs/hits/Busy/LRU and nothing else.
        if not l1_inflight:
            if load_window:
                load_window[:] = [e for e in load_window if e[0] > now]
            if store_window:
                store_window[:] = [e for e in store_window if e[0] > now]
            if not load_window and not store_window:
                j = i
                probe_end = i + _PROBE_REFS
                if probe_end > n:
                    probe_end = n
                while j < probe_end:
                    if l1l[j] in resident:
                        j += 1
                    else:
                        break
                if j == probe_end and j < n:
                    # Probe exhausted while still hitting: scan ahead in
                    # blocks against the residency mirror.
                    if resident_np is None:
                        resident_np = np.fromiter(resident, dtype=np.int64,
                                                  count=len(resident))
                    while j < n:
                        end = j + _SCAN_BLOCK
                        if end > n:
                            end = n
                        misses = np.nonzero(
                            ~np.isin(l1l_np[j:end], resident_np))[0]
                        if misses.size:
                            j += int(misses[0])
                            break
                        j = end
                if j > i:
                    # -- bulk-apply the hit run [i, j)
                    k = j - i
                    refs += k
                    l1_hits += k
                    delta = int(comp_cumsum[j] - comp_cumsum[i])
                    now += delta
                    busy += delta
                    has_load = False
                    if k <= _SMALL_RUN:
                        for idx in range(i, j):
                            la = l1l[idx]
                            cset = l1_sets[la & l1_set_mask]
                            ln_obj = cset.pop(la)
                            ln_obj.referenced = True
                            if w_list[idx]:
                                ln_obj.dirty = True
                            else:
                                has_load = True
                            cset[la] = ln_obj
                    else:
                        # A line's final LRU slot depends only on its
                        # *last* hit in the run: touch each line once, in
                        # last-occurrence order.
                        seg = l1l_np[i:j]
                        rev = seg[::-1]
                        uniq, first_in_rev = np.unique(rev,
                                                       return_index=True)
                        order = np.argsort(first_in_rev)[::-1]
                        for la in uniq[order].tolist():
                            cset = l1_sets[la & l1_set_mask]
                            ln_obj = cset.pop(la)
                            ln_obj.referenced = True
                            cset[la] = ln_obj
                        wseg = w_np[i:j]
                        if wseg.any():
                            for la in np.unique(seg[wseg]).tolist():
                                l1_sets[la & l1_set_mask][la].dirty = True
                        has_load = not bool(wseg.all())
                    if has_load:
                        # The oracle leaves prev_load = (hit-time, L1)
                        # after the run's last load; time only grows, so
                        # (now, L1) with completion <= now is equivalent
                        # (only `completion > now` is ever observable).
                        prev_completion = now
                        prev_level = LEVEL_L1
                    i = j
                    if i >= n:
                        break
                # fall through: ref i missed (or is in flight) — scalar.

        # ============ fused scalar step for ref i ============
        comp = comps[i]
        refs += 1
        now += comp
        busy += comp
        is_w = w_list[i]

        if deps[i]:
            # _wait_for_previous_load
            if prev_completion > now:
                if prev_level == LEVEL_MEM:
                    beyondl2 += prev_completion - now
                else:
                    uptol2 += prev_completion - now
                now = prev_completion
            if load_window:
                load_window[:] = [e for e in load_window if e[0] > now]
        if load_window:
            # _enforce_rob_limit
            load_window[:] = [e for e in load_window if e[0] > now]
            while load_window:
                oldest = min(e[2] for e in load_window)
                if refs - oldest < rob_refs:
                    break
                completion, level, _ = min(load_window)
                if completion > now:
                    if level == LEVEL_MEM:
                        beyondl2 += completion - now
                    else:
                        uptol2 += completion - now
                    now = completion
                load_window[:] = [e for e in load_window if e[0] > now]

        ln = l1l[i]
        # _land_arrived_fills (+ Cache.fill inlined; L1 victims are
        # dropped silently, exactly as the oracle ignores fill()'s
        # Eviction, and the residency mirror tracks both edges).
        if min_arrival <= now:
            arrived = [a for a, f in l1_inflight.items()
                       if f.arrival <= now]
            for a in arrived:
                del l1_inflight[a]
                cset = l1_sets[a & l1_set_mask]
                existing = cset.pop(a, None)
                if existing is not None:
                    cset[a] = existing
                else:
                    if len(cset) >= l1_assoc:
                        victim_tag = next(iter(cset))
                        del cset[victim_tag]
                        resident.discard(victim_tag)
                    cset[a] = Line(a, referenced=True)
                    resident.add(a)
            resident_np = None
            min_arrival = _INF
            for f in l1_inflight.values():
                if f.arrival < min_arrival:
                    min_arrival = f.arrival
        cset = l1_sets[ln & l1_set_mask]
        ln_obj = cset.pop(ln, None)
        if ln_obj is not None:
            # L1 hit
            l1_hits += 1
            ln_obj.referenced = True
            if is_w:
                ln_obj.dirty = True
            cset[ln] = ln_obj
            completion = now
            level = LEVEL_L1
        else:
            fl = l1_inflight.get(ln)
            if fl is not None:
                l1_prefetch_hits += 1
                if fl.is_prefetch and stream is not None:
                    issue_pf_lines(stream.detector.consumed(ln))
                completion = fl.arrival
                level = fl.level
            else:
                l1_misses += 1
                completion, level = sys_access(ln // 2, is_w, now, False)
                l1_inflight[ln] = InflightFill(completion, level)
                if completion < min_arrival:
                    min_arrival = completion
                if stream is not None:
                    issue_pf_lines(stream.on_l1_miss(ln))

        if is_w:
            # _track_store
            if completion > now and level != LEVEL_L1:
                store_window.append((completion, level, refs))
                store_window[:] = [e for e in store_window if e[0] > now]
                while len(store_window) > pending_stores:
                    c2, lv2, _ = min(store_window)
                    if c2 > now:
                        if lv2 == LEVEL_MEM:
                            beyondl2 += c2 - now
                        else:
                            uptol2 += c2 - now
                        now = c2
                    store_window[:] = [e for e in store_window
                                       if e[0] > now]
        else:
            # _track_load + prev_load update
            if completion > now and level != LEVEL_L1:
                load_window.append((completion, level, refs))
                load_window[:] = [e for e in load_window if e[0] > now]
                while len(load_window) > pending_loads:
                    c2, lv2, _ = min(load_window)
                    if c2 > now:
                        if lv2 == LEVEL_MEM:
                            beyondl2 += c2 - now
                        else:
                            uptol2 += c2 - now
                        now = c2
                    load_window[:] = [e for e in load_window if e[0] > now]
            prev_completion = completion
            prev_level = level
        i += 1

    # ================= end of trace =================
    stats.refs = refs
    stats.busy_cycles = busy
    stats.uptol2_stall = uptol2
    stats.beyondl2_stall = beyondl2
    stats.l1_hits = l1_hits
    stats.l1_misses = l1_misses
    stats.l1_prefetch_hits = l1_prefetch_hits
    proc.now = now
    proc._min_arrival = min_arrival
    proc._prev_load = (prev_completion, prev_level)
    system.prefetches_issued = prefetches_issued
    system.demand_misses_to_memory = demand_misses
    system._last_miss_time = last_miss_time

    proc._drain_windows()
    stats.finish_time = proc.now
    return system.finalize_result(trace.name, stats)
