"""``--profile`` support: where does the harness spend its time?

Wraps a callable in :mod:`cProfile` and aggregates the flat profile by
simulator subsystem (the package directly under ``repro/``), so the report
answers "is the time in the processor model, the memory system, or the
ULMT?" rather than listing hundreds of frames.  The top individual
functions are listed too, as the starting point for the next optimisation
pass.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable

#: Aggregation order for the per-subsystem table.
_SUBSYSTEMS = ("cpu", "memsys", "core", "sim", "workloads", "faults",
               "analysis", "experiments", "perf")


def _subsystem_of(filename: str) -> str:
    """Map a profiled frame's filename to a report bucket."""
    path = filename.replace("\\", "/")
    marker = "/repro/"
    pos = path.rfind(marker)
    if pos < 0:
        if path.startswith("repro/"):
            pos = -len(marker) + 1  # handle relative paths
            path = "/" + path
        else:
            return "stdlib/other"
    rest = path[pos + len(marker):]
    head = rest.split("/", 1)[0]
    if head.endswith(".py"):
        return "repro (top level)"
    if head in _SUBSYSTEMS or not head.startswith("_"):
        return f"repro.{head}"
    return "repro (top level)"


def profile_subsystems(fn: Callable[[], Any]) -> tuple[Any, pstats.Stats]:
    """Run ``fn`` under cProfile; returns ``(fn's result, raw stats)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, pstats.Stats(profiler)


def render_profile(stats: pstats.Stats, top: int = 12) -> str:
    """Human-readable report: per-subsystem totals + hottest functions.

    Times are cProfile ``tottime`` (self time), which sums to total
    wall-clock across all frames and attributes every second to exactly
    one bucket.
    """
    buckets: dict[str, float] = {}
    calls: dict[str, int] = {}
    rows = []
    for (filename, lineno, funcname), entry in stats.stats.items():  # type: ignore[attr-defined]
        cc, nc, tottime, cumtime, _callers = entry
        bucket = _subsystem_of(filename)
        buckets[bucket] = buckets.get(bucket, 0.0) + tottime
        calls[bucket] = calls.get(bucket, 0) + nc
        rows.append((tottime, nc, filename, lineno, funcname))

    total = sum(buckets.values()) or 1e-12
    lines = ["== profile: time by subsystem ==",
             f"{'subsystem':<22} {'self s':>9} {'share':>7} {'calls':>12}"]
    for bucket in sorted(buckets, key=lambda b: -buckets[b]):
        lines.append(f"{bucket:<22} {buckets[bucket]:>9.3f} "
                     f"{buckets[bucket] / total:>6.1%} {calls[bucket]:>12,}")
    lines.append(f"{'total':<22} {total:>9.3f} {'100.0%':>7}")

    lines.append("")
    lines.append(f"== profile: top {top} functions by self time ==")
    rows.sort(key=lambda r: -r[0])
    for tottime, nc, filename, lineno, funcname in rows[:top]:
        where = filename.replace("\\", "/")
        marker = "/repro/"
        pos = where.rfind(marker)
        if pos >= 0:
            where = "repro/" + where[pos + len(marker):]
        lines.append(f"{tottime:>9.3f}s {nc:>10,} calls  "
                     f"{where}:{lineno} {funcname}")
    return "\n".join(lines)
