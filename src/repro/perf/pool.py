"""Parallel fan-out over the evaluation matrix.

Every cell of the matrix — one ``(workload, config, scale)`` simulation, one
Figure 5 predictability row, one Table 2 sizing run — is an independent,
deterministic computation, so the fan-out is embarrassingly parallel: a
``ProcessPoolExecutor`` runs cells across cores and the parent collects the
results *in task order*, making the assembled output identical to a serial
run no matter how the workers interleave.

Determinism notes:

* each worker recomputes its own traces from the per-workload seeded RNGs
  (the simulator never consults global randomness — enforced by lint rule
  DET001), and the global RNG is additionally re-seeded per task from the
  task's content hash as a belt-and-braces guard;
* results cross the process boundary by pickling the actual stats objects;
  the persistent cache (written by the parent only) uses the exact
  ``to_dict``/``from_dict`` round trip, so serial, parallel, and warm-cache
  runs all print byte-identical figures.
"""

from __future__ import annotations

import random
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from pathlib import Path

from repro.analysis.prediction import PredictionResult, figure5_row
from repro.analysis.tablesize import TableSizing, size_application_table
from repro.obs.runner import (
    StreamedTraceRun,
    TraceRun,
    WindowedRun,
    run_traced,
    run_traced_streaming,
    run_windowed,
)
from repro.perf.cache import ResultCache, fingerprint, sim_cache_key
from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.driver import run_simulation
from repro.sim.serialize import canonical
from repro.sim.stats import SimResult

#: Task kinds the pool understands.
KIND_SIM = "sim"
KIND_FIG5 = "fig5"
KIND_TABLESIZE = "tablesize"
KIND_TRACE = "trace"
KIND_WINDOWS = "windows"
KIND_STREAM = "stream"
KIND_MC = "mc"
KIND_MCTRACE = "mctrace"

#: Kinds whose results go through the persistent cache.  ``stream`` tasks
#: are deliberately excluded: their observable product is a file on disk
#: (written atomically by the worker itself), so replaying one from a
#: cached digest would skip the write and "succeed" without producing the
#: trace.  They always execute.
CACHEABLE_KINDS = frozenset(
    {KIND_SIM, KIND_FIG5, KIND_TABLESIZE, KIND_TRACE, KIND_WINDOWS,
     KIND_MC, KIND_MCTRACE})

#: Kinds whose ``app`` field is a multicore bundle (``"tree+cg"``) and
#: whose ``config`` is always a full :class:`SystemConfig` with
#: ``num_cores`` set (see :func:`mc_task`).
MULTICORE_KINDS = frozenset({KIND_MC, KIND_MCTRACE})


@dataclass(frozen=True)
class MatrixTask:
    """One independent cell of the evaluation matrix."""

    kind: str
    app: str
    scale: float
    #: ``sim`` tasks: a preset name, ``"custom"``, or a full config.
    config: "str | SystemConfig | None" = None
    #: ``fig5`` tasks: (predictors tuple, max_level).
    params: tuple = field(default=())
    #: Workload trace seed (None = registry default).
    seed: Optional[int] = None

    def label(self) -> str:
        if self.kind in (KIND_SIM, KIND_TRACE, KIND_WINDOWS, KIND_STREAM,
                         KIND_MC, KIND_MCTRACE):
            name = (self.config.name if isinstance(self.config, SystemConfig)
                    else self.config)
            cell = f"{self.app}/{name}"
            return cell if self.kind == KIND_SIM else f"{self.kind}:{cell}"
        return f"{self.kind}:{self.app}"


def sim_task(app: str, config: "str | SystemConfig", scale: float,
             seed: Optional[int] = None) -> MatrixTask:
    return MatrixTask(kind=KIND_SIM, app=app, scale=scale, config=config,
                      seed=seed)


def trace_task(app: str, config: "str | SystemConfig", scale: float,
               seed: Optional[int] = None) -> MatrixTask:
    """A ``sim`` cell run under the observability tracer.

    A distinct kind (not a flag on ``sim``) so traced and untraced results
    never share a cache entry: ``fingerprint`` mixes the kind into the key.
    """
    return MatrixTask(kind=KIND_TRACE, app=app, scale=scale, config=config,
                      seed=seed)


def windows_task(app: str, config: "str | SystemConfig", scale: float,
                 seed: Optional[int] = None) -> MatrixTask:
    """A ``sim`` cell run with windowed coverage/accuracy sampling.

    Metrics-only tracing: no event stream is retained, so full-scale
    chaos sweeps can fan these out without O(stream) memory per worker.
    """
    return MatrixTask(kind=KIND_WINDOWS, app=app, scale=scale, config=config,
                      seed=seed)


def stream_task(app: str, config: "str | SystemConfig", scale: float,
                out_dir: "str | Path",
                buffer_events: int,
                seed: Optional[int] = None) -> MatrixTask:
    """A traced cell whose event stream goes straight to disk.

    The worker writes ``<out_dir>/<app>_<config>.jsonl`` atomically and
    returns only the :class:`~repro.obs.runner.StreamedTraceRun` digest
    (which pickles cheaply), so exporting a full-scale matrix holds
    O(buffer) events in memory per worker instead of O(stream).
    """
    return MatrixTask(kind=KIND_STREAM, app=app, scale=scale, config=config,
                      params=(str(out_dir), buffer_events), seed=seed)


def mc_task(bundle: str, config: SystemConfig, scale: float,
            seed: Optional[int] = None,
            trace: bool = False) -> MatrixTask:
    """One multicore bundle cell (``trace=True`` for the traced variant).

    ``bundle`` is a ``+``-joined app list (``"tree+cg"``); ``config``
    must be the full frozen :class:`SystemConfig` with ``num_cores``
    matching the bundle width — names alone cannot carry the core count,
    so unlike ``sim`` tasks there is no string-config form.
    """
    if not isinstance(config, SystemConfig):
        raise TypeError(f"mc tasks need a full SystemConfig (got "
                        f"{config!r}); build one with with_cores()")
    if config.num_cores != len(bundle.split("+")):
        raise ValueError(f"bundle {bundle!r} vs num_cores="
                         f"{config.num_cores}")
    return MatrixTask(kind=KIND_MCTRACE if trace else KIND_MC, app=bundle,
                      scale=scale, config=config, seed=seed)


def fig5_task(app: str, scale: float, predictors: tuple,
              max_level: int = 3, engine: str = "event") -> MatrixTask:
    """A Figure 5 predictability row.

    ``engine`` picks the simulation engine for the miss-stream collection
    pass; it rides in ``params[2]`` but stays *out* of the cache key (both
    engines produce the identical stream — the kernel-parity guarantee).
    The default keeps two-element params, so pre-engine task tuples (e.g.
    in a resilient-campaign journal) compare and hash identically.
    """
    params = ((tuple(predictors), max_level) if engine == "event"
              else (tuple(predictors), max_level, engine))
    return MatrixTask(kind=KIND_FIG5, app=app, scale=scale, params=params)


def tablesize_task(app: str, scale: float,
                   engine: str = "event") -> MatrixTask:
    """A Table 2 sizing run (``engine`` as in :func:`fig5_task`)."""
    params = () if engine == "event" else (engine,)
    return MatrixTask(kind=KIND_TABLESIZE, app=app, scale=scale,
                      params=params)


def with_engine(task: MatrixTask, engine: str) -> MatrixTask:
    """``task`` pinned to a simulation engine.

    Resolves string configs to their frozen form first (the engine lives on
    :class:`SystemConfig`), so a ``"custom"``/preset-named task comes back
    as an explicit-config task.  Cache keys are engine-blind, so the
    returned task still hits (and fills) the same cache entries.
    """
    from dataclasses import replace

    if task.kind == KIND_FIG5:
        predictors, max_level = task.params[0], task.params[1]
        return replace(task, params=(
            (predictors, max_level) if engine == "event"
            else (predictors, max_level, engine)))
    if task.kind == KIND_TABLESIZE:
        return replace(task, params=() if engine == "event" else (engine,))
    if task.kind in MULTICORE_KINDS:
        # Multicore tiles always run the event engine (the batch kernel
        # cannot interleave); the engine field is inert here and cache
        # keys are engine-blind, so the task passes through unchanged.
        return task
    return replace(task,
                   config=resolve_task_config(task).with_engine(engine))


def resolve_task_config(task: MatrixTask) -> SystemConfig:
    """The full frozen config a ``sim`` task runs under."""
    config = task.config
    if isinstance(config, SystemConfig):
        return config
    if config == "custom":
        return custom_config(task.app)
    return preset(str(config))


def task_cache_key(task: MatrixTask) -> dict[str, Any]:
    """The persistent-cache key material of one task."""
    if task.kind in (KIND_SIM, KIND_TRACE, KIND_WINDOWS, KIND_MC,
                     KIND_MCTRACE):
        # Multicore tasks keep num_cores/coordination in the key (the
        # config's defaults are only elided at num_cores == 1).
        return sim_cache_key(task.app, resolve_task_config(task),
                             task.scale, task.seed)
    if task.kind == KIND_STREAM:
        # Never cached (see CACHEABLE_KINDS), but still keyed: the worker
        # re-seeds its RNG from this material, and the buffer size/target
        # directory must not perturb that.
        return sim_cache_key(task.app, resolve_task_config(task),
                             task.scale, task.seed)
    if task.kind == KIND_FIG5:
        # params[2], when present, is the engine — excluded from the key
        # (see fig5_task): both engines produce the identical row.
        predictors, max_level = task.params[0], task.params[1]
        return {"app": task.app, "scale": task.scale, "seed": task.seed,
                "predictors": canonical(list(predictors)),
                "max_level": max_level}
    if task.kind == KIND_TABLESIZE:
        return {"app": task.app, "scale": task.scale, "seed": task.seed}
    raise ValueError(f"unknown task kind {task.kind!r}")


# -- payload codecs (disk round trip) ---------------------------------------------


def encode_payload(task: MatrixTask, result: Any) -> Any:
    if task.kind in (KIND_SIM, KIND_TRACE, KIND_WINDOWS, KIND_STREAM,
                     KIND_MC, KIND_MCTRACE):
        return result.to_dict()
    if task.kind == KIND_FIG5:
        # A list, not a dict: the cache file is written with sorted keys,
        # and the row's predictor order (= Figure 5's column order) must
        # survive the round trip.
        return [{"predictor": pred, "levels": list(pr.levels),
                 "misses": pr.misses} for pred, pr in result.items()]
    if task.kind == KIND_TABLESIZE:
        return {"app": result.app, "num_rows": result.num_rows,
                "misses": result.misses}
    raise ValueError(f"unknown task kind {task.kind!r}")


def decode_payload(task: MatrixTask, payload: Any) -> Any:
    """Inverse of :func:`encode_payload`.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed payloads;
    callers treat those as cache misses.
    """
    if task.kind == KIND_SIM:
        return SimResult.from_dict(payload)
    if task.kind == KIND_TRACE:
        return TraceRun.from_dict(payload)
    if task.kind == KIND_WINDOWS:
        return WindowedRun.from_dict(payload)
    if task.kind == KIND_STREAM:
        return StreamedTraceRun.from_dict(payload)
    if task.kind == KIND_MC:
        from repro.multicore.result import MulticoreResult
        return MulticoreResult.from_dict(payload)
    if task.kind == KIND_MCTRACE:
        from repro.multicore.result import MulticoreTraceRun
        return MulticoreTraceRun.from_dict(payload)
    if task.kind == KIND_FIG5:
        return {entry["predictor"]: PredictionResult(
                    predictor=entry["predictor"],
                    levels=tuple(entry["levels"]),
                    misses=entry["misses"])
                for entry in payload}
    if task.kind == KIND_TABLESIZE:
        return TableSizing(app=payload["app"], num_rows=payload["num_rows"],
                           misses=payload["misses"])
    raise ValueError(f"unknown task kind {task.kind!r}")


# -- scheduling ------------------------------------------------------------------

#: Relative trace length per application (refs at a fixed scale, measured
#: once; see tests/test_scheduler_order.py).  Unknown apps get the mean.
_APP_WEIGHT = {
    "cg": 1.49, "equake": 1.47, "ft": 2.21, "gap": 1.58, "mcf": 0.72,
    "mst": 1.10, "parser": 1.66, "sparse": 2.33, "tree": 2.99,
}
_APP_WEIGHT_DEFAULT = 1.7

#: Relative per-reference cost of a configuration: the ULMT stack and the
#: stream prefetcher both add work per miss (measured ratios on the
#: BENCH_core apps; exactness is irrelevant — this only orders launches).
_KIND_WEIGHT = {KIND_FIG5: 3.0, KIND_TABLESIZE: 1.2}


def task_cost_estimate(task: MatrixTask) -> float:
    """Static runtime estimate of one task, for longest-first scheduling.

    Purely a function of the task tuple (no I/O, no simulation): app trace
    weight x scale x kind/config weight.  Used to order *launches* only —
    results are still collected in task-index order, so scheduling can
    never change any output.
    """
    if task.kind in MULTICORE_KINDS:
        # A bundle costs the sum of its per-core trace walks.
        weight = sum(_APP_WEIGHT.get(app, _APP_WEIGHT_DEFAULT)
                     for app in task.app.split("+")) * task.scale
    else:
        weight = _APP_WEIGHT.get(task.app, _APP_WEIGHT_DEFAULT) * task.scale
    if task.kind in _KIND_WEIGHT:
        return weight * _KIND_WEIGHT[task.kind]
    try:
        config = resolve_task_config(task)
    except KeyError:
        return weight
    cfg_weight = 1.0
    if config.ulmt_algorithm is not None:
        cfg_weight += 0.6
    if config.conven is not None:
        cfg_weight += 0.3
    return weight * cfg_weight


def launch_order(tasks: list[MatrixTask], pending: list[int]) -> list[int]:
    """``pending`` reordered longest-first (ties stay in index order).

    Submitting the most expensive cells first minimises the end-of-run
    straggler tail: with N workers, the worst case of shortest-first is
    one giant task starting last and running alone while N-1 workers idle.
    """
    return sorted(pending,
                  key=lambda i: (-task_cost_estimate(tasks[i]), i))


# -- execution -------------------------------------------------------------------


def execute_task(task: MatrixTask) -> Any:
    """Run one task to completion (also the serial in-process path)."""
    if task.kind == KIND_SIM:
        return run_simulation(task.app, resolve_task_config(task),
                              scale=task.scale, seed=task.seed)
    if task.kind == KIND_TRACE:
        return run_traced(task.app, resolve_task_config(task),
                          scale=task.scale, seed=task.seed)
    if task.kind == KIND_WINDOWS:
        return run_windowed(task.app, resolve_task_config(task),
                            scale=task.scale, seed=task.seed)
    if task.kind == KIND_STREAM:
        out_dir, buffer_events = task.params
        config = resolve_task_config(task)
        path = Path(out_dir) / f"{task.app}_{config.name}.jsonl"
        return run_traced_streaming(task.app, config, scale=task.scale,
                                    seed=task.seed, out=path,
                                    buffer_events=buffer_events)
    if task.kind == KIND_MC:
        from repro.multicore.driver import run_multicore
        return run_multicore(task.app, resolve_task_config(task),
                             scale=task.scale, seed=task.seed)
    if task.kind == KIND_MCTRACE:
        from repro.multicore.driver import run_multicore_traced
        return run_multicore_traced(task.app, resolve_task_config(task),
                                    scale=task.scale, seed=task.seed)
    if task.kind == KIND_FIG5:
        predictors, max_level = task.params[0], task.params[1]
        engine = task.params[2] if len(task.params) > 2 else "event"
        return figure5_row(task.app, task.scale, predictors, max_level,
                           engine=engine)
    if task.kind == KIND_TABLESIZE:
        engine = task.params[0] if task.params else "event"
        return size_application_table(task.app, task.scale, engine=engine)
    raise ValueError(f"unknown task kind {task.kind!r}")


def _worker_execute(task: MatrixTask) -> Any:
    """Pool-worker entry point.

    Belt-and-braces determinism: nothing in the simulator may consult the
    global RNG (lint rule DET001), but if a future workload slips one in,
    re-seeding the worker per task keeps its schedule a pure function of
    the task rather than of worker scheduling order.  The parent process's
    RNG state is never touched.
    """
    # repro-lint: disable=DET001 -- deliberate: re-seeds the *worker's*
    # global RNG from the task's content hash so any stray global draw is
    # still a pure function of the task; the parent RNG is never touched
    random.seed(fingerprint(task.kind, task_cache_key(task)))
    return execute_task(task)


def _from_cache(task: MatrixTask, cache: Optional[ResultCache]) -> Any:
    if cache is None or task.kind not in CACHEABLE_KINDS:
        return None
    payload = cache.get(task.kind, task_cache_key(task))
    if payload is None:
        return None
    try:
        return decode_payload(task, payload)
    except (KeyError, TypeError, ValueError):
        # The envelope parsed but the payload didn't: without the
        # invalidate, the entry would be re-read and re-failed by every
        # later run instead of being recomputed once and rewritten.
        cache.invalidate(task.kind, task_cache_key(task))
        return None


def run_tasks(tasks: list[MatrixTask], jobs: int = 1,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[int, int, MatrixTask], None]] = None,
              ) -> list[Any]:
    """Run every task, returning results in task order.

    Cached results are loaded in the parent without touching the pool; the
    remainder fans out across ``jobs`` worker processes (serially in-process
    for ``jobs <= 1``).  A task that fails returns ``None`` in its slot — the
    caller's serial path recomputes (and re-raises) inside its own isolation.
    Only the parent writes the persistent cache, so workers never contend.
    """
    results: list[Any] = [None] * len(tasks)
    pending: list[int] = []
    done = 0
    for i, task in enumerate(tasks):
        hit = _from_cache(task, cache)
        if hit is not None:
            results[i] = hit
            done += 1
            if progress is not None:
                progress(done, len(tasks), task)
        else:
            pending.append(i)

    def _finish(i: int, value: Any) -> None:
        nonlocal done
        results[i] = value
        done += 1
        if (cache is not None and value is not None
                and tasks[i].kind in CACHEABLE_KINDS):
            cache.put(tasks[i].kind, task_cache_key(tasks[i]),
                      encode_payload(tasks[i], value))
        if progress is not None:
            progress(done, len(tasks), tasks[i])

    if jobs <= 1 or len(pending) <= 1:
        for i in pending:
            try:
                value = execute_task(tasks[i])
            except Exception as exc:  # recomputed (and surfaced) serially
                print(f"[pool] {tasks[i].label()} failed: "
                      f"{type(exc).__name__}: {exc}", file=sys.stderr)
                value = None
            _finish(i, value)
        return results

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        # Longest-first launch order (straggler avoidance); collection
        # below is keyed by task index, so output order is unchanged.
        futures = {pool.submit(_worker_execute, tasks[i]): i
                   for i in launch_order(tasks, pending)}
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in finished:
                i = futures[future]
                try:
                    value = future.result()
                except Exception as exc:
                    print(f"[pool] {tasks[i].label()} failed: "
                          f"{type(exc).__name__}: {exc}", file=sys.stderr)
                    value = None
                _finish(i, value)
    return results


def prewarm(tasks: list[MatrixTask], jobs: int = 1,
            cache: Optional[ResultCache] = None,
            verbose: bool = False) -> list[Any]:
    """Compute (or load) every task and return results in task order.

    Progress goes to *stderr* so stdout stays byte-comparable between
    serial and parallel runs.
    """
    progress = None
    if verbose:
        def progress(done: int, total: int, task: MatrixTask) -> None:
            print(f"[prewarm] {done}/{total} {task.label()}",
                  file=sys.stderr, flush=True)
    return run_tasks(tasks, jobs=jobs, cache=cache, progress=progress)
