"""Persistent on-disk result cache.

Every cache entry is one JSON file named by a SHA-256 content hash of its
*key*: a canonical rendering (see :func:`repro.sim.serialize.canonical`) of
everything that shapes the cached value —

* the entry kind (``"sim"``, ``"fig5"``, ``"tablesize"``, ...),
* the workload name and trace seed,
* the workload scale,
* the full frozen :class:`~repro.sim.config.SystemConfig` (for ``sim``
  entries) or the analysis parameters (for analysis entries), and
* :data:`CACHE_FORMAT_VERSION`.

Any config or parameter change therefore lands on a different file: there
is no in-place invalidation to get wrong, and stale entries are simply
never read again.  Bump :data:`CACHE_FORMAT_VERSION` whenever the
simulator's behaviour (not just the serialisation schema) changes in a way
that makes old results wrong — e.g. a timing-model fix.

Robustness rules:

* files are written atomically (temp file + ``os.replace``), so a killed
  run never leaves a half-written entry and concurrent pool workers cannot
  observe torn writes;
* a corrupted / unreadable / wrong-format file is treated as a miss, the
  offending file is removed best-effort, and the value is recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.sim.config import SystemConfig
from repro.sim.serialize import canonical

#: Bump when cached payloads become incompatible or simulator behaviour
#: changes in a way that invalidates previously computed results.
CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Directory name used when no explicit ``--cache-dir`` is given.
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache directory to use when none is configured explicitly."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(DEFAULT_CACHE_DIRNAME)


def atomic_write_text(path: Path | str, text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` with the cache's atomic discipline.

    Parent directories are created, the content lands in a same-directory
    temp file, and ``os.replace`` publishes it — readers (including
    concurrent pool workers writing sibling files) never observe a torn
    or partial file, and a killed run leaves the previous version intact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def fingerprint(kind: str, key: dict[str, Any]) -> str:
    """Stable content hash for a cache key.

    ``key`` must be a JSON-able dict (run it through
    :func:`~repro.sim.serialize.canonical` first for dataclasses); the kind
    and format version are folded in so that different entry kinds and
    incompatible cache generations can never collide.
    """
    material = {"kind": kind, "format": CACHE_FORMAT_VERSION, "key": key}
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sim_cache_key(app: str, config: SystemConfig, scale: float,
                  seed: Optional[int] = None) -> dict[str, Any]:
    """The cache key of one simulation cell.

    ``seed`` is the workload trace seed (None = the registry default); the
    simulator itself is deterministic given (trace, config), so these four
    values plus the format version identify a result completely.
    """
    return {"app": app, "seed": seed, "scale": scale,
            "config": canonical(config)}


class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    __slots__ = ("hits", "misses", "stores", "corrupt")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def describe(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s)"
                + (f", {self.corrupt} corrupt entr(ies) dropped"
                   if self.corrupt else ""))


class ResultCache:
    """A directory of content-addressed JSON result files."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.stats = CacheStats()

    # -- raw payload interface ---------------------------------------------------

    def _path(self, kind: str, digest: str) -> Path:
        return self.directory / f"{kind}-{digest}.json"

    def get(self, kind: str, key: dict[str, Any]) -> Optional[Any]:
        """Fetch the payload stored for ``key``, or None on (any) miss."""
        path = self._path(kind, fingerprint(kind, key))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if (entry.get("format") != CACHE_FORMAT_VERSION
                    or entry.get("kind") != kind):
                raise ValueError("cache entry format mismatch")
            payload = entry["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted or incompatible entry: drop it and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def put(self, kind: str, key: dict[str, Any], payload: Any) -> None:
        """Store ``payload`` for ``key`` atomically (last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(kind, fingerprint(kind, key))
        entry = {"format": CACHE_FORMAT_VERSION, "kind": kind,
                 "key": key, "payload": payload}
        blob = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- maintenance ----------------------------------------------------------------

    def clear(self) -> int:
        """Delete every cache entry; returns how many files were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
