"""Persistent on-disk result cache.

Every cache entry is one JSON file named by a SHA-256 content hash of its
*key*: a canonical rendering (see :func:`repro.sim.serialize.canonical`) of
everything that shapes the cached value —

* the entry kind (``"sim"``, ``"fig5"``, ``"tablesize"``, ...),
* the workload name and trace seed,
* the workload scale,
* the full frozen :class:`~repro.sim.config.SystemConfig` (for ``sim``
  entries) or the analysis parameters (for analysis entries), and
* :data:`CACHE_FORMAT_VERSION`.

Any config or parameter change therefore lands on a different file: there
is no in-place invalidation to get wrong, and stale entries are simply
never read again.  Bump :data:`CACHE_FORMAT_VERSION` whenever the
simulator's behaviour (not just the serialisation schema) changes in a way
that makes old results wrong — e.g. a timing-model fix.

Robustness rules:

* files are written atomically (temp file + ``os.replace``), so a killed
  run never leaves a half-written entry and concurrent pool workers cannot
  observe torn writes;
* a corrupted / unreadable / wrong-format file is treated as a miss, the
  offending file is removed best-effort, and the value is recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.sim.config import SystemConfig
from repro.sim.serialize import canonical

#: Bump when cached payloads become incompatible or simulator behaviour
#: changes in a way that invalidates previously computed results.
CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Directory name used when no explicit ``--cache-dir`` is given.
DEFAULT_CACHE_DIRNAME = ".repro-cache"

#: Subdirectory corrupt entries are moved into by ``repro cache verify``
#: (kept for forensics instead of deleted; emptied by ``cache gc``).
QUARANTINE_DIRNAME = "quarantine"


def default_cache_dir() -> Path:
    """The cache directory to use when none is configured explicitly."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(DEFAULT_CACHE_DIRNAME)


def atomic_write_text(path: Path | str, text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` with the cache's atomic discipline.

    Parent directories are created, the content lands in a same-directory
    temp file, and ``os.replace`` publishes it — readers (including
    concurrent pool workers writing sibling files) never observe a torn
    or partial file, and a killed run leaves the previous version intact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def fingerprint(kind: str, key: dict[str, Any]) -> str:
    """Stable content hash for a cache key.

    ``key`` must be a JSON-able dict (run it through
    :func:`~repro.sim.serialize.canonical` first for dataclasses); the kind
    and format version are folded in so that different entry kinds and
    incompatible cache generations can never collide.
    """
    material = {"kind": kind, "format": CACHE_FORMAT_VERSION, "key": key}
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sim_cache_key(app: str, config: SystemConfig, scale: float,
                  seed: Optional[int] = None) -> dict[str, Any]:
    """The cache key of one simulation cell.

    ``seed`` is the workload trace seed (None = the registry default); the
    simulator itself is deterministic given (trace, config), so these four
    values plus the format version identify a result completely.

    The ``engine`` field is deliberately excluded: both engines produce
    bit-identical results (the kernel-parity CI gate), so a result computed
    under either engine must hit the same cache entry — this is also what
    lets a batch-engine prewarm populate the cache for event-engine reads.
    """
    config_key = canonical(config)
    config_key.pop("engine", None)
    # Multicore fields are omitted at their defaults for the same reason
    # engine is always omitted: a single-core config must keep the exact
    # key bytes it had before the fields existed, or every committed
    # cache entry and journal identity would silently invalidate.  A
    # genuine multicore cell (num_cores > 1) keeps both fields — they
    # shape the result.
    if config_key.get("num_cores") == 1:
        config_key.pop("num_cores", None)
        config_key.pop("coordination", None)
    return {"app": app, "seed": seed, "scale": scale,
            "config": config_key}


class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance.

    ``corrupt`` counts entries that *looked* broken (unreadable,
    truncated, wrong version, undecodable payload); ``removed`` counts
    the subset whose file was actually unlinked — the deletes are
    best-effort (a concurrent reader may have removed the file first),
    and making the two visible separately is what lets ``repro cache
    stats`` report removals instead of swallowing them silently.
    """

    __slots__ = ("hits", "misses", "stores", "corrupt", "removed")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.removed = 0

    def describe(self) -> str:
        text = (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s)")
        if self.corrupt:
            text += (f", {self.corrupt} corrupt entr(ies) "
                     f"({self.removed} removed)")
        return text


class ResultCache:
    """A directory of content-addressed JSON result files."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.stats = CacheStats()

    # -- raw payload interface ---------------------------------------------------

    def _path(self, kind: str, digest: str) -> Path:
        return self.directory / f"{kind}-{digest}.json"

    def get(self, kind: str, key: dict[str, Any]) -> Optional[Any]:
        """Fetch the payload stored for ``key``, or None on (any) miss."""
        path = self._path(kind, fingerprint(kind, key))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if (entry.get("format") != CACHE_FORMAT_VERSION
                    or entry.get("kind") != kind):
                raise ValueError("cache entry format mismatch")
            payload = entry["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted or incompatible entry: drop it and recompute.
            # The unlink is best-effort (a racing reader may win); what
            # succeeded is counted so the removal is reportable.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            else:
                self.stats.removed += 1
            return None
        self.stats.hits += 1
        return payload

    def invalidate(self, kind: str, key: dict[str, Any]) -> bool:
        """Drop the entry for ``key`` because its *payload* proved bad.

        ``get`` only self-heals entries whose envelope is unreadable; a
        caller that finds the decoded payload undecodable (wrong shape
        for the task, stale inner format) must invalidate it here, or
        the entry survives forever — re-read, re-failed and re-counted
        as corrupt by every later run.  Returns True when the file was
        removed (best-effort, like ``get``'s unlink: a racing reader
        may win).
        """
        path = self._path(kind, fingerprint(kind, key))
        self.stats.corrupt += 1
        try:
            path.unlink()
        except OSError:
            return False
        self.stats.removed += 1
        return True

    def put(self, kind: str, key: dict[str, Any], payload: Any) -> None:
        """Store ``payload`` for ``key`` atomically (last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(kind, fingerprint(kind, key))
        entry = {"format": CACHE_FORMAT_VERSION, "kind": kind,
                 "key": key, "payload": payload}
        blob = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- maintenance ----------------------------------------------------------------

    def clear(self) -> int:
        """Delete every cache entry; returns how many files were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    # -- scrubbing (repro cache verify | gc | stats) ---------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIRNAME

    def entries(self) -> Iterator["CacheEntry"]:
        """Every entry file, cheapest-first metadata only (no reads).

        Quarantined files live in a subdirectory, so the top-level glob
        never sees them; deterministic (sorted) order so scrub reports
        are stable.
        """
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent removal
            kind = path.name.split("-", 1)[0] if "-" in path.name else "?"
            yield CacheEntry(path=path, kind=kind, size=stat.st_size,
                             mtime=stat.st_mtime)

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def check_entry(self, path: Path) -> Optional[str]:
        """None when the entry is intact, else why it is not.

        Checks everything short of payload *semantics* (which need the
        task context): JSON well-formedness, the format/kind/key/payload
        fields, and that the filename actually is the content hash of
        the recorded kind+key — a renamed or foreign file is corrupt
        even when its JSON parses.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError as exc:
            return f"unreadable ({exc.__class__.__name__})"
        except ValueError:
            return "not valid JSON (truncated or torn write)"
        if not isinstance(entry, dict):
            return "entry is not a JSON object"
        if entry.get("format") != CACHE_FORMAT_VERSION:
            return (f"format {entry.get('format')!r} != "
                    f"{CACHE_FORMAT_VERSION}")
        kind = entry.get("kind")
        key = entry.get("key")
        if not isinstance(kind, str) or not isinstance(key, dict):
            return "missing kind/key fields"
        if "payload" not in entry:
            return "missing payload"
        expected = self._path(kind, fingerprint(kind, key)).name
        if path.name != expected:
            return f"filename does not match content hash ({expected})"
        return None

    def verify(self, *, quarantine: bool = True) -> "ScrubReport":
        """Scan every entry; quarantine (or just report) the broken ones.

        Corrupt files are moved into ``quarantine/`` (atomic rename, so a
        concurrent reader either sees the intact path or a miss — never a
        half-removed file); with ``quarantine=False`` they are only
        reported.
        """
        report = ScrubReport()
        for entry in self.entries():
            report.scanned += 1
            reason = self.check_entry(entry.path)
            if reason is None:
                report.intact += 1
                continue
            report.corrupt.append((entry.path.name, reason))
            if not quarantine:
                continue
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(entry.path, self.quarantine_dir / entry.path.name)
                report.quarantined += 1
            except OSError:
                pass  # racing reader removed it first: equally gone
        return report

    def gc(self, *, max_age_s: Optional[float] = None,
           max_size_bytes: Optional[int] = None,
           now: Optional[float] = None) -> "ScrubReport":
        """Evict entries by age, then by total size (oldest first).

        ``max_age_s`` removes entries older than the horizon;
        ``max_size_bytes`` then evicts oldest-first until the remainder
        fits.  Quarantined files are always purged — they were kept only
        for inspection between scrubs.  ``now`` is injectable for tests.
        """
        report = ScrubReport()
        if now is None:
            now = time.time()
        survivors: list[CacheEntry] = []
        for entry in self.entries():
            report.scanned += 1
            if max_age_s is not None and now - entry.mtime > max_age_s:
                if self._evict(entry, report):
                    continue
            survivors.append(entry)
        if max_size_bytes is not None:
            total = sum(entry.size for entry in survivors)
            for entry in sorted(survivors, key=lambda e: (e.mtime,
                                                          e.path.name)):
                if total <= max_size_bytes:
                    break
                if self._evict(entry, report):
                    total -= entry.size
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.glob("*.json")):
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                report.evicted += 1
                report.evicted_bytes += size
        return report

    def _evict(self, entry: "CacheEntry", report: "ScrubReport") -> bool:
        try:
            entry.path.unlink()
        except OSError:
            return False
        report.evicted += 1
        report.evicted_bytes += entry.size
        return True


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one on-disk cache file (no payload read)."""

    path: Path
    kind: str
    size: int
    mtime: float


@dataclass
class ScrubReport:
    """What one ``verify``/``gc`` pass did."""

    scanned: int = 0
    intact: int = 0
    quarantined: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    #: (filename, reason) per corrupt entry found by ``verify``.
    corrupt: list[tuple[str, str]] = field(default_factory=list)
