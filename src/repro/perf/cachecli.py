"""``python -m repro cache`` — integrity scrubbing for ``.repro-cache/``.

Subcommands::

    repro cache stats   [--cache-dir DIR]      entry counts / bytes / ages
    repro cache verify  [--cache-dir DIR]      detect + quarantine corrupt
                        [--no-quarantine]      entries (report only)
    repro cache gc      [--cache-dir DIR]      evict by age and/or size
                        [--max-age-days N] [--max-size-mb N]

``verify`` checks every entry's JSON well-formedness, format version,
kind/key/payload fields, and that the filename equals the content hash of
the recorded key — a torn write, a stale-format entry, or a renamed file
all count as corrupt.  Corrupt entries move into ``quarantine/`` (atomic
rename) so a later ``gc`` can purge them; readers treat the vanished path
as an ordinary miss and recompute.  Exit status: ``verify`` returns 1
when corruption was found (0 after quarantining nothing), everything
else returns 0 on success.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.cache import ResultCache, default_cache_dir


def _build(args: argparse.Namespace) -> ResultCache:
    return ResultCache(args.cache_dir or default_cache_dir())


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{n} B" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024
    return f"{n} B"


def _cmd_stats(args: argparse.Namespace) -> int:
    cache = _build(args)
    entries = list(cache.entries())
    by_kind: dict[str, tuple[int, int]] = {}
    for entry in entries:
        count, size = by_kind.get(entry.kind, (0, 0))
        by_kind[entry.kind] = (count + 1, size + entry.size)
    print(f"cache {cache.directory}: {len(entries)} entr(ies), "
          f"{_fmt_bytes(sum(e.size for e in entries))}")
    for kind in sorted(by_kind):
        count, size = by_kind[kind]
        print(f"  {kind:12s} {count:6d} entr(ies)  {_fmt_bytes(size)}")
    quarantined = (sorted(cache.quarantine_dir.glob("*.json"))
                   if cache.quarantine_dir.is_dir() else [])
    if quarantined:
        print(f"  {'quarantined':12s} {len(quarantined):6d} entr(ies)  "
              f"{_fmt_bytes(sum(p.stat().st_size for p in quarantined))}")
    # Session counters: nonzero only when a command in this process also
    # exercised get/put, but printing them keeps the removal counter
    # (CacheStats.removed) from being invisible in scripts that reuse
    # one process for run + stats.
    print(f"  session: {cache.stats.describe()}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    cache = _build(args)
    report = cache.verify(quarantine=not args.no_quarantine)
    print(f"verified {report.scanned} entr(ies) in {cache.directory}: "
          f"{report.intact} intact, {len(report.corrupt)} corrupt, "
          f"{report.quarantined} quarantined")
    for name, reason in report.corrupt:
        print(f"  CORRUPT {name}: {reason}")
    return 1 if report.corrupt else 0


def _cmd_gc(args: argparse.Namespace) -> int:
    cache = _build(args)
    max_age_s = (args.max_age_days * 86400.0
                 if args.max_age_days is not None else None)
    max_size = (int(args.max_size_mb * 1024 * 1024)
                if args.max_size_mb is not None else None)
    if max_age_s is None and max_size is None and not args.all:
        print("cache gc: nothing to do "
              "(give --max-age-days and/or --max-size-mb, or --all)",
              file=sys.stderr)
        return 2
    if args.all:
        removed = cache.clear()
        print(f"cleared {removed} entr(ies) from {cache.directory}")
        return 0
    report = cache.gc(max_age_s=max_age_s, max_size_bytes=max_size)
    print(f"gc {cache.directory}: scanned {report.scanned}, evicted "
          f"{report.evicted} entr(ies) ({_fmt_bytes(report.evicted_bytes)})")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="subcommand", required=True)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None,
                       help="cache directory (default .repro-cache, or "
                            "$REPRO_CACHE_DIR)")

    stats_p = sub.add_parser("stats", help="entry counts, bytes, kinds")
    _common(stats_p)

    verify_p = sub.add_parser(
        "verify", help="detect and quarantine corrupt entries")
    _common(verify_p)
    verify_p.add_argument("--no-quarantine", action="store_true",
                          help="report corruption without moving files")

    gc_p = sub.add_parser("gc", help="evict entries by age and/or size")
    _common(gc_p)
    gc_p.add_argument("--max-age-days", type=float, default=None,
                      help="evict entries older than N days")
    gc_p.add_argument("--max-size-mb", type=float, default=None,
                      help="evict oldest entries until the cache fits N MiB")
    gc_p.add_argument("--all", action="store_true",
                      help="remove every entry")

    args = parser.parse_args(argv)
    handlers = {"stats": _cmd_stats, "verify": _cmd_verify, "gc": _cmd_gc}
    return handlers[args.subcommand](args)


if __name__ == "__main__":
    raise SystemExit(main())
