"""Crash-safe task execution: the resilient counterpart of ``run_tasks``.

:func:`repro.perf.pool.run_tasks` is the fast path: a
``ProcessPoolExecutor`` fan-out that assumes workers behave.  This module
is the hardened path a long campaign runs on.  Same tasks, same
deterministic task-order results, plus:

* **per-task wall-clock timeouts** — a cell that hangs is killed and
  counted, it cannot stall the campaign;
* **worker-crash detection** — a worker that dies without reporting
  (SIGKILL, ``os._exit``, a segfaulting C extension) is detected by its
  exit, not by a hung future;
* **bounded retries with deterministic backoff** — crashes/timeouts/
  errors are retried up to :class:`~repro.perf.retry.RetryPolicy`
  ``max_attempts`` times, the delay before each retry drawn from the
  task-keyed jitter stream of :func:`~repro.perf.retry.backoff_delay`;
* **poison-task quarantine** — a task failing every attempt becomes a
  typed :class:`~repro.perf.retry.TaskFailure` row and the campaign
  continues;
* **journaled checkpointing** — every start/retry/finish/failure is
  appended to a :class:`~repro.perf.journal.RunJournal`; a rerun against
  the same journal replays finished tasks from it (``--resume``);
* **graceful shutdown** — a ``stop_event`` (set by the campaign CLI's
  SIGINT/SIGTERM handler) stops launching work, drains in-flight tasks
  up to a deadline, salvages their results into the journal, and
  returns with ``interrupted=True``.

Every task attempt runs in its own ``multiprocessing.Process`` — dearer
than a pooled worker, but it is what makes kill-on-timeout and per-attempt
crash isolation possible at all, and campaign cells are seconds-to-minutes
of simulation for which the spawn cost is noise.  Workers re-seed exactly
like pool workers (``_worker_execute``), so results are bit-identical to
the fast path, to a serial run, and to a warm-cache replay.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Optional

import threading

from repro.faults.process import maybe_inject
from repro.perf.cache import ResultCache, fingerprint
from repro.perf.journal import (
    RunJournal,
    finished_payloads,
)
from repro.perf.pool import (
    CACHEABLE_KINDS,
    MatrixTask,
    _worker_execute,
    decode_payload,
    encode_payload,
    launch_order,
    task_cache_key,
)
from repro.perf.retry import (
    FAILURE_CRASH,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    RetryPolicy,
    TaskFailure,
    backoff_delay,
)

#: How long (s) a terminated worker gets to die before SIGKILL.
_TERMINATE_GRACE_S = 1.0

#: Poll interval (s) of the supervision loop when nothing is readable.
_POLL_S = 0.05

#: Counter names a run always reports (zero-valued ones included, so the
#: exported metrics have a stable shape).
COUNTER_NAMES = (
    "tasks", "completed", "cache_hits", "resumed", "retries",
    "crashes", "timeouts", "errors", "quarantined", "salvaged",
    "abandoned_inflight",
)


def fault_label(task: MatrixTask) -> str:
    """The label process-fault directives match against.

    ``MatrixTask.label()`` plus ``#<seed>`` when the task carries a
    workload seed: campaign repetitions share a cell label but never a
    seed, so one repetition can be crash-targeted without its siblings.
    """
    label = task.label()
    return label if task.seed is None else f"{label}#{task.seed}"


def task_digest(task: MatrixTask) -> str:
    """The task's content digest — cache filename and journal identity."""
    return fingerprint(task.kind, task_cache_key(task))


def _resilient_worker(task: MatrixTask, attempt: int,
                      conn: Connection) -> None:
    """Child-process entry point: run one attempt, report on the pipe.

    Protocol: exactly one ``("ok", result)`` or ``("err", message)``
    message, then EOF.  A worker that dies before sending (injected or
    real crash) is detected by the parent as EOF + abnormal exit.
    """
    try:
        maybe_inject(fault_label(task), attempt)
        value = _worker_execute(task)
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 - everything must be reported
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class ResilientRun:
    """What :func:`run_tasks_resilient` produced.

    ``results`` is in task order (``None`` for quarantined or abandoned
    tasks); ``attempts[i]`` is how many times task ``i`` ran in *this*
    invocation (0 = served from cache or journal); ``failures`` holds the
    quarantined tasks; ``interrupted`` is True when a graceful shutdown
    cut the run short.
    """

    results: list[Any]
    attempts: list[int]
    failures: list[TaskFailure] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    interrupted: bool = False

    def failure_for(self, index: int) -> Optional[TaskFailure]:
        for failure in self.failures:
            if failure.index == index:
                return failure
        return None


class _Running:
    """Supervision state of one in-flight attempt."""

    __slots__ = ("index", "attempt", "process", "conn", "deadline",
                 "started")

    def __init__(self, index: int, attempt: int, process: Any,
                 conn: Connection, deadline: Optional[float]) -> None:
        self.index = index
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.started = time.monotonic()


def _stop_process(entry: _Running) -> None:
    """Terminate (then kill) one worker and reap it."""
    process = entry.process
    if process.is_alive():
        process.terminate()
        process.join(_TERMINATE_GRACE_S)
        if process.is_alive():
            process.kill()
            process.join()
    else:
        process.join()
    try:
        entry.conn.close()
    except Exception:
        pass


def run_tasks_resilient(
        tasks: list[MatrixTask],
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        stop_event: Optional["threading.Event"] = None,
        drain_s: float = 30.0,
        progress: Optional[Callable[[int, int, MatrixTask], None]] = None,
) -> ResilientRun:
    """Run every task with retries, timeouts, quarantine, and journaling.

    Results come back in task order regardless of worker interleaving and
    are bit-identical to :func:`repro.perf.pool.run_tasks` for tasks that
    succeed.  See the module docstring for the failure semantics.

    ``journal`` doubles as the resume source: tasks whose digest already
    has a ``finish`` record are served from the journal without running
    (and without touching the cache), which is what makes a resumed
    campaign byte-identical to an uninterrupted one.
    """
    policy = policy or RetryPolicy()
    jobs = max(1, jobs)
    counters = {name: 0 for name in COUNTER_NAMES}
    counters["tasks"] = len(tasks)
    results: list[Any] = [None] * len(tasks)
    attempts_used = [0] * len(tasks)
    failures: list[TaskFailure] = []
    done_flags = [False] * len(tasks)
    done = 0

    journaled = finished_payloads(journal.load()) if journal is not None \
        else {}
    digests = [task_digest(task) for task in tasks]

    def _mark_done(index: int, value: Any) -> None:
        nonlocal done
        results[index] = value
        done_flags[index] = True
        done += 1
        if progress is not None:
            progress(done, len(tasks), tasks[index])

    # -- resume / cache pre-pass (no processes involved) ----------------------
    pending: list[int] = []
    for i, task in enumerate(tasks):
        record = journaled.get(digests[i])
        if record is not None:
            try:
                value = decode_payload(task, record["payload"])
            except (KeyError, TypeError, ValueError):
                value = None  # incompatible journal payload: recompute
            if value is not None:
                counters["resumed"] += 1
                # Report the journaled attempt count, not 0: a resumed
                # campaign's run table must be byte-identical to the
                # uninterrupted run that would have produced it.
                attempts_used[i] = int(record.get("attempts", 0))
                _mark_done(i, value)
                continue
        if cache is not None and task.kind in CACHEABLE_KINDS:
            payload = cache.get(task.kind, task_cache_key(task))
            if payload is not None:
                try:
                    value = decode_payload(task, payload)
                except (KeyError, TypeError, ValueError):
                    # Same discipline as pool._from_cache: a decodable
                    # envelope with an undecodable payload must be
                    # dropped, or every resume re-reads and re-fails it.
                    cache.invalidate(task.kind, task_cache_key(task))
                    value = None
                if value is not None:
                    counters["cache_hits"] += 1
                    if journal is not None:
                        journal.task_finish(digests[i], task.label(),
                                            attempts=0, payload=payload)
                    _mark_done(i, value)
                    continue
        pending.append(i)

    # -- supervised execution --------------------------------------------------
    ctx = multiprocessing.get_context()
    #: task index -> earliest monotonic time it may (re)launch.
    ready_at = {i: 0.0 for i in pending}
    attempt_no = {i: 0 for i in pending}
    running: list[_Running] = []
    interrupted = False
    drain_deadline: Optional[float] = None

    def _stopping() -> bool:
        return stop_event is not None and stop_event.is_set()

    def _launch(index: int) -> None:
        attempt_no[index] += 1
        attempt = attempt_no[index]
        attempts_used[index] = attempt
        task = tasks[index]
        if journal is not None:
            journal.task_start(digests[index], task.label(), attempt)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_resilient_worker,
                              args=(task, attempt, child_conn), daemon=True)
        process.start()
        child_conn.close()
        deadline = (time.monotonic() + policy.timeout_s
                    if policy.timeout_s > 0 else None)
        running.append(_Running(index, attempt, process, parent_conn,
                                deadline))

    def _complete_ok(entry: _Running, value: Any) -> None:
        task = tasks[entry.index]
        counters["completed"] += 1
        if (cache is not None and task.kind in CACHEABLE_KINDS):
            cache.put(task.kind, task_cache_key(task),
                      encode_payload(task, value))
        if journal is not None:
            journal.task_finish(digests[entry.index], task.label(),
                                attempts=entry.attempt,
                                payload=encode_payload(task, value))
        if _stopping():
            counters["salvaged"] += 1
        _mark_done(entry.index, value)

    def _complete_failed(entry: _Running, kind: str, message: str) -> None:
        index = entry.index
        task = tasks[index]
        counter = {FAILURE_CRASH: "crashes", FAILURE_TIMEOUT: "timeouts",
                   FAILURE_ERROR: "errors"}[kind]
        counters[counter] += 1
        if entry.attempt < policy.max_attempts and not _stopping():
            delay = backoff_delay(policy, digests[index], entry.attempt)
            counters["retries"] += 1
            if journal is not None:
                journal.task_retry(digests[index], task.label(),
                                   entry.attempt, kind, message, delay)
            print(f"[resilient] {task.label()} attempt {entry.attempt} "
                  f"{kind} ({message}); retrying in {delay:.2f}s",
                  file=sys.stderr)
            ready_at[index] = time.monotonic() + delay
            return
        counters["quarantined"] += 1
        failure = TaskFailure(index=index, label=task.label(), kind=kind,
                              attempts=entry.attempt, message=message)
        failures.append(failure)
        if journal is not None:
            journal.task_failure(digests[index], task.label(),
                                 entry.attempt, kind, message)
        print(f"[resilient] QUARANTINED {failure.describe()}",
              file=sys.stderr)
        _mark_done(index, None)

    def _reap(entry: _Running) -> None:
        """Handle one worker whose pipe became readable (or who died)."""
        running.remove(entry)
        message: Optional[tuple[str, Any]] = None
        try:
            if entry.conn.poll(0):
                message = entry.conn.recv()
        except (EOFError, OSError):
            message = None
        entry.process.join()
        try:
            entry.conn.close()
        except Exception:
            pass
        if message is not None:
            status, payload = message
            if status == "ok":
                _complete_ok(entry, payload)
            else:
                _complete_failed(entry, FAILURE_ERROR, str(payload))
            return
        code = entry.process.exitcode
        _complete_failed(entry, FAILURE_CRASH,
                         f"worker died with exit code {code}")

    try:
        while done < len(tasks):
            now = time.monotonic()

            # Graceful shutdown: freeze launches, set the drain deadline.
            if _stopping() and drain_deadline is None:
                drain_deadline = now + max(0.0, drain_s)
                interrupted = True
                print(f"[resilient] shutdown requested: draining "
                      f"{len(running)} in-flight task(s) "
                      f"(deadline {drain_s:g}s)", file=sys.stderr)

            if drain_deadline is None:
                launchable = [i for i in ready_at
                              if not done_flags[i]
                              and all(r.index != i for r in running)
                              and ready_at[i] <= now]
                # Longest-first launches (straggler avoidance), same
                # policy as run_tasks; journaling and result collection
                # stay index-keyed, so outputs are unchanged.
                for index in launch_order(tasks, launchable):
                    if len(running) >= jobs:
                        break
                    _launch(index)
            else:
                if not running:
                    break  # drained everything that was in flight
                if now >= drain_deadline:
                    for entry in list(running):
                        counters["abandoned_inflight"] += 1
                        print(f"[resilient] abandoning in-flight "
                              f"{tasks[entry.index].label()} "
                              f"(drain deadline)", file=sys.stderr)
                        _stop_process(entry)
                        running.remove(entry)
                    break

            # Per-task wall-clock timeouts.
            for entry in list(running):
                if entry.deadline is not None and now >= entry.deadline:
                    elapsed = now - entry.started
                    _stop_process(entry)
                    running.remove(entry)
                    _complete_failed(
                        entry, FAILURE_TIMEOUT,
                        f"exceeded {policy.timeout_s:g}s wall-clock "
                        f"budget (ran {elapsed:.1f}s)")

            if not running:
                if all(done_flags[i] or ready_at[i] > now
                       for i in ready_at):
                    future = [ready_at[i] for i in ready_at
                              if not done_flags[i]]
                    if not future:
                        break
                    time.sleep(min(_POLL_S * 4,
                                   max(0.0, min(future) - now)))
                continue

            readable = connection_wait([r.conn for r in running],
                                       timeout=_POLL_S)
            reaped = False
            for entry in list(running):
                if entry.conn in readable:
                    _reap(entry)
                    reaped = True
            if not reaped:
                # No pipe activity: also detect workers that died without
                # their pipe becoming readable yet.
                for entry in list(running):
                    if not entry.process.is_alive():
                        _reap(entry)
    finally:
        for entry in list(running):
            _stop_process(entry)

    if journal is not None and interrupted:
        journal.shutdown("signal", completed=done, total=len(tasks))

    return ResilientRun(results=results, attempts=attempts_used,
                        failures=failures, counters=counters,
                        interrupted=interrupted)
