"""Retry, backoff, and wall-clock-budget primitives for task execution.

The paper's ULMT is a robustness story *inside* the simulator: prefetching
must degrade gracefully and never corrupt correctness.  This module states
the same property for the execution layer around it — a campaign of
thousands of matrix cells must survive crashed workers, hung cells, and
poison tasks without losing the rest of the run.

Three primitives, all deterministic and side-effect free:

* :class:`RetryPolicy` — how many attempts a task gets, its per-attempt
  wall-clock budget, and the exponential-backoff envelope;
* :func:`backoff_delay` / :func:`backoff_schedule` — the delay before a
  given retry, with jitter drawn from a :class:`random.Random` seeded from
  the *task's content digest* (the same key the persistent cache uses).
  The schedule is therefore a pure function of (policy, task): replaying a
  campaign replays the exact same delays, and — like the per-kind fault
  streams of :class:`repro.faults.FaultInjector` — the jitter stream of
  one task can never perturb any other task's, the simulator's, or the
  fault injector's RNG;
* :func:`time_budget` — a portable wall-clock limit on a code block.
  ``SIGALRM`` is used where available (Unix main thread, preempts C-level
  loops too); elsewhere a timer thread interrupts the main thread, so
  non-SIGALRM platforms no longer silently run unbounded.

:class:`TaskFailure` is the typed row a task that exhausted its attempts
turns into: campaigns record it and continue instead of raising.
"""

from __future__ import annotations

import random
import signal
import threading
import _thread
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

#: Failure classification carried by :class:`TaskFailure`.
FAILURE_TIMEOUT = "timeout"     # exceeded RetryPolicy.timeout_s, killed
FAILURE_CRASH = "crash"         # worker died without reporting (SIGKILL, ...)
FAILURE_ERROR = "error"         # worker raised an exception
FAILURE_KINDS = (FAILURE_TIMEOUT, FAILURE_CRASH, FAILURE_ERROR)


@dataclass(frozen=True)
class RetryPolicy:
    """How a resilient runner treats one task's failures.

    ``max_attempts`` counts *total* tries (1 = never retry); a task still
    failing after the last attempt is quarantined as a
    :class:`TaskFailure`.  ``timeout_s`` is the per-attempt wall-clock
    budget (0 disables).  Backoff before attempt ``n+1`` is
    ``min(backoff_cap_s, backoff_base_s * 2**(n-1))`` stretched by up to
    ``jitter`` (a fraction) of deterministic, task-keyed jitter.
    """

    max_attempts: int = 3
    timeout_s: float = 0.0
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s < 0 or self.backoff_base_s < 0 \
                or self.backoff_cap_s < 0 or self.jitter < 0:
            raise ValueError("retry-policy durations must be >= 0")


def backoff_delay(policy: RetryPolicy, task_digest: str,
                  attempt: int) -> float:
    """Seconds to wait after failed attempt ``attempt`` (1-based).

    Deterministic per (policy, task digest, attempt): the jitter comes
    from a dedicated ``random.Random(f"{task_digest}:retry:{attempt}")``
    stream, so it is independent of execution order, of every other
    task's schedule, and of the sim/fault RNG streams (the same
    stream-separation rule ``FaultInjector`` uses per fault kind).  The
    process-global RNG is never touched.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    base = min(policy.backoff_cap_s,
               policy.backoff_base_s * (2 ** (attempt - 1)))
    rng = random.Random(f"{task_digest}:retry:{attempt}")
    return base * (1.0 + policy.jitter * rng.random())


def backoff_schedule(policy: RetryPolicy,
                     task_digest: str) -> tuple[float, ...]:
    """Every delay the policy would apply: one per possible retry."""
    return tuple(backoff_delay(policy, task_digest, attempt)
                 for attempt in range(1, policy.max_attempts))


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget (a row, not an exception).

    ``index`` is the task's slot in the submitted list (its result slot
    holds ``None``); ``kind`` is one of :data:`FAILURE_KINDS`; ``attempts``
    is how many times it ran; ``message`` carries the last error text
    (``"exit code N"`` for crashes, the exception repr for errors).
    """

    index: int
    label: str
    kind: str
    attempts: int
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "label": self.label, "kind": self.kind,
                "attempts": self.attempts, "message": self.message}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskFailure":
        kind = data["kind"]
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        return cls(index=int(data["index"]), label=str(data["label"]),
                   kind=kind, attempts=int(data["attempts"]),
                   message=str(data["message"]))

    def describe(self) -> str:
        return (f"{self.label}: {self.kind} after {self.attempts} "
                f"attempt(s) — {self.message}")


class TimeBudgetExceeded(RuntimeError):
    """A :func:`time_budget` block ran past its wall-clock limit."""


@contextmanager
def time_budget(seconds: float, *,
                use_sigalrm: bool = True) -> Iterator[None]:
    """Bound a block's wall-clock time, portably.

    On Unix main threads ``SIGALRM`` preempts the block exactly as the
    previous runall-only implementation did.  Everywhere else (Windows,
    non-main threads, ``use_sigalrm=False``) a timer thread calls
    ``_thread.interrupt_main()`` at the deadline; the resulting
    ``KeyboardInterrupt`` is converted to :class:`TimeBudgetExceeded`,
    so the budget is enforced on every platform instead of silently
    running unbounded.  A genuine Ctrl-C (timer not fired) propagates
    unchanged.  ``seconds <= 0`` disables the budget.
    """
    if seconds <= 0:
        yield
        return

    sigalrm_usable = (use_sigalrm and hasattr(signal, "SIGALRM")
                      and threading.current_thread()
                      is threading.main_thread())
    if sigalrm_usable:
        def _on_alarm(signum: int, frame: Any) -> None:
            raise TimeBudgetExceeded(
                f"exceeded the {seconds:g}s wall-clock budget")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
        return

    fired = threading.Event()

    def _interrupt() -> None:
        fired.set()
        _thread.interrupt_main()

    timer = threading.Timer(seconds, _interrupt)
    timer.daemon = True
    timer.start()
    try:
        yield
    except KeyboardInterrupt:
        if fired.is_set():
            raise TimeBudgetExceeded(
                f"exceeded the {seconds:g}s wall-clock budget") from None
        raise
    finally:
        timer.cancel()
