"""Append-only JSON-lines run journal: the checkpoint behind ``--resume``.

A campaign writes one journal record per lifecycle event — a header
describing the run, then ``start`` / ``retry`` / ``finish`` / ``failure``
per task, and finally ``shutdown`` — each as a single ``\\n``-terminated
JSON line flushed and fsynced before the runner moves on.  The format is
chosen for *crash shape*, not elegance:

* appends are the only mutation, so a SIGKILL at any instant leaves a
  valid journal plus at most one torn final line;
* :func:`RunJournal.load` tolerates exactly that torn tail (an
  undecodable **last** line is dropped; an undecodable line in the middle
  raises :class:`JournalError`, because that means real corruption, not
  an interrupted append);
* a ``finish`` record embeds the task's encoded payload (the same
  ``to_dict`` encoding the persistent cache stores), so resume does not
  depend on the cache surviving — the journal alone replays every
  finished task byte-identically.

The journal is *not* the results artifact — ``run_table.csv`` is — and it
deliberately carries no wall-clock timestamps, so a resumed run's journal
replay produces byte-identical downstream artifacts to an uninterrupted
run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

#: Bump on incompatible journal layout changes; resume refuses a
#: mismatched journal rather than guessing.
JOURNAL_FORMAT_VERSION = 1

#: Record kinds (the ``event`` field).
EVENT_HEADER = "header"
EVENT_START = "start"
EVENT_RETRY = "retry"
EVENT_FINISH = "finish"
EVENT_FAILURE = "failure"
EVENT_SHUTDOWN = "shutdown"


class JournalError(ValueError):
    """The journal is corrupt or incompatible (not merely truncated)."""


def _record_line(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


class RunJournal:
    """One append-only journal file.

    ``append`` opens the file in append mode, writes a single line, and
    fsyncs — slow-path durability is the point; the journal records task
    boundaries (seconds to hours apart), never per-event data.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)

    # -- writing -----------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record."""
        if "event" not in record:
            raise ValueError("journal records need an 'event' field")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = _record_line(record)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def write_header(self, meta: Mapping[str, Any]) -> None:
        """Append the header record (first line of a fresh journal)."""
        record = {"event": EVENT_HEADER,
                  "format": JOURNAL_FORMAT_VERSION}
        record.update(meta)
        self.append(record)

    def task_start(self, digest: str, label: str, attempt: int) -> None:
        self.append({"event": EVENT_START, "task": digest,
                     "label": label, "attempt": attempt})

    def task_retry(self, digest: str, label: str, attempt: int,
                   kind: str, message: str, delay_s: float) -> None:
        self.append({"event": EVENT_RETRY, "task": digest, "label": label,
                     "attempt": attempt, "kind": kind, "message": message,
                     "delay_s": delay_s})

    def task_finish(self, digest: str, label: str, attempts: int,
                    payload: Any) -> None:
        self.append({"event": EVENT_FINISH, "task": digest, "label": label,
                     "attempts": attempts, "payload": payload})

    def task_failure(self, digest: str, label: str, attempts: int,
                     kind: str, message: str) -> None:
        self.append({"event": EVENT_FAILURE, "task": digest, "label": label,
                     "attempts": attempts, "kind": kind, "message": message})

    def shutdown(self, reason: str, completed: int, total: int) -> None:
        self.append({"event": EVENT_SHUTDOWN, "reason": reason,
                     "completed": completed, "total": total})

    # -- reading -----------------------------------------------------------------

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> list[dict[str, Any]]:
        """Every intact record, tolerating a torn final line.

        Raises :class:`JournalError` when a *non*-final line is
        undecodable or the header is missing/incompatible.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return []
        records: list[dict[str, Any]] = []
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a kill mid-append: expected
                raise JournalError(
                    f"{self.path}: undecodable journal line {i + 1} "
                    f"(not the final line — the file is corrupt)") from None
            if not isinstance(record, dict) or "event" not in record:
                raise JournalError(
                    f"{self.path}: line {i + 1} is not a journal record")
            records.append(record)
        if records and records[0].get("event") == EVENT_HEADER:
            if records[0].get("format") != JOURNAL_FORMAT_VERSION:
                raise JournalError(
                    f"{self.path}: journal format "
                    f"{records[0].get('format')!r} "
                    f"!= {JOURNAL_FORMAT_VERSION}")
        return records

    def header(self) -> Optional[dict[str, Any]]:
        """The header record, or None when the journal has none.

        A header is optional for a bare :func:`run_tasks_resilient`
        journal; the campaign layer writes one and refuses to resume a
        journal whose header does not match its spec.
        """
        records = self.load()
        if records and records[0].get("event") == EVENT_HEADER:
            return records[0]
        return None


def finished_payloads(
        records: Iterable[Mapping[str, Any]]) -> dict[str, dict[str, Any]]:
    """task digest -> its ``finish`` record (last one wins).

    The values are the full records (``payload``, ``attempts``, ``label``),
    so a resuming runner can both skip the task and reproduce its
    result row exactly.
    """
    finished: dict[str, dict[str, Any]] = {}
    for record in records:
        if record.get("event") == EVENT_FINISH:
            finished[str(record["task"])] = dict(record)
    return finished


def recorded_failures(
        records: Iterable[Mapping[str, Any]]) -> dict[str, dict[str, Any]]:
    """task digest -> its ``failure`` record (last one wins).

    A quarantined task is *terminal* for the run that recorded it, but a
    resumed run re-attempts it from scratch — a crash that was load- or
    machine-induced may well succeed on retry, and a genuinely poison
    task will simply be re-quarantined with the same record shape.
    Resume therefore treats these as informational, not as skips.
    """
    failures: dict[str, dict[str, Any]] = {}
    for record in records:
        if record.get("event") == EVENT_FAILURE:
            failures[str(record["task"])] = dict(record)
    return failures
