"""Performance infrastructure: parallel fan-out, persistent result cache,
and the profiling hook.

The evaluation matrix (9 applications x ~9 configurations) is
embarrassingly parallel — every (workload, config, scale) cell is an
independent, deterministic simulation — and its results are immutable once
computed.  This package exploits both properties:

* :mod:`repro.perf.cache` — a persistent on-disk result cache keyed by a
  stable content hash of everything that shapes a result (workload, seed,
  scale, the full frozen config, and a format version);
* :mod:`repro.perf.pool` — a ``ProcessPoolExecutor`` fan-out layer that
  schedules matrix cells across cores with deterministic, serial-order
  result collection;
* :mod:`repro.perf.profile` — the ``--profile`` hook reporting where the
  harness itself spends wall-clock time, aggregated by simulator subsystem.

See ``docs/PERFORMANCE.md`` for the architecture and invalidation rules.
"""

from repro.perf.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    default_cache_dir,
    fingerprint,
    sim_cache_key,
)
from repro.perf.pool import (
    MatrixTask,
    fig5_task,
    prewarm,
    run_tasks,
    sim_task,
    tablesize_task,
)
from repro.perf.profile import profile_subsystems, render_profile

__all__ = [
    "CACHE_FORMAT_VERSION",
    "MatrixTask",
    "ResultCache",
    "default_cache_dir",
    "fig5_task",
    "fingerprint",
    "prewarm",
    "profile_subsystems",
    "render_profile",
    "run_tasks",
    "sim_cache_key",
    "sim_task",
    "tablesize_task",
]
