"""Trace-diff engine: explain how two event streams differ.

Two traced cells of the same ``(workload, config, seed)`` must be
byte-identical (the PR-4 determinism contract); when two cells *differ* —
two configs, two seeds, a before/after of a model change — this module
says *where* and *why*, instead of leaving the caller with "the SHA-256s
don't match":

* **first divergence** — the first line index at which the two streams
  stop being byte-identical, with both records printed;
* **alignment** — events are matched as a multiset keyed on
  ``(cycle, kind, addr)``; unmatched leftovers are re-matched on
  ``(kind, addr)`` alone and classified **retimed** (same event, moved
  in time), and whatever still remains is **missing** (only in A) or
  **extra** (only in B);
* **per-kind deltas** — a count table per event kind, always including
  the four L2 drop rules of Section 2.1 (a prefetcher comparison that
  cannot attribute drops per rule is not answering the paper's
  question), with retimed counts broken out per kind.

Pure stream computation: works on live ``TraceRun`` events and on
exported ``.jsonl`` files alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.obs.events import L2_DROP_RULES

#: The event key two aligned streams are matched on.
Key = tuple[int, str, Optional[int]]


@dataclass(frozen=True)
class KindDelta:
    """Per-kind alignment outcome."""

    count_a: int = 0
    count_b: int = 0
    retimed: int = 0

    @property
    def delta(self) -> int:
        return self.count_b - self.count_a


@dataclass
class DiffReport:
    """Everything :func:`diff_streams` learned about streams A and B."""

    total_a: int
    total_b: int
    matched: int
    retimed: int
    missing: int          # only in A (B lost them)
    extra: int            # only in B (A never had them)
    per_kind: dict[str, KindDelta] = field(default_factory=dict)
    #: (0-based line index, record A or None, record B or None); None
    #: means the shorter stream already ended.
    first_divergence: Optional[tuple[int, Optional[str], Optional[str]]] = None

    @property
    def divergences(self) -> int:
        """Events not matched exactly by (cycle, kind, addr)."""
        return self.retimed + self.missing + self.extra

    @property
    def identical(self) -> bool:
        return self.divergences == 0 and self.first_divergence is None


def _key(record: Mapping[str, object]) -> Key:
    addr = record.get("addr")
    return (int(record["cycle"]), str(record["kind"]),  # type: ignore[arg-type]
            int(addr) if isinstance(addr, int) else None)


def _count(counter: dict, key: object, n: int = 1) -> None:
    counter[key] = counter.get(key, 0) + n


def diff_streams(events_a: Iterable[Mapping[str, object]],
                 events_b: Iterable[Mapping[str, object]],
                 ) -> DiffReport:
    """Align two decoded event streams and classify every difference."""
    from repro.sim.serialize import json_line

    a = list(events_a)
    b = list(events_b)

    # First divergence: lockstep over the canonical line rendering, which
    # is exactly what the byte-identity (SHA-256) contract compares.
    first_divergence = None
    for i in range(max(len(a), len(b))):
        line_a = json_line(a[i]) if i < len(a) else None
        line_b = json_line(b[i]) if i < len(b) else None
        if line_a != line_b:
            first_divergence = (i, line_a, line_b)
            break

    # Exact alignment on (cycle, kind, addr) as a multiset.
    keys_a: dict[Key, int] = {}
    keys_b: dict[Key, int] = {}
    for record in a:
        _count(keys_a, _key(record))
    for record in b:
        _count(keys_b, _key(record))
    matched = 0
    left_a: dict[tuple[str, Optional[int]], int] = {}
    left_b: dict[tuple[str, Optional[int]], int] = {}
    for key, n in keys_a.items():
        m = keys_b.get(key, 0)
        matched += min(n, m)
        if n > m:
            _count(left_a, key[1:], n - m)
    for key, n in keys_b.items():
        m = keys_a.get(key, 0)
        if n > m:
            _count(left_b, key[1:], n - m)

    # Second pass: leftovers matching on (kind, addr) were just retimed.
    retimed_by_kind: dict[str, int] = {}
    missing_by_kind: dict[str, int] = {}
    extra_by_kind: dict[str, int] = {}
    for pair, n in left_a.items():
        kind = pair[0]
        m = left_b.get(pair, 0)
        if min(n, m):
            _count(retimed_by_kind, kind, min(n, m))
        if n > m:
            _count(missing_by_kind, kind, n - m)
    for pair, n in left_b.items():
        kind = pair[0]
        m = left_a.get(pair, 0)
        if n > m:
            _count(extra_by_kind, kind, n - m)

    counts_a: dict[str, int] = {}
    counts_b: dict[str, int] = {}
    for record in a:
        _count(counts_a, str(record["kind"]))
    for record in b:
        _count(counts_b, str(record["kind"]))
    kinds = set(counts_a) | set(counts_b)
    kinds.update(f"l2.push.{rule}" for rule in L2_DROP_RULES)
    per_kind = {
        kind: KindDelta(count_a=counts_a.get(kind, 0),
                        count_b=counts_b.get(kind, 0),
                        retimed=retimed_by_kind.get(kind, 0))
        for kind in sorted(kinds)}

    return DiffReport(
        total_a=len(a), total_b=len(b), matched=matched,
        retimed=sum(retimed_by_kind.values()),
        missing=sum(missing_by_kind.values()),
        extra=sum(extra_by_kind.values()),
        per_kind=per_kind,
        first_divergence=first_divergence,
    )


def report_lines(report: DiffReport, label_a: str = "A",
                 label_b: str = "B") -> list[str]:
    """Deterministic text rendering of a :class:`DiffReport`."""
    out = [f"tracediff: A = {label_a} ({report.total_a:,} events)  "
           f"B = {label_b} ({report.total_b:,} events)"]
    if report.identical:
        out.append(f"verdict: IDENTICAL — 0 divergences over "
                   f"{report.matched:,} aligned events")
        return out
    out.append(f"verdict: DIVERGENT — {report.divergences:,} divergent "
               f"event(s): {report.retimed:,} retimed, "
               f"{report.missing:,} only in A, {report.extra:,} only in B")
    if report.first_divergence is not None:
        index, line_a, line_b = report.first_divergence
        out.append(f"first divergence at line {index + 1:,}:")
        out.append(f"  A: {line_a if line_a is not None else '<end of stream>'}")
        out.append(f"  B: {line_b if line_b is not None else '<end of stream>'}")
    out.append("per-kind deltas (B - A; the four L2 drop rules always "
               "listed):")
    out.append(f"  {'kind':26s} {'A':>10s} {'B':>10s} {'delta':>10s} "
               f"{'retimed':>8s}")
    for kind, delta in report.per_kind.items():
        if (delta.count_a == 0 and delta.count_b == 0
                and not kind.startswith("l2.push.")):
            continue
        out.append(f"  {kind:26s} {delta.count_a:>10,} {delta.count_b:>10,} "
                   f"{delta.delta:>+10,} {delta.retimed:>8,}")
    return out
