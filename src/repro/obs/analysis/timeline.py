"""Timeline and flamegraph rendering of a folded event stream.

Two renderings of the same :class:`~repro.obs.analysis.lanes.LaneActivity`:

* :func:`render_timeline` — a fixed-width ASCII (optionally ANSI-colored)
  chart, one row per Figure-3 lane, density glyphs per time column.  The
  glyph ramp is normalised per lane, so each lane shows its own temporal
  shape (a lane's busiest column always renders ``@``).
* :func:`collapsed_stacks` — Brendan-Gregg collapsed-stack lines
  (``frame;frame;frame count``), the input format of ``flamegraph.pl``,
  speedscope, and friends.  The stack of an event is its kind split on
  ``.`` under a root frame (the cell name), e.g.
  ``tree/repl;l2;push;redundant 1042``.  Weights are event counts by
  default; ``weight="cycles"`` uses the attached duration field
  (``response`` for prefetching steps, ``occupancy`` for learning steps)
  where one exists, which turns the flamegraph into Figure-2 time
  attribution rather than event frequency.

Both renderings are pure functions of the stream — byte-deterministic
for a deterministic cell, which is what lets tests pin them.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.analysis.lanes import LANES, LaneActivity

#: Density ramp: index ~ lane-normalised event count (space = idle).
GLYPHS = " .:-=+*#%@"

#: ANSI foreground colors cycled across lanes (``ansi=True`` only).
_ANSI_COLORS = (36, 33, 35, 31, 32, 34, 36, 33, 32, 31)
_ANSI_RESET = "\x1b[0m"


def _lane_row(counts: list[int], peak: int) -> str:
    if peak <= 0:
        return " " * len(counts)
    top = len(GLYPHS) - 1
    # Ceil-scale so any non-zero bucket is visible (never rounds to idle).
    return "".join(GLYPHS[-(-count * top // peak)] if count else " "
                   for count in counts)


def render_timeline(activity: LaneActivity, title: str = "trace",
                    lanes: Iterable[str] | None = None,
                    ansi: bool = False) -> list[str]:
    """Render folded lane activity as chart lines (no trailing newline).

    ``lanes`` optionally restricts (and orders) the rendered lane names;
    by default every schema lane is drawn, idle or not, so two runs of
    different configs line up row for row.
    """
    wanted = list(lanes) if lanes is not None else [l.name for l in LANES]
    labels = {lane.name: lane.label for lane in LANES}
    unknown = [name for name in wanted
               if name not in activity.columns and name not in labels]
    if unknown:
        known = ", ".join(lane.name for lane in LANES)
        raise ValueError(f"unknown lane(s) {', '.join(unknown)}; "
                         f"known lanes: {known}")
    out = [f"timeline — {title}: {activity.total_events:,} events, "
           f"cycles {activity.first_cycle:,}..{activity.last_cycle:,} "
           f"({activity.cycles_per_column:,} cycles/column)"]
    name_width = max(len(name) for name in wanted)
    for index, name in enumerate(wanted):
        counts = activity.columns.get(name, [0] * activity.width)
        row = _lane_row(counts, max(counts, default=0))
        if ansi:
            color = _ANSI_COLORS[index % len(_ANSI_COLORS)]
            row = f"\x1b[{color}m{row}{_ANSI_RESET}"
        total = sum(counts)
        label = labels.get(name, name)
        out.append(f"{name:<{name_width}} |{row}| {total:>10,}  {label}")
    ruler = _ruler(activity, name_width)
    out.append(ruler)
    return out


def _ruler(activity: LaneActivity, name_width: int) -> str:
    """Cycle ruler under the chart: first / middle / last column starts."""
    width = activity.width
    per = activity.cycles_per_column
    left = f"{activity.first_cycle:,}"
    mid = f"{activity.first_cycle + (width // 2) * per:,}"
    right = f"{activity.last_cycle:,}"
    line = [" "] * width
    line[:len(left)] = left
    mid_at = max(0, width // 2 - len(mid) // 2)
    line[mid_at:mid_at + len(mid)] = mid
    line[max(0, width - len(right)):] = right[:width]
    return f"{'':<{name_width}} |{''.join(line[:width])}|"


#: Event info fields that carry a duration, in lookup order
#: (``weight="cycles"``): Figure-2 response/occupancy times first.
_DURATION_FIELDS = ("response", "occupancy", "lost")


def collapsed_stacks(events: Iterable[Mapping[str, object]],
                     root: str = "trace",
                     weight: str = "events") -> list[str]:
    """Fold full event records into collapsed-stack lines.

    ``events`` are decoded JSON-lines records (``kind`` plus info
    fields).  Returns ``root;seg;seg <weight>`` lines sorted by stack
    name — deterministic, and exactly what flamegraph tooling ingests.
    """
    if weight not in ("events", "cycles"):
        raise ValueError(f"weight must be 'events' or 'cycles', not {weight!r}")
    totals: dict[str, int] = {}
    for record in events:
        stack = root + ";" + str(record["kind"]).replace(".", ";")
        n = 1
        if weight == "cycles":
            for field in _DURATION_FIELDS:
                value = record.get(field)
                if isinstance(value, int):
                    n = max(1, value)
                    break
        totals[stack] = totals.get(stack, 0) + n
    return [f"{stack} {totals[stack]}" for stack in sorted(totals)]
