"""Trace-analysis tier: consumers of the Figure-3 event streams.

:mod:`repro.obs` (PR 4) made the pipeline emit byte-deterministic
JSON-lines event streams; this subpackage is the tier that *reads* them:

* :mod:`repro.obs.analysis.lanes` — the lane model: every event kind
  mapped onto one Figure-3 lane (queues 1-6, the Filter, the ULMT's
  prefetch-vs-learning steps, L2 fills/drops) plus the per-cycle folding
  that buckets a stream into fixed-width lane activity.
* :mod:`repro.obs.analysis.timeline` — ASCII/ANSI timeline rendering of
  the folded lanes and Brendan-Gregg collapsed-stack output consumable
  by standard flamegraph tooling (``flamegraph.pl``, speedscope, ...).
* :mod:`repro.obs.analysis.diff` — the trace-diff engine: align two
  streams by ``(cycle, kind, addr)``, classify divergences (extra /
  missing / retimed events), and report per-kind delta tables plus the
  first point of divergence.
* :mod:`repro.obs.analysis.cli` — ``python -m repro timeline`` and
  ``python -m repro tracediff``.

Everything here is a pure function of the event stream: no simulation
state is consulted, so the tools run on exported ``.jsonl`` files and on
the committed golden digests alike.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.analysis.diff import DiffReport, diff_streams, report_lines
from repro.obs.analysis.lanes import (
    LANES,
    LaneActivity,
    fold_stream,
    lane_of,
    load_event_records,
    load_event_stream,
)
from repro.obs.analysis.timeline import collapsed_stacks, render_timeline

__all__ = [
    "DiffReport",
    "diff_streams",
    "report_lines",
    "LANES",
    "LaneActivity",
    "fold_stream",
    "lane_of",
    "load_event_records",
    "load_event_stream",
    "collapsed_stacks",
    "render_timeline",
]
