"""The lane model: Figure-3 stages as horizontal timeline lanes.

A *lane* is one stage of the paper's Figure-3 pipeline; every event kind
of :mod:`repro.obs.events` maps onto exactly one lane (checked by
``tests/test_trace_analysis.py``).  The lanes follow the figure left to
right: queue 1 (demand issue), queue 2 (observation), the ULMT's
prefetching and learning steps (Figure 2), the Filter module, queue 3
(prefetch requests), the push path (queues 4-6: requests in transit,
bus, DRAM), and the L2's fill-vs-drop disposition of arrived pushes.

:func:`fold_stream` buckets a stream's cycle span into a fixed number of
columns and counts each lane's events per column — the per-cycle lane
activity the timeline renderer draws.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.obs.events import EVENT_KINDS, L2_DROP_RULES


@dataclass(frozen=True)
class Lane:
    """One Figure-3 stage and the event kinds that happen in it."""

    name: str
    label: str
    kinds: tuple[str, ...]


#: The lanes in Figure-3 order (left to right through the pipeline).
LANES: tuple[Lane, ...] = (
    Lane("q1", "queue 1: demand/prefetch issue", ("q1.issue",)),
    Lane("q2", "queue 2: observation",
         ("q2.enqueue", "q2.dequeue", "q2.drop_overflow", "q2.crossmatch")),
    Lane("ulmt.prefetch", "ULMT: prefetching step", ("ulmt.prefetch_step",)),
    Lane("ulmt.learning", "ULMT: learning step",
         ("ulmt.learning_step", "ulmt.learning_shed", "ulmt.warm_restart")),
    Lane("filter", "Filter module", ("filter.accept", "filter.reject")),
    Lane("q3", "queue 3: prefetch requests",
         ("q3.enqueue", "q3.drop_overflow", "q3.cancel_demand")),
    Lane("push", "queues 4-6: push in transit",
         ("push.issue", "push.arrive", "push.merge_demand",
          "push.merge_fill")),
    Lane("mem", "memory controller", ("mem.push", "mem.writeback")),
    Lane("l2.fill", "L2: push filled/stole",
         ("l2.push.filled", "l2.push.steal")),
    Lane("l2.drop", "L2: push dropped (rules 1-4)",
         tuple(f"l2.push.{rule}" for rule in L2_DROP_RULES)),
)

#: kind -> lane name (total over the schema: every kind has a lane).
KIND_TO_LANE: dict[str, str] = {
    kind: lane.name for lane in LANES for kind in lane.kinds}

assert set(KIND_TO_LANE) == EVENT_KINDS, "lane model must cover the schema"


def lane_of(kind: str) -> str:
    """The lane an event kind belongs to (``'?'`` for unknown kinds, so
    the tools degrade gracefully on streams from a newer schema)."""
    return KIND_TO_LANE.get(kind, "?")


def load_event_records(path: str | Path) -> list[dict]:
    """Read full event records from an exported trace file.

    Accepts both forms the repo produces:

    * a ``.jsonl`` event stream (``repro trace --events`` / ``--out-dir``
      / ``--trace-dir``), one JSON record per line;
    * a committed golden digest (``tests/golden/trace_*.json``), a single
      JSON object whose ``head`` field holds the stream's first lines —
      enough to smoke-test the renderers without the multi-megabyte
      stream.

    Raises ``ValueError`` on anything else.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    # A JSON-lines stream's first line is a complete event record; a
    # pretty-printed golden digest's first line is just "{".
    try:
        first = json.loads(lines[0])
        is_jsonl = isinstance(first, dict) and "kind" in first
    except json.JSONDecodeError:
        is_jsonl = False
    if is_jsonl:
        return list(_parse_lines(lines))
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: neither JSON-lines nor JSON: {exc}")
    if isinstance(payload, dict) and isinstance(payload.get("head"), list):
        return list(_parse_lines(payload["head"]))
    raise ValueError(f"{path}: not an event stream or golden digest")


def load_event_stream(path: str | Path) -> list[tuple[str, int]]:
    """``(kind, cycle)`` pairs of :func:`load_event_records` (timeline
    folding needs nothing else, and the pairs are far lighter)."""
    return [(str(r["kind"]), int(r["cycle"])) for r in load_event_records(path)]


def _parse_lines(lines: Iterable[str]) -> Iterator[dict]:
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind, cycle = record["kind"], record["cycle"]
            if not isinstance(kind, str) or not isinstance(cycle, int):
                raise TypeError("kind/cycle have wrong types")
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(f"line {lineno}: bad event record: {exc}")
        yield record


@dataclass
class LaneActivity:
    """A stream folded into per-lane, per-column event counts."""

    #: lane name -> events per column (len == ``width`` for every lane).
    columns: dict[str, list[int]]
    first_cycle: int
    last_cycle: int
    width: int
    total_events: int

    @property
    def cycles_per_column(self) -> int:
        span = self.last_cycle - self.first_cycle + 1
        return max(1, -(-span // self.width))  # ceil division

    def lane_total(self, name: str) -> int:
        return sum(self.columns.get(name, ()))


def fold_stream(events: Iterable[tuple[str, int]],
                width: int = 64) -> LaneActivity:
    """Bucket ``(kind, cycle)`` pairs into ``width`` timeline columns.

    The cycle span is split into equal-size buckets; each event lands in
    the bucket of its cycle on its kind's lane.  Unknown kinds land on a
    ``'?'`` lane rather than being dropped, so the totals always add up.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    pairs = list(events)
    if not pairs:
        return LaneActivity(columns={lane.name: [0] * width for lane in LANES},
                            first_cycle=0, last_cycle=0, width=width,
                            total_events=0)
    first = min(cycle for _, cycle in pairs)
    last = max(cycle for _, cycle in pairs)
    span = last - first + 1
    per_column = max(1, -(-span // width))  # ceil division
    columns: dict[str, list[int]] = {lane.name: [0] * width for lane in LANES}
    for kind, cycle in pairs:
        lane = lane_of(kind)
        if lane not in columns:
            columns[lane] = [0] * width
        column = min((cycle - first) // per_column, width - 1)
        columns[lane][column] += 1
    return LaneActivity(columns=columns, first_cycle=first, last_cycle=last,
                        width=width, total_events=len(pairs))
