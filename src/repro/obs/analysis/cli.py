"""``python -m repro timeline`` / ``python -m repro tracediff``.

Timeline::

    python -m repro timeline traces/tree_repl.jsonl
    python -m repro timeline traces/tree_repl.jsonl --width 96 --ansi
    python -m repro timeline traces/tree_repl.jsonl --lanes q2,q3,l2.drop
    python -m repro timeline traces/tree_repl.jsonl --flame > tree.folded

Input is an exported JSON-lines stream (``repro trace --events`` /
``--out-dir`` / ``--trace-dir``) or a committed golden digest from
``tests/golden/`` (whose ``head`` lines are rendered).  ``--flame``
emits Brendan-Gregg collapsed stacks instead of the ASCII chart; pipe
them straight into ``flamegraph.pl`` or load them in speedscope.

Tracediff::

    python -m repro tracediff traces/a.jsonl traces/b.jsonl

prints the first point of divergence and a per-kind delta table (extra /
missing / retimed events, always including the four L2 drop rules).
Exit status is ``diff``-like: 0 when the streams align exactly, 1 when
they diverge — which is what lets CI assert "two identical-seed runs
diff clean" with no output parsing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.analysis.diff import diff_streams, report_lines
from repro.obs.analysis.lanes import (
    LANES,
    fold_stream,
    load_event_records,
)
from repro.obs.analysis.timeline import collapsed_stacks, render_timeline


def timeline_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro timeline",
        description="render an exported event stream as an ASCII timeline "
                    "or flamegraph collapsed stacks")
    parser.add_argument("trace", help="event stream (.jsonl) or golden digest")
    parser.add_argument("--width", type=int, default=64,
                        help="timeline columns (default 64)")
    parser.add_argument("--lanes", default=None, metavar="NAMES",
                        help="comma-separated lane subset, in order "
                             f"(known: {','.join(l.name for l in LANES)})")
    parser.add_argument("--ansi", action="store_true",
                        help="colorize lanes with ANSI escapes")
    parser.add_argument("--flame", action="store_true",
                        help="emit collapsed-stack lines (flamegraph.pl "
                             "input) instead of the timeline chart")
    parser.add_argument("--weight", choices=("events", "cycles"),
                        default="events",
                        help="collapsed-stack weights: event counts or "
                             "attached response/occupancy cycles")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    try:
        records = load_event_records(path)
    except (OSError, ValueError) as exc:
        print(f"repro timeline: {exc}", file=sys.stderr)
        return 2

    if args.flame:
        for line in collapsed_stacks(records, root=path.stem,
                                     weight=args.weight):
            print(line)
        return 0

    lanes = None
    if args.lanes is not None:
        lanes = [name for name in args.lanes.split(",") if name]
    activity = fold_stream(((str(r["kind"]), int(r["cycle"]))
                            for r in records), width=args.width)
    try:
        lines = render_timeline(activity, title=path.stem, lanes=lanes,
                                ansi=args.ansi)
    except ValueError as exc:
        print(f"repro timeline: {exc}", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    return 0


def tracediff_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro tracediff",
        description="align two exported event streams and explain every "
                    "divergence (exit 0 = identical, 1 = divergent)")
    parser.add_argument("trace_a", help="event stream A (.jsonl or golden)")
    parser.add_argument("trace_b", help="event stream B (.jsonl or golden)")
    args = parser.parse_args(argv)

    try:
        records_a = load_event_records(Path(args.trace_a))
        records_b = load_event_records(Path(args.trace_b))
    except (OSError, ValueError) as exc:
        print(f"repro tracediff: {exc}", file=sys.stderr)
        return 2

    report = diff_streams(records_a, records_b)
    for line in report_lines(report, label_a=args.trace_a,
                             label_b=args.trace_b):
        print(line)
    return 0 if report.identical else 1


if __name__ == "__main__":
    raise SystemExit(timeline_main())
