"""Run one simulation cell with tracing on.

:func:`run_traced` is the traced analogue of
:func:`repro.sim.driver.run_simulation`: same (workload, config, scale,
seed) inputs, same deterministic :class:`~repro.sim.stats.SimResult`,
plus the full event stream and a metrics snapshot.  The returned
:class:`TraceRun` round-trips exactly through ``to_dict``/``from_dict``,
so traced cells live in the persistent result cache
(:mod:`repro.perf.cache`) next to plain simulation results and a
warm-cache replay is byte-identical to the original run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.obs.events import TraceEvent
from repro.obs.metrics import validate_snapshot
from repro.obs.tracer import Tracer, event_json_line
from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.stats import SimResult, result_counter_metrics
from repro.sim.system import System
from repro.workloads.registry import get_trace
from repro.workloads.trace import Trace

#: Bumped on incompatible TraceRun layout changes (cache safety).
TRACE_FORMAT_VERSION = 1


@dataclass
class TraceRun:
    """Everything one traced cell produced."""

    result: SimResult
    events: list[TraceEvent]
    #: Metrics snapshot (see :mod:`repro.obs.metrics`): registry metrics
    #: plus the run's headline counters folded in, so merged summaries
    #: carry coverage/accuracy context without re-reading every result.
    metrics: dict[str, Any]

    def event_lines(self) -> list[str]:
        return [event_json_line(e) for e in self.events]

    def jsonl(self) -> str:
        return "".join(line + "\n" for line in self.event_lines())

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "result": self.result.to_dict(),
            "events": [e.to_dict() for e in self.events],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceRun":
        """Rebuild from :meth:`to_dict` output.

        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        payloads; the persistent cache treats those as a miss.
        """
        if data["version"] != TRACE_FORMAT_VERSION:
            raise ValueError(f"trace format version {data['version']!r} "
                             f"!= {TRACE_FORMAT_VERSION}")
        metrics = data["metrics"]
        validate_snapshot(metrics)
        return cls(
            result=SimResult.from_dict(data["result"]),
            events=[TraceEvent.from_dict(e) for e in data["events"]],
            metrics=metrics,
        )


def run_traced(workload: Union[str, Trace],
               config: Union[str, SystemConfig] = "nopref",
               scale: float = 1.0,
               seed: Optional[int] = None) -> TraceRun:
    """Simulate one cell with the event tracer and metrics registry on.

    Mirrors :func:`repro.sim.driver.run_simulation` (the produced
    :class:`SimResult` is identical to an untraced run of the same cell);
    ``seed`` optionally regenerates the workload trace under a non-default
    layout seed, exactly as the pool's task ``seed`` field does.
    """
    if isinstance(workload, Trace):
        trace = workload
        app_name = trace.name or "trace"
    else:
        trace = get_trace(workload, scale=scale, seed=seed)
        app_name = workload
    if isinstance(config, str):
        config = (custom_config(app_name) if config == "custom"
                  else preset(config))
    tracer = Tracer()
    system = System(config, tracer=tracer)
    result = system.run(trace)
    registry = tracer.metrics
    for name, value in result_counter_metrics(result).items():
        registry.count(name, value)
    return TraceRun(result=result, events=tracer.events,
                    metrics=registry.snapshot())
