"""Run one simulation cell with tracing on.

:func:`run_traced` is the traced analogue of
:func:`repro.sim.driver.run_simulation`: same (workload, config, scale,
seed) inputs, same deterministic :class:`~repro.sim.stats.SimResult`,
plus the full event stream and a metrics snapshot.  The returned
:class:`TraceRun` round-trips exactly through ``to_dict``/``from_dict``,
so traced cells live in the persistent result cache
(:mod:`repro.perf.cache`) next to plain simulation results and a
warm-cache replay is byte-identical to the original run.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, TextIO, Union

from repro.obs.events import TraceEvent
from repro.obs.metrics import validate_snapshot
from repro.obs.tracer import (
    DEFAULT_STREAM_BUFFER,
    StreamingSink,
    Tracer,
    event_json_line,
)
from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.stats import SimResult, result_counter_metrics
from repro.sim.system import System
from repro.workloads.registry import get_trace
from repro.workloads.trace import Trace

#: Bumped on incompatible TraceRun layout changes (cache safety).
TRACE_FORMAT_VERSION = 1


@dataclass
class TraceRun:
    """Everything one traced cell produced."""

    result: SimResult
    events: list[TraceEvent]
    #: Metrics snapshot (see :mod:`repro.obs.metrics`): registry metrics
    #: plus the run's headline counters folded in, so merged summaries
    #: carry coverage/accuracy context without re-reading every result.
    metrics: dict[str, Any]

    def event_lines(self) -> list[str]:
        return [event_json_line(e) for e in self.events]

    def jsonl(self) -> str:
        return "".join(line + "\n" for line in self.event_lines())

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "result": self.result.to_dict(),
            "events": [e.to_dict() for e in self.events],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceRun":
        """Rebuild from :meth:`to_dict` output.

        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        payloads; the persistent cache treats those as a miss.
        """
        if data["version"] != TRACE_FORMAT_VERSION:
            raise ValueError(f"trace format version {data['version']!r} "
                             f"!= {TRACE_FORMAT_VERSION}")
        metrics = data["metrics"]
        validate_snapshot(metrics)
        return cls(
            result=SimResult.from_dict(data["result"]),
            events=[TraceEvent.from_dict(e) for e in data["events"]],
            metrics=metrics,
        )


def _resolve_cell(workload: Union[str, Trace],
                  config: Union[str, SystemConfig],
                  scale: float,
                  seed: Optional[int]) -> tuple[Trace, SystemConfig]:
    """Shared (workload, config) resolution of every traced entry point."""
    if isinstance(workload, Trace):
        trace = workload
        app_name = trace.name or "trace"
    else:
        trace = get_trace(workload, scale=scale, seed=seed)
        app_name = workload
    if isinstance(config, str):
        config = (custom_config(app_name) if config == "custom"
                  else preset(config))
    return trace, config


def _fold_result_counters(tracer: Tracer, result: SimResult) -> dict[str, Any]:
    """The run's metrics snapshot with the headline counters folded in."""
    registry = tracer.metrics
    for name, value in result_counter_metrics(result).items():
        registry.count(name, value)
    return registry.snapshot()


def run_traced(workload: Union[str, Trace],
               config: Union[str, SystemConfig] = "nopref",
               scale: float = 1.0,
               seed: Optional[int] = None) -> TraceRun:
    """Simulate one cell with the event tracer and metrics registry on.

    Mirrors :func:`repro.sim.driver.run_simulation` (the produced
    :class:`SimResult` is identical to an untraced run of the same cell);
    ``seed`` optionally regenerates the workload trace under a non-default
    layout seed, exactly as the pool's task ``seed`` field does.
    """
    trace, config = _resolve_cell(workload, config, scale, seed)
    tracer = Tracer()
    system = System(config, tracer=tracer)
    result = system.run(trace)
    return TraceRun(result=result, events=tracer.events,
                    metrics=_fold_result_counters(tracer, result))


@dataclass
class StreamedTraceRun:
    """What one *streamed* traced cell leaves behind.

    The event stream itself went straight to disk (or an arbitrary text
    stream) through the bounded :class:`~repro.obs.tracer.StreamingSink`;
    what remains in memory is the digest the trace CLI prints — count,
    per-kind counts, rolling SHA-256 — plus the usual result and metrics
    snapshot.  ``sha256`` equals the buffered path's stream digest for
    the same cell (``tests/test_obs_stream.py``).
    """

    result: SimResult
    metrics: dict[str, Any]
    event_count: int
    kind_counts: dict[str, int]
    sha256: str
    peak_buffered: int
    buffer_events: int
    #: Where the stream landed (None when written to a caller stream).
    path: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "result": self.result.to_dict(),
            "metrics": self.metrics,
            "event_count": self.event_count,
            "kind_counts": dict(self.kind_counts),
            "sha256": self.sha256,
            "peak_buffered": self.peak_buffered,
            "buffer_events": self.buffer_events,
            "path": self.path,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamedTraceRun":
        if data["version"] != TRACE_FORMAT_VERSION:
            raise ValueError(f"trace format version {data['version']!r} "
                             f"!= {TRACE_FORMAT_VERSION}")
        metrics = data["metrics"]
        validate_snapshot(metrics)
        return cls(result=SimResult.from_dict(data["result"]),
                   metrics=metrics,
                   event_count=data["event_count"],
                   kind_counts=dict(data["kind_counts"]),
                   sha256=data["sha256"],
                   peak_buffered=data["peak_buffered"],
                   buffer_events=data["buffer_events"],
                   path=data["path"])


def run_traced_streaming(workload: Union[str, Trace],
                         config: Union[str, SystemConfig] = "nopref",
                         scale: float = 1.0,
                         seed: Optional[int] = None,
                         *,
                         out: "TextIO | str | Path",
                         buffer_events: int = DEFAULT_STREAM_BUFFER,
                         ) -> StreamedTraceRun:
    """:func:`run_traced` with the event stream exported incrementally.

    ``out`` is either an open text stream (e.g. ``sys.stdout``) or a
    path.  Path targets follow the result cache's atomic-write
    discipline: parent directories are created, the stream is written to
    a same-directory temp file, and ``os.replace`` publishes it only
    after the run finished — a killed run never leaves a torn trace.

    Peak memory attributable to the event stream is ``buffer_events``
    events; the written bytes (and their SHA-256) are identical to the
    buffered path's ``TraceRun.jsonl()``.
    """
    trace, config = _resolve_cell(workload, config, scale, seed)

    if hasattr(out, "write"):
        sink = StreamingSink(out, buffer_events)  # type: ignore[arg-type]
        result = _run_into_sink(trace, config, sink)
        return _streamed_run(result, sink, path=None)

    path = Path(out)  # type: ignore[arg-type]
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="ascii") as fh:
            sink = StreamingSink(fh, buffer_events)
            result = _run_into_sink(trace, config, sink)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return _streamed_run(result, sink, path=str(path))


def _run_into_sink(trace: Trace, config: SystemConfig,
                   sink: StreamingSink) -> tuple[SimResult, dict[str, Any]]:
    tracer = Tracer(sink=sink)
    system = System(config, tracer=tracer)
    result = system.run(trace)
    tracer.flush()
    return result, _fold_result_counters(tracer, result)


def _streamed_run(ran: tuple[SimResult, dict[str, Any]], sink: StreamingSink,
                  path: Optional[str]) -> StreamedTraceRun:
    result, metrics = ran
    return StreamedTraceRun(
        result=result, metrics=metrics, event_count=sink.count,
        kind_counts=dict(sink.kind_counts), sha256=sink.hexdigest(),
        peak_buffered=sink.peak_buffered, buffer_events=sink.buffer_events,
        path=path)


@dataclass
class WindowedRun:
    """A metrics-only traced cell plus the per-window sampler log.

    Built by :func:`run_windowed` for the chaos sweep: the simulation
    runs under a metrics-only tracer (no event is ever retained, so the
    memory cost is O(windows)), and ``windows`` carries the raw
    coverage/accuracy sampler deltas — one ``(eliminated, original,
    arrived)`` triple per :data:`repro.sim.system.System.COVERAGE_WINDOW`
    demand misses, in run order, including the final partial window.
    """

    result: SimResult
    metrics: dict[str, Any]
    windows: list[tuple[int, int, int]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "result": self.result.to_dict(),
            "metrics": self.metrics,
            "windows": [list(w) for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WindowedRun":
        if data["version"] != TRACE_FORMAT_VERSION:
            raise ValueError(f"trace format version {data['version']!r} "
                             f"!= {TRACE_FORMAT_VERSION}")
        metrics = data["metrics"]
        validate_snapshot(metrics)
        windows = [(int(e), int(o), int(a)) for e, o, a in data["windows"]]
        return cls(result=SimResult.from_dict(data["result"]),
                   metrics=metrics, windows=windows)


def run_windowed(workload: Union[str, Trace],
                 config: Union[str, SystemConfig] = "nopref",
                 scale: float = 1.0,
                 seed: Optional[int] = None) -> WindowedRun:
    """Run one cell with windowed coverage/accuracy sampling only.

    The :class:`SimResult` is identical to an untraced run of the same
    cell (tracing is pure observation); the event stream is discarded at
    emission, so full-scale chaos sweeps stay cheap.
    """
    trace, config = _resolve_cell(workload, config, scale, seed)
    tracer = Tracer(collect_events=False)
    system = System(config, tracer=tracer)
    result = system.run(trace)
    windows = list(system.window_log)
    tail = system.window_tail()
    if tail is not None:
        windows.append(tail)
    return WindowedRun(result=result,
                       metrics=_fold_result_counters(tracer, result),
                       windows=windows)
