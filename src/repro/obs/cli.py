"""``python -m repro trace`` — run cells under the observability tracer.

Usage::

    python -m repro trace APPS [CONFIGS] [--scale S] [--jobs N]
        [--out-dir DIR] [--events] [--cache-dir DIR]
        [--stream] [--stream-buffer N] [--diff CONFIG_A CONFIG_B]

``APPS`` and ``CONFIGS`` are comma-separated (``CONFIGS`` defaults to
``repl``).  Every (app, config) cell runs under the event tracer; the
command prints one digest line per cell (event count + SHA-256 of the
JSON-lines stream + headline figures) followed by the metrics summary
merged across all cells in matrix order.  Because every cell is
deterministic and snapshot merging is order-independent, the entire
stdout is byte-identical between serial, ``--jobs N``, warm-cache, and
``--stream`` invocations — the CI trace-parity job diffs exactly this.

``--stream`` exports incrementally through the bounded
:class:`~repro.obs.tracer.StreamingSink` instead of buffering whole
streams: memory stays O(``--stream-buffer``) per cell and the written
bytes (and printed SHA-256) are identical to the buffered path.
Streaming runs in-process by construction, so it rejects ``--jobs`` > 1
and ``--cache-dir`` (use the plain buffered path for those).

``--diff CONFIG_A CONFIG_B`` traces one app under both configs and
explains how the streams differ (first divergence, retimed/missing/extra
classification, per-kind deltas including the four L2 drop rules) —
see :mod:`repro.obs.analysis.diff`.  Exit status is diff-like: 0 when
identical, 1 when divergent.

Unlike the other matrix commands the persistent cache is *opt-in*
(``--cache-dir``): traced payloads embed the full event stream and are
orders of magnitude larger than plain results.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from pathlib import Path
from typing import Mapping, Optional

from repro.obs.metrics import merge_all, summary_lines
from repro.obs.runner import TraceRun, run_traced_streaming
from repro.obs.tracer import DEFAULT_STREAM_BUFFER
from repro.sim.config import custom_config, preset
from repro.sim.driver import run_matrix


def trace_digest(run: TraceRun) -> str:
    """SHA-256 over the cell's full JSON-lines event stream."""
    return hashlib.sha256(run.jsonl().encode("ascii")).hexdigest()


def cell_lines(app: str, name: str, event_count: int, digest: str,
               kind_counts: Mapping[str, int],
               execution_time: int) -> list[str]:
    """The per-cell digest block (deterministic, stdout).

    Takes the already-computed digest material rather than a
    :class:`TraceRun` so the buffered and streamed paths print through
    the exact same code — byte-identity between the two is a test
    contract (``tests/test_obs_stream.py``).
    """
    lines = [f"{app}/{name}: {event_count:,} events  "
             f"sha256 {digest[:16]}  "
             f"exec {execution_time:,} cycles"]
    for kind in sorted(kind_counts):
        lines.append(f"    {kind:24s} {kind_counts[kind]:>10,}")
    return lines


def _run_cell_lines(app: str, name: str, run: TraceRun) -> list[str]:
    counts: dict[str, int] = {}
    for event in run.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return cell_lines(app, name, len(run.events), trace_digest(run),
                      counts, run.result.execution_time)


class _Discard:
    """A write-only text sink for digest-only streaming (no ``--out-dir``)."""

    def write(self, chunk: str) -> None:
        pass


def _resolve_config_name(app: str, config: str):
    cfg = custom_config(app) if config == "custom" else preset(config)
    return cfg, cfg.name


def _stream_cells(apps: list[str], configs: list[str], scale: float,
                  buffer_events: int, out_dir: Optional[Path]) -> int:
    """The ``--stream`` matrix: serial, bounded-memory, atomic files."""
    print(f"trace matrix @ scale {scale} — "
          f"{len(apps)} app(s) x {len(configs)} config(s)")
    snapshots = []
    for app in apps:
        for config in configs:
            cfg, name = _resolve_config_name(app, config)
            if out_dir is not None:
                target = out_dir / f"{app}_{name}.jsonl"
                srun = run_traced_streaming(app, cfg, scale=scale, out=target,
                                            buffer_events=buffer_events)
            else:
                srun = run_traced_streaming(app, cfg, scale=scale,
                                            out=_Discard(),
                                            buffer_events=buffer_events)
            for line in cell_lines(app, name, srun.event_count, srun.sha256,
                                   srun.kind_counts,
                                   srun.result.execution_time):
                print(line)
            if srun.path is not None:
                print(f"[trace] wrote {srun.path}", file=sys.stderr)
            snapshots.append(srun.metrics)
    _print_merged(snapshots, out_dir)
    return 0


def _print_merged(snapshots, out_dir: Optional[Path]) -> None:
    merged = merge_all(snapshots)
    print("merged metrics (all cells):")
    for line in summary_lines(merged):
        print(line)
    if out_dir is not None:
        from repro.perf.cache import atomic_write_text
        from repro.sim.serialize import json_line
        atomic_write_text(out_dir / "metrics.json", json_line(merged) + "\n",
                          encoding="ascii")


def _diff_cells(app: str, config_a: str, config_b: str,
                scale: float) -> int:
    """Trace one app under two configs and report their divergences.

    The two cells run directly (not through the matrix mapping, whose
    per-cell keys would collapse when both configs are the same name —
    and diffing a config against itself is exactly the determinism
    check CI runs).
    """
    from repro.obs.analysis.diff import diff_streams, report_lines
    from repro.obs.runner import run_traced

    run_a = run_traced(app, config_a, scale=scale)
    run_b = run_traced(app, config_b, scale=scale)
    report = diff_streams((e.to_dict() for e in run_a.events),
                          (e.to_dict() for e in run_b.events))
    label_a = f"{app}/{run_a.result.config_name}"
    label_b = f"{app}/{run_b.result.config_name}"
    for line in report_lines(report, label_a, label_b):
        print(line)
    return 0 if report.identical else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="run (workload, config) cells with pipeline tracing on")
    parser.add_argument("apps", help="comma-separated workloads")
    parser.add_argument("configs", nargs="?", default="repl",
                        help="comma-separated configs (default: repl)")
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="write one <app>_<config>.jsonl event stream "
                             "and a merged metrics.json into DIR")
    parser.add_argument("--events", action="store_true",
                        help="print the raw event stream to stdout "
                             "(single cell only)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="opt-in persistent result cache (traced "
                             "payloads are large, so off by default)")
    parser.add_argument("--stream", action="store_true",
                        help="export incrementally with bounded memory "
                             "(byte-identical output; serial only)")
    parser.add_argument("--stream-buffer", type=int,
                        default=DEFAULT_STREAM_BUFFER, metavar="N",
                        help="streaming buffer bound in events "
                             f"(default {DEFAULT_STREAM_BUFFER})")
    parser.add_argument("--diff", nargs=2, default=None,
                        metavar=("CONFIG_A", "CONFIG_B"),
                        help="trace one app under two configs and report "
                             "their divergences (exit 1 when divergent)")
    args = parser.parse_args(argv)

    apps = [a for a in args.apps.split(",") if a]
    configs = [c for c in args.configs.split(",") if c]
    if not apps or not configs:
        parser.error("need at least one app and one config")
    if args.events and len(apps) * len(configs) != 1:
        parser.error("--events needs exactly one (app, config) cell")
    if args.stream and (args.jobs > 1 or args.cache_dir is not None):
        parser.error("--stream runs in-process: drop --jobs/--cache-dir")
    if args.stream and args.diff is not None:
        parser.error("--diff needs retained streams; drop --stream")
    if args.diff is not None and len(apps) != 1:
        parser.error("--diff compares two configs of exactly one app")
    if args.diff is not None and (args.jobs > 1 or args.cache_dir is not None):
        parser.error("--diff runs its two cells in-process: "
                     "drop --jobs/--cache-dir")
    if args.stream_buffer < 1:
        parser.error("--stream-buffer must be >= 1")

    cache = None
    if args.cache_dir is not None:
        from repro.perf.cache import ResultCache
        cache = ResultCache(args.cache_dir)

    if args.diff is not None:
        return _diff_cells(apps[0], args.diff[0], args.diff[1], args.scale)

    if args.stream:
        if args.events:
            cfg, _ = _resolve_config_name(apps[0], configs[0])
            run_traced_streaming(apps[0], cfg, scale=args.scale,
                                 out=sys.stdout,
                                 buffer_events=args.stream_buffer)
            return 0
        out_dir = Path(args.out_dir) if args.out_dir is not None else None
        return _stream_cells(apps, configs, args.scale, args.stream_buffer,
                             out_dir)

    matrix = run_matrix(apps, configs, scale=args.scale, jobs=args.jobs,
                        cache=cache, trace=True)
    # Insertion order is matrix order on both the serial and pool paths.
    runs = list(matrix.values())
    cells = [(app, config) for app in apps for config in configs]

    if args.events:
        sys.stdout.write(runs[0].jsonl())
        return 0

    out_dir = Path(args.out_dir) if args.out_dir is not None else None

    print(f"trace matrix @ scale {args.scale} — "
          f"{len(apps)} app(s) x {len(configs)} config(s)")
    for (app, config), run in zip(cells, runs):
        name = run.result.config_name
        for line in _run_cell_lines(app, name, run):
            print(line)
        if out_dir is not None:
            from repro.perf.cache import atomic_write_text
            path = out_dir / f"{app}_{name}.jsonl"
            atomic_write_text(path, run.jsonl(), encoding="ascii")
            print(f"[trace] wrote {path}", file=sys.stderr)

    _print_merged([run.metrics for run in runs], out_dir)
    if cache is not None:
        print(f"[cache] {cache.stats.describe()} in {cache.directory}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
