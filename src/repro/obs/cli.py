"""``python -m repro trace`` — run cells under the observability tracer.

Usage::

    python -m repro trace APPS [CONFIGS] [--scale S] [--jobs N]
        [--out-dir DIR] [--events] [--cache-dir DIR]

``APPS`` and ``CONFIGS`` are comma-separated (``CONFIGS`` defaults to
``repl``).  Every (app, config) cell runs under the event tracer; the
command prints one digest line per cell (event count + SHA-256 of the
JSON-lines stream + headline figures) followed by the metrics summary
merged across all cells in matrix order.  Because every cell is
deterministic and snapshot merging is order-independent, the entire
stdout is byte-identical between serial, ``--jobs N``, and warm-cache
invocations — the CI trace-parity job diffs exactly this.

Unlike the other matrix commands the persistent cache is *opt-in*
(``--cache-dir``): traced payloads embed the full event stream and are
orders of magnitude larger than plain results.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from pathlib import Path

from repro.obs.metrics import merge_all, summary_lines
from repro.obs.runner import TraceRun
from repro.sim.driver import run_matrix


def trace_digest(run: TraceRun) -> str:
    """SHA-256 over the cell's full JSON-lines event stream."""
    return hashlib.sha256(run.jsonl().encode("ascii")).hexdigest()


def cell_lines(app: str, name: str, run: TraceRun) -> list[str]:
    """The per-cell digest block (deterministic, stdout)."""
    lines = [f"{app}/{name}: {len(run.events):,} events  "
             f"sha256 {trace_digest(run)[:16]}  "
             f"exec {run.result.execution_time:,} cycles"]
    counts: dict[str, int] = {}
    for event in run.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    for kind in sorted(counts):
        lines.append(f"    {kind:24s} {counts[kind]:>10,}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="run (workload, config) cells with pipeline tracing on")
    parser.add_argument("apps", help="comma-separated workloads")
    parser.add_argument("configs", nargs="?", default="repl",
                        help="comma-separated configs (default: repl)")
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="write one <app>_<config>.jsonl event stream "
                             "and a merged metrics.json into DIR")
    parser.add_argument("--events", action="store_true",
                        help="print the raw event stream to stdout "
                             "(single cell only)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="opt-in persistent result cache (traced "
                             "payloads are large, so off by default)")
    args = parser.parse_args(argv)

    apps = [a for a in args.apps.split(",") if a]
    configs = [c for c in args.configs.split(",") if c]
    if not apps or not configs:
        parser.error("need at least one app and one config")
    if args.events and len(apps) * len(configs) != 1:
        parser.error("--events needs exactly one (app, config) cell")

    cache = None
    if args.cache_dir is not None:
        from repro.perf.cache import ResultCache
        cache = ResultCache(args.cache_dir)

    matrix = run_matrix(apps, configs, scale=args.scale, jobs=args.jobs,
                        cache=cache, trace=True)
    # Insertion order is matrix order on both the serial and pool paths.
    runs = list(matrix.values())
    cells = [(app, config) for app in apps for config in configs]

    if args.events:
        sys.stdout.write(runs[0].jsonl())
        return 0

    out_dir = Path(args.out_dir) if args.out_dir is not None else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    print(f"trace matrix @ scale {args.scale} — "
          f"{len(apps)} app(s) x {len(configs)} config(s)")
    for (app, config), run in zip(cells, runs):
        name = run.result.config_name
        for line in cell_lines(app, name, run):
            print(line)
        if out_dir is not None:
            path = out_dir / f"{app}_{name}.jsonl"
            path.write_text(run.jsonl(), encoding="ascii")
            print(f"[trace] wrote {path}", file=sys.stderr)

    merged = merge_all(run.metrics for run in runs)
    print("merged metrics (all cells):")
    for line in summary_lines(merged):
        print(line)
    if out_dir is not None:
        from repro.sim.serialize import json_line
        (out_dir / "metrics.json").write_text(json_line(merged) + "\n",
                                              encoding="ascii")
    if cache is not None:
        print(f"[cache] {cache.stats.describe()} in {cache.directory}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
