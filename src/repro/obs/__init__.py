"""Observability layer: structured pipeline tracing + metrics registry.

The paper's claims are *timing* claims — response vs. occupancy time
(Figure 2), queue-2/3 cross-matching, the four L2 drop rules of Section
2.1 — yet the Figure-3 pipeline used to be observable only through
aggregate counters.  This package makes the internal dynamics first-class:

* :mod:`repro.obs.events` — the typed event schema: every pipeline event
  (queue enqueue/dequeue, cross-match, Filter accept/reject, ULMT
  prefetch/learning step, MSHR steal, each L2 drop rule) as a frozen,
  seed-deterministic record with a cycle timestamp.
* :mod:`repro.obs.tracer` — the :class:`Tracer` the subsystems emit into.
  Every call site is guarded by ``if tracer is not None`` so the disabled
  path costs one attribute load and allocates nothing (asserted by
  ``benchmarks/bench_obs.py``).
* :mod:`repro.obs.metrics` — counters and power-of-two-binned histograms
  whose snapshots merge associatively/commutatively (property-tested in
  ``tests/test_obs_merge.py``), which is what lets per-worker snapshots
  from the parallel pool combine deterministically.
* :mod:`repro.obs.runner` — :func:`run_traced`, the traced analogue of
  :func:`repro.sim.driver.run_simulation`.
* :mod:`repro.obs.cli` — ``python -m repro trace``: run (workload, config)
  cells with tracing on, export JSON-lines event streams and a metrics
  summary (serial, ``--jobs N`` and warm-cache runs are byte-identical).

See ``docs/OBSERVABILITY.md`` for the event schema and metrics catalogue.
"""

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import (MetricsRegistry, empty_snapshot,
                               merge_snapshots, merge_all)
from repro.obs.tracer import Tracer
from repro.obs.runner import TraceRun, run_traced

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "MetricsRegistry",
    "empty_snapshot",
    "merge_snapshots",
    "merge_all",
    "Tracer",
    "TraceRun",
    "run_traced",
]
