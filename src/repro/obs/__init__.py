"""Observability layer: structured pipeline tracing + metrics registry.

The paper's claims are *timing* claims — response vs. occupancy time
(Figure 2), queue-2/3 cross-matching, the four L2 drop rules of Section
2.1 — yet the Figure-3 pipeline used to be observable only through
aggregate counters.  This package makes the internal dynamics first-class:

* :mod:`repro.obs.events` — the typed event schema: every pipeline event
  (queue enqueue/dequeue, cross-match, Filter accept/reject, ULMT
  prefetch/learning step, MSHR steal, each L2 drop rule) as a frozen,
  seed-deterministic record with a cycle timestamp.
* :mod:`repro.obs.tracer` — the :class:`Tracer` the subsystems emit into.
  Every call site is guarded by ``if tracer is not None`` so the disabled
  path costs one attribute load and allocates nothing (asserted by
  ``benchmarks/bench_obs.py``).
* :mod:`repro.obs.metrics` — counters and power-of-two-binned histograms
  whose snapshots merge associatively/commutatively (property-tested in
  ``tests/test_obs_merge.py``), which is what lets per-worker snapshots
  from the parallel pool combine deterministically.
* :mod:`repro.obs.runner` — :func:`run_traced`, the traced analogue of
  :func:`repro.sim.driver.run_simulation`.
* :mod:`repro.obs.cli` — ``python -m repro trace``: run (workload, config)
  cells with tracing on, export JSON-lines event streams and a metrics
  summary (serial, ``--jobs N``, warm-cache, and ``--stream`` runs are
  byte-identical).
* :mod:`repro.obs.analysis` — the consumer tier on top of the event
  schema: the ``timeline`` lane/flamegraph renderer, the ``tracediff``
  divergence engine, and the stream loaders they share.

Streaming export (:class:`~repro.obs.tracer.StreamingSink`,
:func:`~repro.obs.runner.run_traced_streaming`) bounds the memory of a
traced run to ``buffer_events`` events while producing byte-identical
output; :func:`~repro.obs.runner.run_windowed` retains only the windowed
coverage/accuracy sampler log (the chaos sweep's per-window tables).

See ``docs/OBSERVABILITY.md`` for the event schema and metrics catalogue.
"""

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import (MetricsRegistry, empty_snapshot,
                               merge_snapshots, merge_all)
from repro.obs.tracer import DEFAULT_STREAM_BUFFER, StreamingSink, Tracer
from repro.obs.runner import (
    StreamedTraceRun,
    TraceRun,
    WindowedRun,
    run_traced,
    run_traced_streaming,
    run_windowed,
)

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "MetricsRegistry",
    "empty_snapshot",
    "merge_snapshots",
    "merge_all",
    "DEFAULT_STREAM_BUFFER",
    "StreamingSink",
    "Tracer",
    "StreamedTraceRun",
    "TraceRun",
    "WindowedRun",
    "run_traced",
    "run_traced_streaming",
    "run_windowed",
]
