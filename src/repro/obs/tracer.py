"""The structured event tracer the pipeline emits into.

A :class:`Tracer` is attached to a :class:`repro.sim.system.System` at
construction (``System(config, tracer=...)``), which threads it through
every subsystem of the Figure-3 pipeline: the L2 (drop rules, MSHR
steals), queues 2/3 (enqueue/drop/cross-match), the Filter, the ULMT
(prefetch/learning step transitions), and the memory controller.

**The disabled path is the contract.**  Every instrumented subsystem
holds a ``tracer`` attribute that defaults to ``None`` and guards each
emission with ``if tracer is not None``; no event object, info tuple, or
registry entry is ever allocated when tracing is off.
``benchmarks/bench_obs.py`` asserts this with ``tracemalloc``: a run
without a tracer performs zero allocations attributable to this package.
"""

from __future__ import annotations

import hashlib
from typing import Optional, TextIO

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.sim.serialize import json_line

#: Default bounded-buffer size (events) of the streaming export path.
DEFAULT_STREAM_BUFFER = 4096


def event_json_line(event: TraceEvent) -> str:
    """One JSON-lines record: compact, sorted keys — byte-deterministic."""
    return json_line(event.to_dict())


class StreamingSink:
    """Bounded-memory JSON-lines writer with a rolling SHA-256.

    A :class:`Tracer` built with ``sink=`` flushes its event buffer into
    the sink every ``buffer_events`` emissions (and once more at the end
    of the run), so a full-scale traced export holds O(buffer) events in
    memory instead of O(stream).  The sink writes exactly the lines the
    buffered path would (``Tracer.jsonl``), digests them as it goes, and
    keeps the per-kind counts — everything the trace CLI's digest block
    needs — without ever retaining an event.
    """

    __slots__ = ("stream", "buffer_events", "count", "kind_counts",
                 "peak_buffered", "_sha")

    def __init__(self, stream: TextIO,
                 buffer_events: int = DEFAULT_STREAM_BUFFER) -> None:
        if buffer_events < 1:
            raise ValueError(f"buffer_events must be >= 1, "
                             f"got {buffer_events}")
        self.stream = stream
        self.buffer_events = buffer_events
        self.count = 0
        self.kind_counts: dict[str, int] = {}
        #: Largest event batch ever handed over by the tracer — the
        #: bounded-memory claim is ``peak_buffered <= buffer_events``
        #: (asserted by ``tests/test_obs_stream.py``).
        self.peak_buffered = 0
        self._sha = hashlib.sha256()

    def write(self, events: list[TraceEvent]) -> None:
        """Drain one tracer buffer: render, digest, write, count."""
        if not events:
            return
        if len(events) > self.peak_buffered:
            self.peak_buffered = len(events)
        chunk = "".join(event_json_line(e) + "\n" for e in events)
        self._sha.update(chunk.encode("ascii"))
        self.stream.write(chunk)
        self.count += len(events)
        counts = self.kind_counts
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1

    def hexdigest(self) -> str:
        """SHA-256 over every byte written so far (== the buffered
        stream's digest once the final flush has happened)."""
        return self._sha.hexdigest()


class Tracer:
    """Collects :class:`TraceEvent` records plus a metrics registry.

    ``emit`` appends in call order; the simulator is single-threaded and
    deterministic, so the stream order is a pure function of the
    (workload, config, seed) cell.

    Two optional operating modes:

    * ``sink=`` — streaming export: the event buffer is flushed into a
      :class:`StreamingSink` whenever it reaches the sink's bound (call
      :meth:`flush` once after the run for the tail).  The written bytes
      are identical to the buffered path's ``jsonl()``.
    * ``collect_events=False`` — metrics-only: ``emit`` becomes a no-op
      (the registry is still populated by the instrumented subsystems),
      used by the windowed chaos sweep where only the sampler output is
      wanted and retaining the event stream would be O(stream) memory
      for nothing.
    """

    __slots__ = ("events", "metrics", "sink", "_check_kinds", "_collect",
                 "_flush_at")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 check_kinds: bool = False,
                 sink: Optional[StreamingSink] = None,
                 collect_events: bool = True) -> None:
        self.events: list[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Schema enforcement for tests; off by default on the hot path.
        self._check_kinds = check_kinds
        self.sink = sink
        self._collect = collect_events
        self._flush_at = sink.buffer_events if sink is not None else 0

    def emit(self, kind: str, cycle: int, addr: Optional[int] = None,
             **info: int | str) -> None:
        """Record one event (``info`` keys are sorted into the record)."""
        if self._check_kinds and kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if not self._collect:
            return
        self.events.append(TraceEvent(kind=kind, cycle=cycle, addr=addr,
                                      info=tuple(sorted(info.items()))))
        if self._flush_at and len(self.events) >= self._flush_at:
            self.flush()

    def flush(self) -> None:
        """Drain the buffer into the sink (no-op without one)."""
        if self.sink is not None and self.events:
            self.sink.write(self.events)
            self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- export ---------------------------------------------------------------

    def jsonl_lines(self) -> list[str]:
        return [event_json_line(e) for e in self.events]

    def jsonl(self) -> str:
        """The whole stream as one JSON-lines document (trailing newline)."""
        return "".join(line + "\n" for line in self.jsonl_lines())

    def kind_counts(self) -> dict[str, int]:
        """Events per kind, sorted by kind (summary output)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {k: counts[k] for k in sorted(counts)}


class CoreTaggedTracer(Tracer):
    """A per-core tracer lane of a multicore run.

    Each tile of a :class:`repro.multicore.system.MulticoreSystem` gets
    its own instance, which stamps ``core=<i>`` into every event's info
    tuple (info keys are sorted on emission, so the tag lands
    deterministically) while sharing one :class:`MetricsRegistry` across
    the bundle.  Unknown info keys round-trip through
    :meth:`TraceEvent.from_dict` untouched, and the timeline/tracediff
    lanes key on event *kind* only — so tagged streams flow through every
    existing trace tool unchanged.
    """

    __slots__ = ("core",)

    def __init__(self, core: int,
                 metrics: Optional[MetricsRegistry] = None,
                 check_kinds: bool = False,
                 collect_events: bool = True) -> None:
        super().__init__(metrics=metrics, check_kinds=check_kinds,
                         collect_events=collect_events)
        self.core = core

    def emit(self, kind: str, cycle: int, addr: Optional[int] = None,
             **info: int | str) -> None:
        super().emit(kind, cycle, addr, core=self.core, **info)
