"""The structured event tracer the pipeline emits into.

A :class:`Tracer` is attached to a :class:`repro.sim.system.System` at
construction (``System(config, tracer=...)``), which threads it through
every subsystem of the Figure-3 pipeline: the L2 (drop rules, MSHR
steals), queues 2/3 (enqueue/drop/cross-match), the Filter, the ULMT
(prefetch/learning step transitions), and the memory controller.

**The disabled path is the contract.**  Every instrumented subsystem
holds a ``tracer`` attribute that defaults to ``None`` and guards each
emission with ``if tracer is not None``; no event object, info tuple, or
registry entry is ever allocated when tracing is off.
``benchmarks/bench_obs.py`` asserts this with ``tracemalloc``: a run
without a tracer performs zero allocations attributable to this package.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.sim.serialize import json_line


def event_json_line(event: TraceEvent) -> str:
    """One JSON-lines record: compact, sorted keys — byte-deterministic."""
    return json_line(event.to_dict())


class Tracer:
    """Collects :class:`TraceEvent` records plus a metrics registry.

    ``emit`` appends in call order; the simulator is single-threaded and
    deterministic, so the stream order is a pure function of the
    (workload, config, seed) cell.
    """

    __slots__ = ("events", "metrics", "_check_kinds")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 check_kinds: bool = False) -> None:
        self.events: list[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Schema enforcement for tests; off by default on the hot path.
        self._check_kinds = check_kinds

    def emit(self, kind: str, cycle: int, addr: Optional[int] = None,
             **info: int | str) -> None:
        """Record one event (``info`` keys are sorted into the record)."""
        if self._check_kinds and kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        self.events.append(TraceEvent(kind=kind, cycle=cycle, addr=addr,
                                      info=tuple(sorted(info.items()))))

    def __len__(self) -> int:
        return len(self.events)

    # -- export ---------------------------------------------------------------

    def jsonl_lines(self) -> list[str]:
        return [event_json_line(e) for e in self.events]

    def jsonl(self) -> str:
        """The whole stream as one JSON-lines document (trailing newline)."""
        return "".join(line + "\n" for line in self.jsonl_lines())

    def kind_counts(self) -> dict[str, int]:
        """Events per kind, sorted by kind (summary output)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {k: counts[k] for k in sorted(counts)}
