"""Metrics registry: counters + power-of-two histograms with mergeable
snapshots.

Every subsystem emits into a :class:`MetricsRegistry` through the
:class:`~repro.obs.tracer.Tracer` it is handed; with no tracer installed
the call sites reduce to one ``is not None`` test (no registry exists at
all).  A registry renders to a *snapshot* — a plain JSON-able dict — and
snapshots from different runs (or different pool workers) combine with
:func:`merge_snapshots`, which is associative, commutative, and has
:func:`empty_snapshot` as identity.  Those algebraic properties (checked
by ``tests/test_obs_merge.py``) are what make the parallel pool's merge
order-independent: per-worker snapshots merged in task order equal the
serial run's merge no matter how workers interleaved.

Histograms use power-of-two bins (bin ``i`` holds values ``v`` with
``v.bit_length() == i``, i.e. ``[2**(i-1), 2**i)``; bin 0 holds 0), so a
bin index is a ``bit_length()`` call — cheap enough for per-event use —
and any two histograms of the same metric share bin edges by construction,
which keeps the merge pointwise.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

#: Snapshot schema version (bumped on incompatible layout changes; the
#: persistent cache embeds snapshots, so decode rejects mismatches).
SNAPSHOT_VERSION = 1


class MetricsRegistry:
    """Named counters and histograms for one traced run."""

    __slots__ = ("_counters", "_hists")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        #: name -> [bins dict, count, total, min, max]
        self._hists: dict[str, list[Any]] = {}

    # -- emission (hot path when tracing is enabled) -------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: int) -> None:
        """Record one sample of ``value`` into histogram ``name``.

        Zero is a first-class sample: it lands in the defined bin ``0``
        (``0 .bit_length() == 0``) rather than being dropped or pushed
        into the ``[1, 2)`` bin, so all-zero histograms round-trip and
        merge like any other; negatives clamp to that same bin.
        """
        if value < 0:
            value = 0
        hist = self._hists.get(name)
        if hist is None:
            hist = [{}, 0, 0, value, value]
            self._hists[name] = hist
        bins: dict[int, int] = hist[0]
        b = value.bit_length()
        bins[b] = bins.get(b, 0) + 1
        hist[1] += 1
        hist[2] += value
        if value < hist[3]:
            hist[3] = value
        if value > hist[4]:
            hist[4] = value

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Render to a plain, JSON-able, deterministically ordered dict."""
        hists = {}
        for name in sorted(self._hists):
            bins, count, total, lo, hi = self._hists[name]
            hists[name] = {
                "bins": {str(b): bins[b] for b in sorted(bins)},
                "count": count, "sum": total, "min": lo, "max": hi,
            }
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "histograms": hists,
        }


def empty_snapshot() -> dict[str, Any]:
    """The merge identity."""
    return {"version": SNAPSHOT_VERSION, "counters": {}, "histograms": {}}


def snapshot_from_counters(counters: Mapping[str, int]) -> dict[str, Any]:
    """A valid snapshot holding only the given counters.

    Lets code that tallies plain ints (the resilient pool, the campaign
    runner) export them in the standard mergeable shape without carrying
    a :class:`MetricsRegistry` across process boundaries.
    """
    return {"version": SNAPSHOT_VERSION,
            "counters": {k: int(counters[k]) for k in sorted(counters)},
            "histograms": {}}


#: The fields every histogram entry must carry (merge reads all of them).
_HIST_FIELDS = ("bins", "count", "sum", "min", "max")


def validate_snapshot(snap: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` on a malformed or incompatible snapshot.

    Histogram entries are checked field by field, so a truncated or
    hand-built snapshot fails here with a clear ``ValueError`` — which
    cache decoding treats as a miss — instead of surfacing as a
    ``KeyError`` from deep inside :func:`merge_snapshots`.
    """
    if snap.get("version") != SNAPSHOT_VERSION:
        raise ValueError(f"metrics snapshot version {snap.get('version')!r} "
                         f"!= {SNAPSHOT_VERSION}")
    if not isinstance(snap.get("counters"), dict):
        raise ValueError("metrics snapshot has no counters dict")
    if not isinstance(snap.get("histograms"), dict):
        raise ValueError("metrics snapshot has no histograms dict")
    for name, hist in snap["histograms"].items():
        if not isinstance(hist, dict):
            raise ValueError(f"histogram {name!r} is not a dict")
        missing = [f for f in _HIST_FIELDS if f not in hist]
        if missing:
            raise ValueError(f"histogram {name!r} lacks field(s) "
                             f"{', '.join(missing)}")
        if not isinstance(hist["bins"], dict):
            raise ValueError(f"histogram {name!r} bins is not a dict")


def merge_snapshots(a: Mapping[str, Any],
                    b: Mapping[str, Any]) -> dict[str, Any]:
    """Pointwise combination of two snapshots.

    Counters and histogram bins/count/sum add; ``min``/``max`` take the
    min/max — every per-field operation is itself associative and
    commutative, so the whole merge is too.  Key order in the result is
    sorted, making the rendered JSON independent of argument order.
    """
    validate_snapshot(a)
    validate_snapshot(b)
    counters = dict(a["counters"])
    for name, value in b["counters"].items():
        counters[name] = counters.get(name, 0) + value
    hists: dict[str, Any] = {
        name: {"bins": dict(h["bins"]), "count": h["count"],
               "sum": h["sum"], "min": h["min"], "max": h["max"]}
        for name, h in a["histograms"].items()}
    for name, h in b["histograms"].items():
        mine = hists.get(name)
        if mine is None:
            hists[name] = {"bins": dict(h["bins"]), "count": h["count"],
                           "sum": h["sum"], "min": h["min"], "max": h["max"]}
            continue
        for bin_key, n in h["bins"].items():
            mine["bins"][bin_key] = mine["bins"].get(bin_key, 0) + n
        mine["count"] += h["count"]
        mine["sum"] += h["sum"]
        mine["min"] = min(mine["min"], h["min"])
        mine["max"] = max(mine["max"], h["max"])
    return {
        "version": SNAPSHOT_VERSION,
        "counters": {k: counters[k] for k in sorted(counters)},
        "histograms": {
            name: {"bins": {b: hists[name]["bins"][b]
                            for b in sorted(hists[name]["bins"],
                                            key=lambda k: int(k))},
                   "count": hists[name]["count"],
                   "sum": hists[name]["sum"],
                   "min": hists[name]["min"],
                   "max": hists[name]["max"]}
            for name in sorted(hists)},
    }


def merge_all(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold :func:`merge_snapshots` over any number of snapshots."""
    merged = empty_snapshot()
    for snap in snapshots:
        merged = merge_snapshots(merged, snap)
    return merged


def summary_lines(snap: Mapping[str, Any]) -> list[str]:
    """Deterministic text rendering of a snapshot (trace CLI output)."""
    validate_snapshot(snap)
    lines = []
    for name, value in snap["counters"].items():
        lines.append(f"  {name:32s} {value:>12,}")
    for name, h in snap["histograms"].items():
        count = h["count"]
        mean = h["sum"] / count if count else 0.0
        lines.append(f"  {name:32s} {count:>12,} samples  "
                     f"mean {mean:.1f}  min {h['min']}  max {h['max']}")
    return lines
