"""Typed event schema of the Figure-3 pipeline trace.

One :class:`TraceEvent` records one thing the pipeline did, stamped with
the main-processor cycle it happened at.  Events are frozen and carry
their extra fields as a sorted tuple of ``(key, value)`` pairs, so two
runs of the same (workload, config, seed) cell produce *identical* event
objects in identical order — which is what makes the JSON-lines export
byte-comparable across serial, parallel, and warm-cache runs.

The kinds (full catalogue in ``docs/OBSERVABILITY.md``):

=======================  ========================================================
``q1.issue``             demand/prefetch request entering the memory system
``q2.enqueue``           miss deposited into the observation queue (queue 2)
``q2.dequeue``           observation handed to the ULMT
``q2.drop_overflow``     queue 2 full: the observation is lost (Section 3.2)
``q2.crossmatch``        queue-2/3 cross-match removed a queued observation
``q3.enqueue``           ULMT prefetch deposited into queue 3
``q3.drop_overflow``     queue 3 full: the prefetch is lost
``q3.cancel_demand``     a demand miss superseded a queued prefetch (cross-match)
``filter.accept``        Filter module admitted a generated prefetch address
``filter.reject``        Filter module suppressed a recently issued address
``ulmt.prefetch_step``   Figure-2 prefetching step ran (response time attached)
``ulmt.learning_step``   Figure-2 learning step ran (occupancy time attached)
``ulmt.learning_shed``   watchdog shed the learning step (prefetch-only mode)
``ulmt.warm_restart``    the ULMT crashed and warm-restarted (fault injection)
``push.issue``           queue-3 entry issued to memory (arrival time attached)
``push.arrive``          pushed line arrived at the L2
``push.merge_demand``    a demand miss merged with an in-flight push (DelayedHit)
``push.merge_fill``      the merged push arrived and filled as a demand line
``mem.push``             controller scheduled the push's DRAM/bus transfer
``mem.writeback``        dirty L2 victim drained to memory
``l2.push.redundant``    drop rule 1: the cache already holds the line
``l2.push.writeback_match``  drop rule 2: the write-back queue holds the line
``l2.push.mshr_full``    drop rule 3: all MSHRs are busy
``l2.push.set_pending``  drop rule 4: every line in the set is pending
``l2.push.steal``        the push stole a pending demand MSHR (acts as reply)
``l2.push.filled``       the push filled into a free frame
=======================  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

#: The four L2 drop rules of Section 2.1, in the order the L2 checks them.
L2_DROP_RULES = ("redundant", "writeback_match", "mshr_full", "set_pending")

#: Every event kind the tracer may emit (schema freeze: the golden-trace
#: battery fails if an unknown kind appears in a stream).
EVENT_KINDS = frozenset({
    "q1.issue",
    "q2.enqueue", "q2.dequeue", "q2.drop_overflow", "q2.crossmatch",
    "q3.enqueue", "q3.drop_overflow", "q3.cancel_demand",
    "filter.accept", "filter.reject",
    "ulmt.prefetch_step", "ulmt.learning_step", "ulmt.learning_shed",
    "ulmt.warm_restart",
    "push.issue", "push.arrive", "push.merge_demand", "push.merge_fill",
    "mem.push", "mem.writeback",
    "l2.push.steal", "l2.push.filled",
    *(f"l2.push.{rule}" for rule in L2_DROP_RULES),
})


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One pipeline event: kind + cycle + line address + extra fields."""

    kind: str
    cycle: int
    addr: Optional[int] = None
    #: Extra fields, sorted by key (kept as a tuple so the event is
    #: hashable and its construction order cannot leak into the stream).
    info: tuple[tuple[str, int | str], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "cycle": self.cycle}
        if self.addr is not None:
            out["addr"] = self.addr
        for key, value in self.info:
            out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output (cache round trip)."""
        kind = data["kind"]
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        info = tuple(sorted((k, v) for k, v in data.items()
                            if k not in ("kind", "cycle", "addr")))
        return cls(kind=kind, cycle=data["cycle"],
                   addr=data.get("addr"), info=info)


def make_info(**fields: int | str) -> tuple[tuple[str, int | str], ...]:
    """Sorted info tuple from keyword fields (the only way call sites
    should build one — sorting here keeps emission sites order-free)."""
    return tuple(sorted(fields.items()))
