"""Rule modules; importing this package registers every rule.

Adding a rule: create (or extend) a module here, subclass
:class:`repro.lint.engine.Rule`, decorate with ``@register``, and import
the module below.  Codes are grouped by family: DET (determinism), UNIT
(unit safety), PHASE (sim-phase mutation surface), CFG (config drift),
PAR (parallel-engine / result-cache safety), and — from the
whole-program flow layer (:mod:`repro.lint.flow`) — FLOW (interprocedural
RNG provenance), RACE (process-boundary capture) and RES (resource
lifecycle).
"""

from repro.lint.flow import rules as flow_rules
from repro.lint.rules import (configdrift, determinism, parallel, phases,
                              units)

__all__ = ["configdrift", "determinism", "flow_rules", "parallel",
           "phases", "units"]
