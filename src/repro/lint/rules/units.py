"""Unit-safety rules (UNIT0xx): cycles vs. nanoseconds.

The paper quotes latencies in nanoseconds (tSystem = 60 ns) while the
timing model computes exclusively in 1.6 GHz main-processor cycles
(``repro.params``).  The naming convention is the contract: identifiers
carrying a unit end in ``_cycles`` or ``_ns`` (``push_delay_cycles``,
``TSYSTEM_NS``), and crossing between the two requires an explicit
conversion through :func:`repro.params.ns_to_cycles` /
:func:`repro.params.cycles_to_ns`.  These rules enforce the contract
syntactically: additive arithmetic or comparisons that mix the suffixes,
and assignments binding one unit's expression to the other unit's name,
are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, ModuleContext, Rule, Severity, register

#: Calls that legitimise crossing the unit boundary.
_CONVERTERS = frozenset({"ns_to_cycles", "cycles_to_ns"})

_CYCLES = "cycles"
_NS = "ns"


def _unit_of_name(name: str) -> Optional[str]:
    lowered = name.lower()
    if lowered.endswith("_cycles") or lowered == "cycles":
        return _CYCLES
    if lowered.endswith("_ns") or lowered == "ns":
        return _NS
    return None


def _is_converter_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name in _CONVERTERS


def _units_in(node: ast.AST) -> set[str]:
    """Units mentioned by identifiers inside ``node``, conversions excluded.

    A converter call is a unit boundary: whatever units appear inside its
    arguments are already being converted, so they do not propagate out.
    Multiplication/division are ignored too — ``ns * ghz`` *is* the
    conversion idiom, so only the names directly visible through additive
    structure count.
    """
    units: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if _is_converter_call(current):
            continue
        if isinstance(current, ast.Name):
            unit = _unit_of_name(current.id)
            if unit:
                units.add(unit)
            continue
        if isinstance(current, ast.Attribute):
            unit = _unit_of_name(current.attr)
            if unit:
                units.add(unit)
            continue  # do not descend into the object expression
        stack.extend(ast.iter_child_nodes(current))
    return units


@register
class UnitMixingRule(Rule):
    """UNIT001: additive arithmetic / comparison mixing cycles and ns."""

    code = "UNIT001"
    name = "unit-mixing"
    severity = Severity.ERROR
    rationale = (
        "Adding, subtracting or comparing a *_cycles value against a *_ns "
        "value is meaningless at two different clock bases (60 ns is 96 "
        "cycles at 1.6 GHz).  Convert explicitly with ns_to_cycles()/"
        "cycles_to_ns() from repro.params.  Multiplication and division "
        "are exempt: scaling by a frequency is how conversion works.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mod)):
                pairs = [(node.left, node.right)]
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                pairs = list(zip(operands, operands[1:]))
            else:
                continue
            for left, right in pairs:
                left_units = _units_in(left)
                right_units = _units_in(right)
                if (_CYCLES in left_units and _NS in right_units) or (
                        _NS in left_units and _CYCLES in right_units):
                    yield module.finding(
                        self, node,
                        "arithmetic mixes *_cycles and *_ns identifiers "
                        "without an explicit ns_to_cycles()/cycles_to_ns() "
                        "conversion")
                    break


@register
class UnitAssignmentRule(Rule):
    """UNIT002: assignment binds one unit's expression to the other's name."""

    code = "UNIT002"
    name = "unit-assignment"
    severity = Severity.ERROR
    rationale = (
        "Binding an expression whose identifiers are all *_ns to a "
        "*_cycles name (or vice versa) silently relabels the unit without "
        "converting the value.  Route the value through ns_to_cycles()/"
        "cycles_to_ns() so the conversion is visible at the crossing.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                targets, value = [node.target], node.value
            else:
                continue
            value_units = _units_in(value)
            if len(value_units) != 1:
                continue  # no unit info, or already flagged by UNIT001
            (value_unit,) = value_units
            for target in targets:
                name = (target.id if isinstance(target, ast.Name)
                        else target.attr if isinstance(target, ast.Attribute)
                        else None)
                if name is None:
                    continue
                target_unit = _unit_of_name(name)
                if target_unit is not None and target_unit != value_unit:
                    yield module.finding(
                        self, node,
                        f"assigns a *_{value_unit} expression to "
                        f"{name!r} without an explicit conversion")
