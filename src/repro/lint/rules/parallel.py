"""PAR rules: state that must not leak across pool-worker boundaries.

The parallel engine (:mod:`repro.perf.pool`) executes matrix cells in
forked worker processes and replays cached results keyed **only** by the
task's content hash (workload, seed, scale, frozen config, format
version).  Any module-level state a run depends on but which is not part
of that key is therefore a correctness hazard twice over:

* a worker process never sees mutations the parent made after the pool
  started (fork-time snapshot), so serial and parallel runs diverge;
* a cache hit replays a result computed under whatever the state was at
  store time, so runs with different settings silently share entries.

The canonical specimen was ``common.DEFAULT_SCALE = args.scale`` in
``runall.main`` — a cross-module scalar rebind, invisible to workers and
absent from the cache key.  It is now a :func:`repro.experiments.common.
use_scale` override that travels *inside* each task.  PAR001 keeps the
class extinct.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (Finding, ModuleContext, Rule, Severity,
                               register)


def _imported_names(tree: ast.Module) -> set[str]:
    """Names bound in module scope by import statements.

    ``import a.b`` binds ``a``; ``import a.b as m`` binds ``m``;
    ``from pkg import x as y`` binds ``y``.  Anything assigned through an
    attribute of such a name is another module's (or imported object's)
    state.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return names


def _rebound_locals(func: ast.AST) -> set[str]:
    """Names (re)bound inside ``func`` — these shadow imported names."""
    names = {a.arg for a in getattr(func.args, "args", [])}
    names.update(a.arg for a in getattr(func.args, "kwonlyargs", []))
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.comprehension)) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.withitem) and isinstance(
                node.optional_vars, ast.Name):
            names.add(node.optional_vars.id)
    return names


@register
class WorkerVisibleModuleStateRule(Rule):
    """PAR001: no mutable module-level state outside the cache key."""

    code = "PAR001"
    name = "worker-visible-module-state"
    severity = Severity.ERROR
    rationale = (
        "Rebinding another module's attribute (``common.DEFAULT_SCALE = "
        "x``) or a module global (``global FOO; FOO = x``) creates state "
        "that pool workers never see and the result cache never keys on: "
        "serial and parallel runs diverge, and cache hits replay results "
        "computed under different settings.  Thread settings through task "
        "parameters (they hash into the cache key) or a context-manager "
        "override; an intentional process-local holder needs an inline "
        "suppression saying why it cannot reach a worker or a cache key.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        imported = _imported_names(module.tree)
        yield from self._check_scope(module, module.tree, imported,
                                     shadowed=set(), where="module level")
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_globals(module, func)
            yield from self._check_scope(module, func, imported,
                                         shadowed=_rebound_locals(func),
                                         where=f"{func.name}()")

    # -- module-attribute rebinding ---------------------------------------------

    def _check_scope(self, module: ModuleContext, scope: ast.AST,
                     imported: set[str], shadowed: set[str],
                     where: str) -> Iterator[Finding]:
        body = scope.body if isinstance(
            scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)) else []
        for node in self._statements(body):
            for target in self._assign_targets(node):
                dotted = self._module_attr(target, imported, shadowed)
                if dotted is not None:
                    yield module.finding(
                        self, node,
                        f"{where} rebinds {dotted!r} on an imported "
                        f"module/object: the setting never reaches pool "
                        f"workers and is not part of the result-cache key "
                        f"— pass it through task parameters or a "
                        f"context-manager override")

    def _statements(self, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        """All statements in ``body``, descending into compound statements
        but not into nested function/class scopes (they are visited as
        their own scope, or belong to an object being built)."""
        for stmt in body:
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    yield from self._statements([child])
                elif isinstance(child, (ast.ExceptHandler,)):
                    yield from self._statements(child.body)
                elif hasattr(child, "body") and isinstance(
                        getattr(child, "body"), list):
                    yield from self._statements(child.body)

    @staticmethod
    def _assign_targets(node: ast.stmt) -> list[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        return []

    @staticmethod
    def _module_attr(target: ast.expr, imported: set[str],
                     shadowed: set[str]) -> str | None:
        """``pkg.mod.ATTR`` when ``target`` assigns an attribute whose
        base name was bound by an import (and not shadowed locally)."""
        if not isinstance(target, ast.Attribute):
            return None
        parts: list[str] = [target.attr]
        node: ast.expr = target.value
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        if node.id not in imported or node.id in shadowed:
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    # -- ``global`` rebinding -----------------------------------------------------

    def _check_globals(self, module: ModuleContext,
                       func: ast.AST) -> Iterator[Finding]:
        declared: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        if not declared:
            return
        for node in ast.walk(func):
            name: str | None = None
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        name = target.id
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node.target, ast.Name) and \
                        node.target.id in declared:
                    name = node.target.id
            if name is not None:
                yield module.finding(
                    self, node,
                    f"{func.name}() rebinds module global {name!r}: "
                    f"worker processes fork with the old value and the "
                    f"result cache does not key on it — thread the value "
                    f"through task parameters instead")
