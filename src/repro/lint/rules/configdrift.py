"""Config-drift rules (CFG0xx).

Dead configuration is how reproductions silently diverge from the paper:
a ``SystemConfig`` field nobody reads means an evaluation knob that
stopped doing anything, and a CLI flag that maps to no field means a
user-visible promise the simulator ignores.  These are project-wide
rules — they correlate ``sim/config.py`` and ``__main__.py`` against
every module in the run.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    Severity,
    register,
)

#: CLI flags that configure the *harness* (workload/scale selection),
#: not the simulated system; they legitimately map to no config field.
_CLI_ONLY_DESTS = frozenset({
    "app", "config", "configs", "scale", "rates", "command",
    # Parallel-engine / result-cache harness controls (repro.perf): they
    # steer scheduling and caching, never the simulated machine.
    "jobs", "cache_dir", "no_cache", "profile",
    # Observability harness controls (repro.obs): tracing never alters
    # the simulated machine (traced results are identical to untraced).
    "trace_dir", "out_dir", "events", "windows",
})

#: CLI dest -> the SystemConfig/FaultPlan field it feeds.
_CLI_ALIASES = {
    "faults": "fault_plan",   # parsed into SystemConfig.fault_plan
    "fault_seed": "seed",     # becomes FaultPlan.seed
    "cores": "num_cores",     # SystemConfig.with_cores(...)
    # --coordination needs no alias: its dest matches
    # SystemConfig.coordination directly.
}


def _dataclass_fields(module: ModuleContext,
                      class_name: str) -> dict[str, int]:
    """Annotated field name -> line number of a dataclass definition."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name):
                    name = stmt.target.id
                    if not name.startswith("_") and name.isupper() is False:
                        fields[name] = stmt.lineno
            return fields
    return {}


def _attribute_reads(module: ModuleContext) -> set[str]:
    """Every attribute name read (Load context) in a module."""
    reads: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load):
            reads.add(node.attr)
    return reads


def _find_module(project: ProjectContext,
                 suffix: str) -> Optional[ModuleContext]:
    for module in project.modules:
        if module.relpath == suffix:
            return module
    return project.find("/" + suffix)


@register
class UnreadConfigFieldRule(Rule):
    """CFG001: every SystemConfig field is read somewhere."""

    code = "CFG001"
    name = "unread-config-field"
    severity = Severity.ERROR
    rationale = (
        "A SystemConfig field nobody reads is an evaluation knob that "
        "silently stopped steering the simulation — the config promises a "
        "system the simulator no longer builds.  Either wire the field "
        "back up or delete it.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        config_module = _find_module(project, "sim/config.py")
        if config_module is None:
            return
        fields = _dataclass_fields(config_module, "SystemConfig")
        if not fields:
            return
        reads: set[str] = set()
        for module in project.modules:
            if module is config_module:
                continue
            reads |= _attribute_reads(module)
        for name, lineno in sorted(fields.items()):
            if name not in reads:
                yield Finding(
                    rule=self.code, rule_name=self.name,
                    severity=self.severity, path=config_module.path,
                    line=lineno, col=0,
                    message=(f"SystemConfig.{name} is never read outside "
                             f"sim/config.py — dead evaluation knob"),
                    source_line=config_module.source_line(lineno),
                    relpath=config_module.relpath)


@register
class UnmappedCliFlagRule(Rule):
    """CFG002: every CLI flag maps to a config/fault-plan field."""

    code = "CFG002"
    name = "unmapped-cli-flag"
    severity = Severity.ERROR
    rationale = (
        "A `python -m repro` flag that maps to no SystemConfig or "
        "FaultPlan field is a user-visible promise the simulator ignores. "
        "Harness-only selection flags (app, scale, ...) are allowlisted; "
        "renames must update the alias map in the rule.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        main_module = _find_module(project, "repro/__main__.py")
        if main_module is None:
            # The package may be linted from its own directory.
            main_module = _find_module(project, "__main__.py")
        config_module = _find_module(project, "sim/config.py")
        plan_module = _find_module(project, "faults/plan.py")
        if main_module is None or config_module is None:
            return
        known = set(_dataclass_fields(config_module, "SystemConfig"))
        if plan_module is not None:
            known |= set(_dataclass_fields(plan_module, "FaultPlan"))
        for node in ast.walk(main_module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "add_argument"):
                continue
            dest = self._dest_of(node)
            if dest is None:
                continue
            if dest in _CLI_ONLY_DESTS:
                continue
            mapped = _CLI_ALIASES.get(dest, dest)
            if mapped not in known:
                yield Finding(
                    rule=self.code, rule_name=self.name,
                    severity=self.severity, path=main_module.path,
                    line=node.lineno, col=node.col_offset,
                    message=(f"CLI flag {dest!r} maps to no SystemConfig/"
                             f"FaultPlan field (aliases: {_CLI_ALIASES}; "
                             f"harness-only flags: "
                             f"{sorted(_CLI_ONLY_DESTS)})"),
                    source_line=main_module.source_line(node.lineno),
                    relpath=main_module.relpath)

    @staticmethod
    def _dest_of(call: ast.Call) -> Optional[str]:
        for kw in call.keywords:
            if kw.arg == "dest" and isinstance(kw.value, ast.Constant):
                return str(kw.value.value)
        for arg in call.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
                if name.startswith("--"):
                    return name[2:].replace("-", "_")
                if not name.startswith("-"):
                    return name.replace("-", "_")
        return None
