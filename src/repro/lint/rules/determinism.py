"""Determinism rules (DET0xx).

The reproduction's headline guarantee is bit-exact, seeded determinism:
the same (trace, config, seed) triple must replay the same simulation,
and an all-zero fault plan must stay bit-identical to no plan at all
(``docs/ROBUSTNESS.md``).  These rules statically remove the classic ways
Python code silently breaks that guarantee:

* drawing from the process-global RNG or an unseeded ``random.Random()``;
* reading wall-clock time inside simulator packages;
* letting ``set`` iteration order (stable only per-process) leak into
  event order or stats;
* mutable default arguments and module-level mutable state shared across
  runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    register,
)

#: ``random.<fn>`` calls that touch the module-global Mersenne Twister.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "seed", "getrandbits", "setstate",
})

#: Wall-clock reads.  ``time.process_time`` etc. are equally banned: any
#: host-time value observed by simulator code is nondeterministic.
_WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
})
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: Constructors whose result is mutable — illegal as a default argument.
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "Counter",
    "OrderedDict", "bytearray",
})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class UnseededRngRule(Rule):
    """DET001: every RNG must be a ``random.Random(seed)`` instance."""

    code = "DET001"
    name = "unseeded-rng"
    severity = Severity.ERROR
    rationale = (
        "Calls on the module-global RNG (random.random(), random.seed(), "
        "...) share hidden state across the process, so two simulations in "
        "one run perturb each other; random.Random() without a seed draws "
        "from the OS.  Construct random.Random(seed) with a seed that "
        "comes from a config or argument.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if dotted in ("random.Random", "Random", "random.SystemRandom",
                          "SystemRandom"):
                if dotted.endswith("SystemRandom"):
                    yield module.finding(
                        self, node,
                        "SystemRandom draws from the OS and can never be "
                        "seeded; use random.Random(seed)")
                elif not node.args and not node.keywords:
                    yield module.finding(
                        self, node,
                        "random.Random() without a seed is nondeterministic;"
                        " pass a seed from a config or argument")
            elif (dotted.startswith("random.")
                  and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FNS):
                yield module.finding(
                    self, node,
                    f"{dotted}() uses the process-global RNG (hidden shared "
                    f"state); draw from a seeded random.Random instance")


@register
class NumpyGlobalRandomRule(Rule):
    """DET002: no ``numpy.random`` global-state use."""

    code = "DET002"
    name = "numpy-global-random"
    severity = Severity.ERROR
    rationale = (
        "numpy.random.* module functions and numpy.random.seed() mutate "
        "NumPy's process-global BitGenerator.  Use a local "
        "numpy.random.Generator (default_rng(seed)) instead.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            for prefix in ("numpy.random.", "np.random."):
                if dotted.startswith(prefix):
                    fn = dotted[len(prefix):]
                    if fn in ("default_rng", "Generator", "PCG64",
                              "SeedSequence"):
                        if fn == "default_rng" and not node.args \
                                and not node.keywords:
                            yield module.finding(
                                self, node,
                                "default_rng() without a seed is "
                                "nondeterministic; pass a seed")
                        break
                    yield module.finding(
                        self, node,
                        f"{dotted}() mutates numpy's global RNG state; use "
                        f"numpy.random.default_rng(seed)")
                    break


@register
class WallClockRule(Rule):
    """DET003: no wall-clock reads in simulator packages."""

    code = "DET003"
    name = "wall-clock"
    severity = Severity.ERROR
    rationale = (
        "Simulated time is carried by the trace walk; any host-time value "
        "(time.time(), datetime.now(), perf_counter()) observed by code in "
        "core/, sim/, memsys/, cpu/, faults/ or workloads/ makes results "
        "machine- and load-dependent.  Harness-side progress reporting in "
        "experiments/ and analysis/ is exempt by scope.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_sim_path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "time" and len(parts) == 2 \
                    and parts[1] in _WALL_CLOCK_TIME_FNS:
                yield module.finding(
                    self, node,
                    f"{dotted}() reads the wall clock inside a simulator "
                    f"package; simulated time must come from the event flow")
            elif parts[-1] in _WALL_CLOCK_DATETIME_FNS and (
                    "datetime" in parts or "date" in parts):
                yield module.finding(
                    self, node,
                    f"{dotted}() reads the wall clock inside a simulator "
                    f"package; simulated time must come from the event flow")


class _SetTracker(ast.NodeVisitor):
    """Per-function tracking of names bound to set-typed values."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("set", "frozenset"):
                return True
            # set-producing methods on a known set: a.union(b), a - b ...
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "union", "difference", "intersection",
                    "symmetric_difference", "copy"):
                return self.is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self.is_set_expr(node.left)
                    or self.is_set_expr(node.right))
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        return False

    def observe_assign(self, target: ast.AST, value: ast.AST | None) -> None:
        if not isinstance(target, ast.Name):
            return
        if value is not None and self.is_set_expr(value):
            self.set_names.add(target.id)
        else:
            self.set_names.discard(target.id)

    def observe_annassign(self, node: ast.AnnAssign) -> None:
        ann = node.annotation
        base = ann.value if isinstance(ann, ast.Subscript) else ann
        name = _dotted(base)
        if name in ("set", "frozenset", "Set", "FrozenSet",
                    "typing.Set", "typing.FrozenSet"):
            if isinstance(node.target, ast.Name):
                self.set_names.add(node.target.id)
        elif node.value is not None:
            self.observe_assign(node.target, node.value)


@register
class SetIterationRule(Rule):
    """DET004: no iteration over bare sets."""

    code = "DET004"
    name = "set-iteration"
    severity = Severity.ERROR
    rationale = (
        "Set iteration order depends on insertion history and element "
        "hashes; for int-keyed sets it is stable per-process but changes "
        "whenever the insertion pattern does, so set order feeding event "
        "queues or stats makes results fragile.  Iterate sorted(s) (or "
        "keep a list/dict, which preserve insertion order).")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_sim_path:
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Module)):
                continue
            yield from self._check_scope(module, func)

    def _check_scope(self, module: ModuleContext,
                     scope: ast.AST) -> Iterator[Finding]:
        tracker = _SetTracker()
        body = scope.body if hasattr(scope, "body") else []
        for node in self._walk_scope(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    tracker.observe_assign(target, node.value)
            elif isinstance(node, ast.AnnAssign):
                tracker.observe_annassign(node)
            elif isinstance(node, ast.For):
                if tracker.is_set_expr(node.iter):
                    yield module.finding(
                        self, node.iter,
                        "iterating a set; wrap it in sorted(...) so the "
                        "order cannot leak into event order or stats")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if tracker.is_set_expr(comp.iter):
                        yield module.finding(
                            self, comp.iter,
                            "comprehension over a set; wrap it in "
                            "sorted(...) so the order cannot leak into "
                            "event order or stats")

    @staticmethod
    def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested functions
        (each function gets its own tracker scope)."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop(0)
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes are checked with their own tracker
            children = list(ast.iter_child_nodes(node))
            stack = children + stack  # pre-order: keep source order


@register
class MutableDefaultRule(Rule):
    """DET005: no mutable default arguments."""

    code = "DET005"
    name = "mutable-default-argument"
    severity = Severity.ERROR
    rationale = (
        "A mutable default ([], {}, set(), deque()) is created once at "
        "function definition and shared by every call — state from one "
        "simulation leaks into the next.  Default to None and construct "
        "inside the function (or use dataclasses.field(default_factory)).")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield module.finding(
                        self, default,
                        f"mutable default argument in {node.name}(); it is "
                        f"shared across calls — default to None and build "
                        f"it inside the function")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                return False
            return dotted.split(".")[-1] in _MUTABLE_FACTORIES
        return False


@register
class GlobalMutableStateRule(Rule):
    """DET006: module-level mutable containers must not be mutated from
    functions (accidental cross-run global state)."""

    code = "DET006"
    name = "global-mutable-state"
    severity = Severity.ERROR
    rationale = (
        "A module-level list/dict/set mutated from function bodies is "
        "state that survives from one simulation to the next inside one "
        "process, breaking run-to-run bit-identity.  Pass state through "
        "objects instead; genuinely intended caches must carry an inline "
        "suppression stating why cross-run sharing is safe.")

    _MUTATING_METHODS = frozenset({
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    })

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        globals_: set[str] = set()
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if not self._is_mutable_ctor(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    globals_.add(target.id)
        if not globals_:
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local = self._local_names(func)
            for node in ast.walk(func):
                name = self._mutated_name(node)
                if name and name in globals_ and name not in local:
                    yield module.finding(
                        self, node,
                        f"function {func.name}() mutates module-level "
                        f"{name!r}: cross-run global state — pass it "
                        f"explicitly, or suppress with a justification if "
                        f"it is an intentional cache")

    @staticmethod
    def _is_mutable_ctor(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            return (dotted is not None
                    and dotted.split(".")[-1] in _MUTABLE_FACTORIES)
        return False

    @staticmethod
    def _local_names(func: ast.AST) -> set[str]:
        names = {a.arg for a in getattr(func.args, "args", [])}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                names.add(node.target.id)
        return names

    def _mutated_name(self, node: ast.AST) -> str | None:
        # CACHE[key] = value / del CACHE[key] / CACHE[key] += 1
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (node.targets if isinstance(node, (ast.Assign,
                                                         ast.Delete))
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name):
                    return target.value.id
        # CACHE.append(x), CACHE.update(...) ...
        if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name):
            if node.func.attr in self._MUTATING_METHODS:
                return node.func.value.id
        return None
