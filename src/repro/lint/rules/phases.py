"""Sim-phase rules (PHASE0xx): declared mutation surfaces in ``core/``.

The runtime :class:`repro.faults.invariants.InvariantChecker` audits that
cross-structure bookkeeping *holds* after every event; these rules are
its static companion: they pin down *where* ULMT and correlation-table
state is allowed to change.  Every class in ``repro/core/`` that mutates
its own attributes outside ``__init__`` must declare the designated step
methods in a class-level ``_STEP_METHODS`` tuple, and only those methods
may mutate.  The declaration makes the mutation surface reviewable: a
new method that starts touching state shows up as a lint finding, not as
a silent extra writer racing the Figure-2 prefetch/learn phases.

Mutation here means a direct attribute write rooted at ``self`` —
``self.x = ...``, ``self.x += ...``, ``self.stats.hits += 1``,
``self.table[i] = ...``, ``del self.cache[k]``.  Aliased writes
(``q = self.queue; q.push(...)``) are out of static reach; the runtime
checker covers those.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, ModuleContext, Rule, Severity, register

#: Methods always allowed to mutate, beyond the declared step methods.
_IMPLICIT_MUTATORS = frozenset({"__init__", "__post_init__", "__setstate__"})


def _self_attr_root(node: ast.expr) -> Optional[str]:
    """The attribute name ``x`` when ``node`` is a write target rooted at
    ``self.x`` (through any chain of further attributes/subscripts)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if isinstance(node, ast.Attribute) and isinstance(
                parent, ast.Name) and parent.id == "self":
            return node.attr
        node = parent
    return None


def _mutation_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target] if getattr(node, "value", True) is not None \
            else []
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _step_methods_decl(cls: ast.ClassDef) -> Optional[set[str]]:
    """The ``_STEP_METHODS`` declaration of a class, if present."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "_STEP_METHODS":
                names: set[str] = set()
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str):
                            names.add(elt.value)
                return names
    return None


def _mutating_methods(cls: ast.ClassDef) -> dict[str, ast.stmt]:
    """Map of method name -> first self-attribute mutation statement."""
    result: dict[str, ast.stmt] = {}
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.stmt):
                continue
            for target in _mutation_targets(node):
                if _self_attr_root(target) is not None:
                    result.setdefault(item.name, node)
                    break
            if item.name in result:
                break
    return result


def _in_core(module: ModuleContext) -> bool:
    return module.relpath.startswith("core/")


@register
class StepMethodDeclarationRule(Rule):
    """PHASE001: stateful core classes must declare ``_STEP_METHODS``."""

    code = "PHASE001"
    name = "undeclared-step-methods"
    severity = Severity.ERROR
    rationale = (
        "A class in core/ that mutates its own attributes outside "
        "__init__ holds ULMT/table state; declaring the designated step "
        "methods in _STEP_METHODS makes the mutation surface explicit and "
        "lets PHASE002 reject new undeclared writers.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        if not _in_core(module):
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            mutators = {name: node
                        for name, node in _mutating_methods(cls).items()
                        if name not in _IMPLICIT_MUTATORS}
            if mutators and _step_methods_decl(cls) is None:
                yield module.finding(
                    self, cls,
                    f"class {cls.name} mutates its own state in "
                    f"{sorted(mutators)} but declares no _STEP_METHODS "
                    f"tuple naming its designated step methods")


@register
class UndeclaredMutationRule(Rule):
    """PHASE002: state writes only from the declared step methods."""

    code = "PHASE002"
    name = "undeclared-state-mutation"
    severity = Severity.ERROR
    rationale = (
        "Once a core/ class declares _STEP_METHODS, any other method "
        "assigning to self-rooted attributes is an undeclared writer — "
        "the static analogue of mutating ULMT/table state outside the "
        "Figure-2 prefetch/learning steps.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        if not _in_core(module):
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            declared = _step_methods_decl(cls)
            if declared is None:
                continue
            allowed = declared | _IMPLICIT_MUTATORS
            for name, node in sorted(_mutating_methods(cls).items()):
                if name not in allowed:
                    yield module.finding(
                        self, node,
                        f"{cls.name}.{name}() mutates state but is not in "
                        f"_STEP_METHODS {tuple(sorted(declared))}")
            for name in sorted(declared):
                if not any(isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))
                           and item.name == name for item in cls.body):
                    yield module.finding(
                        self, cls,
                        f"{cls.name}._STEP_METHODS names {name!r} but no "
                        f"such method is defined")
