"""Import-resolved module graph and function index.

Every linted :class:`~repro.lint.engine.ModuleContext` becomes a
:class:`ModuleInfo` holding its import table (local name -> dotted
target), its top-level and class-level functions, and its module-level
bindings.  :class:`ProjectGraph` then answers the two questions the
taint engine asks constantly:

``canonical(module, dotted)``
    the fully-qualified name a dotted use refers to, with import aliases
    unfolded — ``np.random.default_rng`` -> ``numpy.random.default_rng``,
    ``Random`` (from ``from random import Random``) -> ``random.Random``;

``resolve_function(module, dotted)``
    the :class:`FunctionInfo` a call lands in when the target is another
    project module's function (or a method ``Class.method``), else None.

Modules register under their package-relative dotted name *and* under
``repro.<name>`` so absolute imports from either spelling resolve; the
double registration is harmless for fixture packages in tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lint.engine import ModuleContext, ProjectContext

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructors producing mutable containers, for module-state tracking.
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "Counter",
    "OrderedDict", "bytearray",
})


def module_name(relpath: str) -> str:
    """Dotted module name for a package-relative posix path."""
    parts = relpath[:-3].split("/") if relpath.endswith(".py") \
        else relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One top-level or class-level function of a project module."""

    module: "ModuleInfo"
    qualname: str            # "run_tasks" or "ResultCache.put"
    node: FunctionNode

    @property
    def fq(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    def param_names(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args
                + args.kwonlyargs]


@dataclass
class ModuleInfo:
    """One module of the project graph."""

    name: str                # package-relative dotted name ("perf.pool")
    ctx: ModuleContext
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Names bound at module level (imports, defs, classes, assignments).
    global_names: set[str] = field(default_factory=set)
    #: Module-level names bound to a mutable container literal/factory.
    mutable_globals: set[str] = field(default_factory=set)
    #: Module-level simple assignments, for seeding the global taint env.
    global_assigns: list[ast.Assign] = field(default_factory=list)


def _collect_imports(mod: ModuleInfo) -> None:
    pkg_parts = mod.name.split(".")[:-1]
    for node in ast.walk(mod.ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                mod.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = pkg_parts[:len(pkg_parts) - (node.level - 1)] \
                    if node.level > 1 else pkg_parts
                base = ".".join(base_parts + ([node.module]
                                              if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mod.imports[local] = f"{base}.{alias.name}" if base \
                    else alias.name


def _collect_functions(mod: ModuleInfo) -> None:
    for node in mod.ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[node.name] = FunctionInfo(mod, node.name, node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    qual = f"{node.name}.{item.name}"
                    mod.functions[qual] = FunctionInfo(mod, qual, item)


def _collect_globals(mod: ModuleInfo) -> None:
    for node in mod.ctx.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
            mod.global_assigns.append(node)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            mod.global_names.add(node.name)
            continue
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            mod.global_names.add(target.id)
            if _is_mutable_value(value):
                mod.mutable_globals.add(target.id)
    mod.global_names |= set(mod.imports)


def _is_mutable_value(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name is not None and \
            name.split(".")[-1] in _MUTABLE_CONSTRUCTORS
    return False


class ProjectGraph:
    """The modules of one lint run, indexed for name resolution."""

    def __init__(self) -> None:
        self.modules: list[ModuleInfo] = []
        self._by_alias: dict[str, ModuleInfo] = {}

    @classmethod
    def build(cls, project: ProjectContext) -> "ProjectGraph":
        graph = cls()
        for ctx in project.modules:
            if not ctx.relpath.endswith(".py"):
                continue
            mod = ModuleInfo(name=module_name(ctx.relpath), ctx=ctx)
            _collect_imports(mod)
            _collect_functions(mod)
            _collect_globals(mod)
            graph.modules.append(mod)
            graph._by_alias[mod.name] = mod
            graph._by_alias.setdefault(f"repro.{mod.name}", mod)
        return graph

    def module(self, alias: str) -> Optional[ModuleInfo]:
        return self._by_alias.get(alias)

    def canonical(self, mod: ModuleInfo, dotted: str) -> str:
        """Fully-qualify ``dotted`` as used inside ``mod``.

        The first segment resolves through the module's import table;
        a name defined at the top level of the module itself qualifies
        to ``<module>.<name>``.  Unknown names pass through unchanged
        (builtins, locals — the caller tracks those separately).
        """
        head, _, rest = dotted.partition(".")
        target = mod.imports.get(head)
        if target is None:
            if head in mod.functions or head in mod.global_names:
                target = f"{mod.name}.{head}"
            else:
                return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_function(self, mod: ModuleInfo,
                         dotted: str) -> Optional[FunctionInfo]:
        """The project function a dotted use refers to, if any."""
        fq = self.canonical(mod, dotted)
        parts = fq.split(".")
        # Longest module prefix wins: "a.b.C.m" may be module "a.b",
        # qualname "C.m", or module "a.b.C" (a package), qualname "m".
        for split in range(len(parts) - 1, 0, -1):
            owner = self._by_alias.get(".".join(parts[:split]))
            if owner is None:
                continue
            qualname = ".".join(parts[split:])
            info = owner.functions.get(qualname)
            if info is not None:
                return info
        return None
