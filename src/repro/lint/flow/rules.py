"""FLOW/RACE/RES rules over the whole-program taint analysis.

FLOW0xx generalize DET001/PAR001 beyond one file: RNG provenance is
checked through call chains (a nondeterministic seed threaded through a
helper in another module is caught at the construction site) and across
process boundaries.  RACE0xx guard what may be handed to a worker
process; RES0xx guard resource lifecycles (cache/journal write
discipline, file-handle scope, swallowed failures, unbounded retries).

The expensive part — :func:`repro.lint.flow.taint.analyze_project` —
runs once per lint invocation and is shared by every rule here via a
memo on the :class:`~repro.lint.engine.ProjectContext`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (Finding, ModuleContext, ProjectContext,
                               Rule, Severity, register)
from repro.lint.flow.taint import (CACHEPATH, HANDLE, NONDET, RNG,
                                   ProjectAnalysis, analyze_project,
                                   worker_state_mutation)

#: Modules that *implement* the blessed write primitives: the raw
#: ``open``/``os.replace`` sequences inside them are the discipline the
#: rest of the tree must call into.
_CACHE_PRIMITIVE_MODULES = frozenset({"perf.cache", "perf.journal"})

#: Single-call ``try`` bodies that an ``except Exception: pass`` may
#: legitimately wrap: best-effort cleanup/reporting on an object that is
#: already being torn down.
_CLEANUP_METHODS = frozenset({
    "close", "unlink", "join", "kill", "terminate", "cancel", "release",
    "flush", "shutdown", "send", "remove", "rmdir", "disconnect", "stop",
})


def _analysis_for(project: ProjectContext) -> ProjectAnalysis:
    cached = getattr(project, "_flow_analysis", None)
    if cached is None:
        cached = analyze_project(project)
        setattr(project, "_flow_analysis", cached)
    return cached


@register
class RngNondetSeedRule(Rule):
    """FLOW001: RNG seeds must be deterministic, through any call chain."""

    code = "FLOW001"
    name = "rng-nondet-seed"
    severity = Severity.ERROR
    rationale = (
        "A random.Random()/default_rng() seed that carries host entropy "
        "(wall clock, os.urandom, os.getpid, uuid, salted hash()) makes "
        "the run non-replayable even when every draw is local.  The "
        "taint engine follows the seed through assignments, f-strings "
        "and helper functions in other modules, so hiding time.time() "
        "behind a make_seed() helper does not evade the check.  Seeds "
        "must derive from a task/config/digest-keyed value "
        "(repro.perf.cache.fingerprint for string-keyed streams).")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis_for(project)
        for sink in analysis.sinks:
            if sink.kind == "seed" and NONDET in sink.taints:
                yield sink.module.ctx.finding(
                    self, sink.node,
                    f"RNG seed ({sink.detail or 'seed expression'}) is "
                    f"derived from host entropy: the stream cannot be "
                    f"replayed — seed from the task/config/digest key "
                    f"instead")


@register
class RngCrossesBoundaryRule(Rule):
    """FLOW002: an RNG instance must not cross a process boundary."""

    code = "FLOW002"
    name = "rng-crosses-process-boundary"
    severity = Severity.ERROR
    rationale = (
        "Shipping a random.Random instance into a worker (Process args, "
        "pool submit/map) forks its state: parent and worker draw from "
        "identical streams, and with --jobs N the interleaving decides "
        "who draws what — serial and parallel runs diverge.  Workers "
        "must construct their own stream from the task's digest (the "
        "pool re-seeds exactly this way in _worker_execute).")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis_for(project)
        for sink in analysis.sinks:
            if sink.kind == "boundary" and RNG in sink.taints:
                yield sink.module.ctx.finding(
                    self, sink.node,
                    f"an RNG instance is passed across the process "
                    f"boundary ({sink.detail}): the worker gets a forked "
                    f"copy of the stream state — pass the seed/digest "
                    f"and construct the stream inside the worker")


@register
class RngStreamFanoutRule(Rule):
    """FLOW003: one RNG instance must not serve several streams."""

    code = "FLOW003"
    name = "rng-stream-fanout"
    severity = Severity.ERROR
    rationale = (
        "Storing one random.Random instance once per loop iteration "
        "(dict of fault kinds, list of subsystems) couples every "
        "consumer to one shared stream: adding a draw to one kind "
        "shifts every other kind's values, which is exactly the "
        "fault-RNG coupling bug PR 2 fixed.  Construct one stream per "
        "slot, keyed by seed and slot name: "
        "random.Random(f\"{seed}:{kind}\").")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis_for(project)
        for event in analysis.fanouts:
            yield event.module.ctx.finding(
                self, event.node,
                f"RNG instance {event.name!r} is created outside the "
                f"loop but stored once per iteration: every slot shares "
                f"one stream — construct a per-slot "
                f"random.Random(f\"{{seed}}:{{slot}}\") instead")


@register
class UnpicklableWorkerArgRule(Rule):
    """RACE001: worker arguments must survive pickling."""

    code = "RACE001"
    name = "unpicklable-worker-arg"
    severity = Severity.ERROR
    rationale = (
        "Open file handles, locks, sockets and the process-local "
        "observability objects (Tracer, StreamingSink, MetricsRegistry) "
        "either fail to pickle into a worker or — worse on fork-based "
        "start methods — arrive as silently diverging copies whose "
        "buffered state never returns to the parent.  Workers must "
        "receive plain task data and return payloads; the parent owns "
        "every handle and merges metrics snapshots.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis_for(project)
        for sink in analysis.sinks:
            if sink.kind == "boundary" and HANDLE in sink.taints:
                yield sink.module.ctx.finding(
                    self, sink.node,
                    f"a handle-like object (open file, lock, tracer or "
                    f"metrics registry) is passed across the process "
                    f"boundary ({sink.detail}): it cannot survive "
                    f"pickling — ship plain data and rebuild the object "
                    f"inside the worker")


@register
class WorkerMutatesModuleStateRule(Rule):
    """RACE002: worker targets must not mutate module-level state."""

    code = "RACE002"
    name = "worker-mutates-module-state"
    severity = Severity.ERROR
    rationale = (
        "A function used as a Process target or pool submission that "
        "mutates module-level state (a global rebind or an "
        "append/update on a module-level container, directly or via a "
        "same-module helper) writes into a copy that dies with the "
        "worker: the parent and every sibling worker never observe it, "
        "so serial and parallel runs diverge silently.  Return the data "
        "instead and let the parent aggregate it.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis_for(project)
        seen: set[tuple[str, int]] = set()
        for sink in analysis.sinks:
            if sink.kind != "boundary" or sink.target is None:
                continue
            mutation = worker_state_mutation(analysis.graph, sink.target)
            if mutation is None:
                continue
            key = (sink.module.ctx.path, getattr(sink.node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            yield sink.module.ctx.finding(
                self, sink.node,
                f"worker target {sink.target.fq}() mutates module-level "
                f"state (line {getattr(mutation, 'lineno', '?')}): the "
                f"mutation is invisible to the parent and to other "
                f"workers — return the data and aggregate in the parent")


@register
class RawCacheWriteRule(Rule):
    """RES001: cache/journal paths are written only via the primitives."""

    code = "RES001"
    name = "raw-cache-write"
    severity = Severity.ERROR
    rationale = (
        "A plain open(.., 'w')/write_text on a path under .repro-cache/ "
        "or a journal directory can tear: a crash mid-write leaves a "
        "half-entry that later runs read as corrupt (or worse, as "
        "valid).  Every write there must go through atomic_write_text "
        "(mkstemp + os.replace) or RunJournal.append (append + fsync); "
        "the taint engine tracks cache paths through default_cache_dir, "
        "ResultCache/RunJournal attributes, Path arithmetic and string "
        "literals.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis_for(project)
        for sink in analysis.sinks:
            if sink.kind != "cachewrite":
                continue
            if sink.module.name in _CACHE_PRIMITIVE_MODULES:
                continue
            yield sink.module.ctx.finding(
                self, sink.node,
                f"raw write to a cache/journal path ({sink.detail}): a "
                f"crash mid-write tears the entry — use "
                f"repro.perf.cache.atomic_write_text or "
                f"RunJournal.append")


@register
class OpenOutsideWithRule(Rule):
    """RES002: file handles live inside ``with`` (or are closed/returned)."""

    code = "RES002"
    name = "open-outside-with"
    severity = Severity.ERROR
    rationale = (
        "An open() whose handle is neither managed by a with-block, nor "
        "closed in the same scope, nor returned to a caller that owns "
        "it, leaks a file descriptor per call — under the campaign "
        "runner's retry loops that is an eventual EMFILE crash, and on "
        "Windows it blocks the atomic os.replace the cache depends on.")

    _OPEN_NAMES = frozenset({"open", "io.open", "gzip.open"})

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for scope in self._scopes(module.tree):
            yield from self._check_scope(module, scope)

    def _scopes(self, tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_scope(self, module: ModuleContext,
                     scope: ast.AST) -> Iterator[Finding]:
        opens: list[tuple[ast.Call, ast.AST]] = []
        closed: set[str] = set()
        with_managed: set[int] = set()
        parents: dict[int, ast.AST] = {}
        for node in self._walk_scope(scope):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
            if isinstance(node, ast.withitem):
                for call in ast.walk(node.context_expr):
                    with_managed.add(id(call))
                if isinstance(node.context_expr, ast.Name):
                    closed.add(node.context_expr.id)
            elif isinstance(node, ast.Call):
                if self._is_open(node):
                    opens.append((node, scope))
                if isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "close" and \
                        isinstance(node.func.value, ast.Name):
                    closed.add(node.func.value.id)
        for call, _ in opens:
            if id(call) in with_managed:
                continue
            parent = parents.get(id(call))
            if isinstance(parent, ast.Return):
                continue
            if isinstance(parent, ast.Assign) and all(
                    isinstance(t, ast.Name) and t.id in closed
                    for t in parent.targets):
                continue
            if isinstance(parent, (ast.Attribute,)):
                continue
            yield module.finding(
                self, call,
                "open() outside a with-block and never closed in this "
                "scope: the descriptor leaks — use 'with open(...) as "
                "fh:' (or close it on every path)")

    def _walk_scope(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without descending into nested functions."""
        stack: list[ast.AST] = [scope]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)) and \
                        node is not scope:
                    continue
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue
                stack.append(child)

    def _is_open(self, call: ast.Call) -> bool:
        if isinstance(call.func, ast.Name):
            return call.func.id == "open"
        if isinstance(call.func, ast.Attribute):
            base = call.func.value
            return isinstance(base, ast.Name) and \
                f"{base.id}.{call.func.attr}" in self._OPEN_NAMES
        return False


@register
class SwallowedExceptionRule(Rule):
    """RES003: ``except Exception: pass`` must not hide real failures."""

    code = "RES003"
    name = "swallowed-exception"
    severity = Severity.ERROR
    rationale = (
        "A broad except whose body is just pass/continue makes worker "
        "crashes, torn cache entries and task failures vanish: the "
        "campaign reports success over silently missing work.  The one "
        "tolerated shape is a single best-effort cleanup call "
        "(conn.close(), proc.kill(), ...) in the try body — tearing "
        "down an object that is already failing.  Everything else must "
        "narrow the exception, record the failure, or re-raise.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not self._broad(handler):
                    continue
                if not all(isinstance(s, (ast.Pass, ast.Continue))
                           for s in handler.body):
                    continue
                if self._is_cleanup(node.body):
                    continue
                yield module.finding(
                    self, handler,
                    "broad except swallows the failure: a worker crash "
                    "or task failure here disappears from the run — "
                    "narrow the exception, record it, or re-raise")

    @staticmethod
    def _broad(handler: ast.ExceptHandler) -> bool:
        def broad_name(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Name) and \
                expr.id in ("Exception", "BaseException")
        if handler.type is None:
            return True
        if broad_name(handler.type):
            return True
        return isinstance(handler.type, ast.Tuple) and \
            any(broad_name(e) for e in handler.type.elts)

    @staticmethod
    def _is_cleanup(body: list[ast.stmt]) -> bool:
        if len(body) != 1 or not isinstance(body[0], ast.Expr):
            return False
        call = body[0].value
        return isinstance(call, ast.Call) and \
            isinstance(call.func, ast.Attribute) and \
            call.func.attr in _CLEANUP_METHODS


@register
class UnboundedRetryLoopRule(Rule):
    """RES004: retry loops must have an exit."""

    code = "RES004"
    name = "unbounded-retry-loop"
    severity = Severity.ERROR
    rationale = (
        "A 'while True' that catches-and-continues with no break, "
        "return or raise anywhere in the body retries a permanently "
        "failing operation forever — a poison task spins a worker at "
        "100% CPU instead of hitting the quarantine path.  Bound the "
        "loop (RetryPolicy.max_attempts) or make a terminal failure "
        "escape it.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            if not (isinstance(node.test, ast.Constant)
                    and bool(node.test.value)):
                continue
            if not self._has_swallowing_handler(node):
                continue
            if self._has_exit(node):
                continue
            yield module.finding(
                self, node,
                "unbounded retry: 'while True' swallows exceptions and "
                "has no break/return/raise — a permanent failure loops "
                "forever instead of reaching quarantine")

    @staticmethod
    def _has_swallowing_handler(loop: ast.While) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if all(isinstance(s, (ast.Pass, ast.Continue))
                           for s in handler.body):
                        return True
        return False

    @staticmethod
    def _has_exit(loop: ast.While) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, (ast.Break, ast.Return, ast.Raise)):
                return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
        return False
