"""Forward dataflow/taint analysis with interprocedural summaries.

The engine tracks five taint kinds through assignments, containers,
f-strings, attribute loads and calls:

``rng``
    a ``random.Random`` / numpy generator instance;
``nondet``
    a value derived from host entropy — wall clock, ``os.urandom``,
    ``os.getpid``, ``uuid``, salted ``hash()`` — which must never reach
    an RNG seed;
``handle``
    an object that cannot survive pickling into a worker — open files,
    locks, sockets, ``Tracer``/``StreamingSink``/``MetricsRegistry``;
``cachepath``
    a filesystem path under ``.repro-cache/`` or a journal directory,
    whose writes must go through ``atomic_write_text`` or
    ``RunJournal.append``;
``executor``
    a process-pool / multiprocessing context, whose ``submit``/``map``/
    ``Process`` calls are the process boundary.

Each function is analyzed with its parameters carrying synthetic taints
(``@0``, ``@1`` …); where a synthetic taint reaches an RNG-seed position,
a process boundary, or the return value, the function's
:class:`Summary` records it, and callers substitute their argument
taints at every call site.  Summaries iterate to a fixed point over the
project (bounded passes), so a nondeterministic seed threaded through
two helpers in different modules is still caught at its origin.

The analysis is a *may* analysis without aliasing or per-element
container tracking: a tainted element taints the whole container.  That
trade keeps it fast (single-digit milliseconds per module) and — tuned
against this codebase — free of false positives at the sinks the
FLOW/RACE/RES rules watch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.engine import ProjectContext
from repro.lint.flow.graph import (FunctionInfo, FunctionNode, ModuleInfo,
                                   ProjectGraph, dotted_name)

RNG = "rng"
NONDET = "nondet"
HANDLE = "handle"
CACHEPATH = "cachepath"
EXECUTOR = "executor"

#: RNG constructors: calling one yields an ``rng`` value and its seed
#: argument is a seed sink.
RNG_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator",
})

#: Calls that re-seed a global RNG: seed sink, no value produced.
SEED_CALLS = frozenset({"random.seed", "numpy.random.seed"})

#: Host-entropy sources.  ``hash`` is here because string hashing is
#: salted per process unless PYTHONHASHSEED is pinned — use
#: ``repro.perf.cache.fingerprint`` for stable digests.
NONDET_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "os.urandom", "os.getpid", "uuid.uuid1",
    "uuid.uuid4", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "secrets.token_bytes", "secrets.token_hex",
    "secrets.randbits", "secrets.randbelow", "hash", "id",
})

#: Values that cannot cross a pickling boundary into a worker process.
HANDLE_CALLS = frozenset({
    "open", "io.open", "gzip.open", "bz2.open", "lzma.open",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile",
    "socket.socket", "sqlite3.connect",
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})

#: Project types that hold process-local buffers/streams: constructing
#: one yields a ``handle`` (they must not be shipped to workers; workers
#: return event/metric *payloads* instead, which the parent merges).
PROJECT_HANDLE_TYPES = frozenset({
    "repro.obs.tracer.Tracer", "repro.obs.tracer.StreamingSink",
    "repro.obs.metrics.MetricsRegistry",
})

#: Producers of paths under the content-addressed cache / journal dirs.
CACHEPATH_CALLS = frozenset({
    "repro.perf.cache.default_cache_dir",
    "repro.perf.cache.ResultCache",
    "repro.perf.journal.RunJournal",
})

#: Substrings marking a literal as a cache/journal path.
CACHEPATH_LITERALS = (".repro-cache", "journal.jsonl")

#: Process-pool / multiprocessing-context producers.
EXECUTOR_CALLS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.get_context", "multiprocessing.Pool",
})

#: Direct process constructors (boundary without an executor receiver).
BOUNDARY_CONSTRUCTORS = frozenset({
    "multiprocessing.Process", "multiprocessing.context.Process",
})

#: Executor attributes whose call is the process boundary.
BOUNDARY_ATTRS = frozenset({
    "submit", "map", "apply", "apply_async", "starmap", "Process",
})

#: Pure converters that pass ``nondet``/``cachepath`` taint through.
_PASSTHROUGH_CALLS = frozenset({
    "str", "int", "float", "repr", "abs", "round", "format",
    "pathlib.Path", "pathlib.PurePath", "os.fspath", "os.path.join",
    "os.path.abspath", "os.path.expanduser",
})

#: ``Path`` methods that yield another path from a path receiver.
_PATH_METHODS = frozenset({
    "with_suffix", "with_name", "with_stem", "joinpath", "resolve",
    "absolute", "expanduser", "relative_to", "glob", "rglob", "iterdir",
})

#: File-writing ``Path``/file methods (cache-write sinks on a
#: ``cachepath`` receiver).
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: Mutating container methods, for worker module-state detection.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "pop", "popitem", "remove",
    "discard", "clear", "insert", "setdefault", "appendleft",
})

_PROPAGATED = frozenset({NONDET, CACHEPATH})


@dataclass
class Summary:
    """What a function does with taints, as seen from a call site."""

    returns: set[str] = field(default_factory=set)
    returns_params: set[int] = field(default_factory=set)
    seed_params: set[int] = field(default_factory=set)
    boundary_params: set[int] = field(default_factory=set)

    def same(self, other: "Summary") -> bool:
        return (self.returns == other.returns
                and self.returns_params == other.returns_params
                and self.seed_params == other.seed_params
                and self.boundary_params == other.boundary_params)


@dataclass
class SinkEvent:
    """A taint set observed at a rule-relevant sink."""

    kind: str                # "seed" | "boundary" | "cachewrite"
    node: ast.AST
    module: ModuleInfo
    func: FunctionInfo
    taints: set[str]
    detail: str = ""
    #: For boundary sinks: the worker callable, when it resolves.
    target: Optional[FunctionInfo] = None


@dataclass
class FanoutEvent:
    """One RNG instance stored per-iteration across a loop/comprehension."""

    node: ast.AST
    module: ModuleInfo
    func: FunctionInfo
    name: str


@dataclass
class ProjectAnalysis:
    """The taint engine's output, consumed by the FLOW/RACE/RES rules."""

    graph: ProjectGraph
    summaries: dict[str, Summary] = field(default_factory=dict)
    sinks: list[SinkEvent] = field(default_factory=list)
    fanouts: list[FanoutEvent] = field(default_factory=list)
    #: ``self.<attr>`` taints per (module name, class name).
    class_envs: dict[tuple[str, str], dict[str, set[str]]] = \
        field(default_factory=dict)
    #: Module-level name taints per module name.
    global_envs: dict[str, dict[str, set[str]]] = field(default_factory=dict)


def _real(taints: set[str]) -> set[str]:
    return {t for t in taints if not t.startswith("@")}


def _params_in(taints: set[str]) -> set[int]:
    return {int(t[1:]) for t in taints if t.startswith("@")}


class _FunctionAnalyzer:
    """One pass of the abstract interpreter over one function body."""

    def __init__(self, analysis: ProjectAnalysis, mod: ModuleInfo,
                 func: FunctionInfo, record: bool) -> None:
        self.analysis = analysis
        self.graph = analysis.graph
        self.mod = mod
        self.func = func
        self.record = record
        self.env: dict[str, set[str]] = {}
        self.return_taints: set[str] = set()
        self.summary = Summary()
        self.class_name = func.qualname.split(".")[0] \
            if "." in func.qualname else None
        self.global_env = analysis.global_envs.get(mod.name, {})
        self.class_env = analysis.class_envs.setdefault(
            (mod.name, self.class_name), {}) if self.class_name else {}

    # -- driving ----------------------------------------------------------------

    def run(self) -> Summary:
        for i, name in enumerate(self.func.param_names()):
            self.env[name] = {f"@{i}"}
        # Two passes: the second sees loop-carried bindings from the
        # first; sinks are recorded only on the second.
        saved_record, self.record = self.record, False
        self._exec_body(self.func.node.body)
        self.record = saved_record
        self.return_taints = set()
        self._exec_body(self.func.node.body)
        self.summary.returns = _real(self.return_taints)
        self.summary.returns_params = _params_in(self.return_taints)
        return self.summary

    # -- statements -------------------------------------------------------------

    def _exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env.setdefault(stmt.target.id, set()).update(taints)
            else:
                self._bind(stmt.target, taints)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taints |= self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self.eval(stmt.iter))
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is a closure over the current environment:
            # analyze its body with the captured taints so boundary
            # calls inside launcher helpers (the resilient executor's
            # _launch) still see the executor/RNG taints.  Its params
            # are unknown, and its bindings stay local to it.
            self._exec_nested(stmt)

    def _exec_nested(self, func: FunctionNode) -> None:
        saved = self.env
        self.env = {name: set(taints) for name, taints in saved.items()}
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            self.env[arg.arg] = set()
        self._exec_body(func.body)
        self.env = saved

    def _bind(self, target: ast.expr, taints: set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taints)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                key = f"self.{target.attr}"
                self.env[key] = set(taints)
                if self.class_name:
                    self.class_env[key] = set(taints)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                self.env.setdefault(base.id, set()).update(taints)

    # -- expressions ------------------------------------------------------------

    def eval(self, expr: ast.expr) -> set[str]:
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return set(self.env[expr.id])
            return set(self.global_env.get(expr.id, ()))
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, str) and any(
                    mark in expr.value for mark in CACHEPATH_LITERALS):
                return {CACHEPATH}
            return set()
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.JoinedStr):
            taints: set[str] = set()
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    taints |= self.eval(value.value)
            return taints & (_PROPAGATED | _synthetic(taints))
        if isinstance(expr, ast.BinOp):
            taints = self.eval(expr.left) | self.eval(expr.right)
            return taints & (_PROPAGATED | _synthetic(taints))
        if isinstance(expr, ast.BoolOp):
            taints = set()
            for value in expr.values:
                taints |= self.eval(value)
            return taints
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            return self.eval(expr.body) | self.eval(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            taints = set()
            for element in expr.elts:
                taints |= self.eval(element)
            return taints
        if isinstance(expr, ast.Dict):
            taints = set()
            for value in expr.values:
                if value is not None:
                    taints |= self.eval(value)
            return taints
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        if isinstance(expr, ast.Await):
            return self.eval(expr.value)
        if isinstance(expr, ast.Subscript):
            self.eval(expr.slice)
            return self.eval(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp([expr.elt], expr.generators)
        if isinstance(expr, ast.DictComp):
            return self._eval_comp([expr.key, expr.value], expr.generators)
        if isinstance(expr, ast.Compare):
            return set()
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.NamedExpr):
            taints = self.eval(expr.value)
            self._bind(expr.target, taints)
            return taints
        return set()

    def _eval_comp(self, results: list[ast.expr],
                   generators: list[ast.comprehension]) -> set[str]:
        for gen in generators:
            self._bind(gen.target, self.eval(gen.iter))
        taints: set[str] = set()
        for result in results:
            taints |= self.eval(result)
        return taints

    def _eval_attribute(self, expr: ast.Attribute) -> set[str]:
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            key = f"self.{expr.attr}"
            if key in self.env:
                return set(self.env[key])
            return set(self.class_env.get(key, ()))
        value_taints = self.eval(expr.value)
        # Path-like attribute loads (``cache.directory``, ``p.parent``)
        # keep cachepath taint; other kinds do not survive attribute
        # loads (``rng.random`` is a method, not an RNG).
        return value_taints & ({CACHEPATH} | _synthetic(value_taints))

    # -- calls ------------------------------------------------------------------

    def _eval_call(self, call: ast.Call) -> set[str]:
        arg_taints = [self.eval(arg) for arg in call.args]
        kw_taints = {kw.arg: self.eval(kw.value) for kw in call.keywords}
        dotted = dotted_name(call.func)
        canon = self.graph.canonical(self.mod, dotted) if dotted else None
        # Local rebinds shadow imports: ``open = cache.get`` is nobody's
        # idiom here, so the canonical name is trusted as-is.

        if canon in RNG_CONSTRUCTORS or canon in SEED_CALLS:
            seed_taints: set[str] = set()
            for taints in arg_taints:
                seed_taints |= taints
            for taints in kw_taints.values():
                seed_taints |= taints
            self._sink("seed", call, seed_taints,
                       detail=canon or "")
            return {RNG} if canon in RNG_CONSTRUCTORS else set()
        if canon in NONDET_CALLS:
            return {NONDET}
        if canon in HANDLE_CALLS or canon in PROJECT_HANDLE_TYPES:
            if canon in ("open", "io.open", "gzip.open"):
                self._check_open(call, arg_taints, kw_taints)
            return {HANDLE}
        if canon in CACHEPATH_CALLS:
            return {CACHEPATH}
        if canon in EXECUTOR_CALLS:
            return {EXECUTOR}
        if canon in BOUNDARY_CONSTRUCTORS:
            self._boundary_process(call, kw_taints)
            return set()

        if isinstance(call.func, ast.Attribute):
            receiver_taints = self.eval(call.func.value)
            attr = call.func.attr
            if EXECUTOR in receiver_taints and attr in BOUNDARY_ATTRS:
                if attr == "Process":
                    self._boundary_process(call, kw_taints)
                else:
                    self._boundary_submit(call, attr, arg_taints)
                return set()
            if CACHEPATH in receiver_taints:
                if attr in _WRITE_METHODS:
                    self._sink("cachewrite", call,
                               receiver_taints | {CACHEPATH},
                               detail=f".{attr}()")
                    return set()
                if attr in _PATH_METHODS:
                    return {CACHEPATH}

        resolved = self._resolve_callee(call)
        if resolved is not None:
            return self._apply_summary(call, resolved, arg_taints,
                                       kw_taints)

        if canon in _PASSTHROUGH_CALLS:
            taints = set()
            for arg in arg_taints:
                taints |= arg
            return taints & (_PROPAGATED | _synthetic(taints))
        return set()

    def _resolve_callee(self, call: ast.Call) -> Optional[FunctionInfo]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        if dotted.startswith("self.") and self.class_name:
            qual = f"{self.class_name}.{dotted[5:]}"
            return self.mod.functions.get(qual)
        return self.graph.resolve_function(self.mod, dotted)

    def _apply_summary(self, call: ast.Call, callee: FunctionInfo,
                       arg_taints: list[set[str]],
                       kw_taints: dict[Optional[str], set[str]],
                       ) -> set[str]:
        summary = self.analysis.summaries.get(callee.fq)
        if summary is None:
            return set()
        params = callee.param_names()
        offset = 1 if params and params[0] in ("self", "cls") and \
            isinstance(call.func, ast.Attribute) else 0
        by_index: dict[int, set[str]] = {}
        for pos, taints in enumerate(arg_taints):
            by_index[pos + offset] = taints
        for name, taints in kw_taints.items():
            if name in params:
                by_index[params.index(name)] = taints
        result = set(summary.returns)
        for index in summary.returns_params:
            result |= by_index.get(index, set())
        for index in summary.seed_params:
            self._sink("seed", call, by_index.get(index, set()),
                       detail=f"via {callee.fq}()")
        for index in summary.boundary_params:
            self._sink("boundary", call, by_index.get(index, set()),
                       detail=f"via {callee.fq}()")
        return result

    # -- sinks ------------------------------------------------------------------

    def _sink(self, kind: str, node: ast.AST, taints: set[str],
              detail: str = "",
              target: Optional[FunctionInfo] = None) -> None:
        for index in _params_in(taints):
            if kind == "seed":
                self.summary.seed_params.add(index)
            elif kind == "boundary":
                self.summary.boundary_params.add(index)
        if self.record:
            self.analysis.sinks.append(SinkEvent(
                kind=kind, node=node, module=self.mod, func=self.func,
                taints=set(taints), detail=detail, target=target))

    def _check_open(self, call: ast.Call, arg_taints: list[set[str]],
                    kw_taints: dict[Optional[str], set[str]]) -> None:
        mode = "r"
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            mode = str(call.args[1].value)
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        if not any(flag in mode for flag in "wax+"):
            return
        path_taints = arg_taints[0] if arg_taints else \
            kw_taints.get("file", set())
        if CACHEPATH in path_taints:
            self._sink("cachewrite", call, path_taints,
                       detail=f"open(..., {mode!r})")

    def _boundary_target(self, expr: ast.expr) -> Optional[FunctionInfo]:
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        return self.graph.resolve_function(self.mod, dotted)

    def _boundary_process(self, call: ast.Call,
                          kw_taints: dict[Optional[str], set[str]]) -> None:
        target: Optional[FunctionInfo] = None
        arg_nodes: list[ast.expr] = []
        for kw in call.keywords:
            if kw.arg == "target":
                target = self._boundary_target(kw.value)
            elif kw.arg == "args" and isinstance(kw.value,
                                                 (ast.Tuple, ast.List)):
                arg_nodes.extend(kw.value.elts)
            elif kw.arg == "kwargs" and isinstance(kw.value, ast.Dict):
                arg_nodes.extend(v for v in kw.value.values
                                 if v is not None)
        taints: set[str] = set()
        for node in arg_nodes:
            taints |= self.eval(node)
        self._sink("boundary", call, taints, detail="Process(...)",
                   target=target)

    def _boundary_submit(self, call: ast.Call, attr: str,
                         arg_taints: list[set[str]]) -> None:
        target = self._boundary_target(call.args[0]) if call.args else None
        taints: set[str] = set()
        for arg in arg_taints[1:]:
            taints |= arg
        for kw in call.keywords:
            taints |= self.eval(kw.value)
        self._sink("boundary", call, taints, detail=f".{attr}()",
                   target=target)


def _synthetic(taints: set[str]) -> set[str]:
    return {t for t in taints if t.startswith("@")}


def _module_global_env(analysis: ProjectAnalysis,
                       mod: ModuleInfo) -> dict[str, set[str]]:
    """Taints of module-level assignments (no params, best effort)."""
    # Reuse the function analyzer with a synthetic module-level "function".
    holder = ast.FunctionDef(
        name="<module>", args=ast.arguments(
            posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
            defaults=[]),
        body=list(mod.global_assigns), decorator_list=[], returns=None)
    info = FunctionInfo(mod, "<module>", holder)
    analyzer = _FunctionAnalyzer(analysis, mod, info, record=False)
    analyzer.run()
    return {name: taints for name, taints in analyzer.env.items()
            if _real(taints)}


def _collect_fanouts(analysis: ProjectAnalysis, mod: ModuleInfo,
                     func: FunctionInfo,
                     env: dict[str, set[str]]) -> None:
    """FLOW003 evidence: one RNG instance stored once per iteration."""

    def rng_name(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and RNG in env.get(expr.id, set()):
            return expr.id
        return None

    def bound_inside(scope: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names.update(e.id for e in target.elts
                                 if isinstance(e, ast.Name))
        return names

    def scan_loop(loop: ast.AST) -> None:
        inner = bound_inside(loop)
        for node in ast.walk(loop):
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and isinstance(
                    node.targets[0], (ast.Subscript, ast.Attribute)):
                value = node.value
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and \
                    node.func.attr in ("append", "add") and node.args:
                value = node.args[0]
            name = rng_name(value) if value is not None else None
            if name is not None and name not in inner:
                analysis.fanouts.append(FanoutEvent(
                    node=node, module=mod, func=func, name=name))

    for node in ast.walk(func.node):
        if isinstance(node, (ast.For, ast.While)):
            scan_loop(node)
        elif isinstance(node, ast.DictComp):
            name = rng_name(node.value)
            if name is not None and name not in bound_inside(node):
                analysis.fanouts.append(FanoutEvent(
                    node=node, module=mod, func=func, name=name))
        elif isinstance(node, (ast.ListComp, ast.SetComp)):
            name = rng_name(node.elt)
            if name is not None and name not in bound_inside(node):
                analysis.fanouts.append(FanoutEvent(
                    node=node, module=mod, func=func, name=name))
        elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute) and \
                node.func.attr == "fromkeys" and len(node.args) == 2:
            name = rng_name(node.args[1])
            if name is not None:
                analysis.fanouts.append(FanoutEvent(
                    node=node, module=mod, func=func, name=name))


#: Summary-iteration passes.  Call chains deeper than this many hops
#: between modules stop propagating; three covers everything real here.
_PASSES = 3


def analyze_project(project: ProjectContext) -> ProjectAnalysis:
    """Run the taint engine over every module of one lint run."""
    graph = ProjectGraph.build(project)
    analysis = ProjectAnalysis(graph=graph)
    for round_no in range(_PASSES):
        final = round_no == _PASSES - 1
        analysis.sinks = []
        analysis.fanouts = []
        for mod in graph.modules:
            analysis.global_envs[mod.name] = _module_global_env(
                analysis, mod)
        for mod in graph.modules:
            for func in mod.functions.values():
                analyzer = _FunctionAnalyzer(analysis, mod, func,
                                             record=final)
                summary = analyzer.run()
                analysis.summaries[func.fq] = summary
                if final:
                    _collect_fanouts(analysis, mod, func, analyzer.env)
    return analysis


def worker_state_mutation(graph: ProjectGraph,
                          worker: FunctionInfo) -> Optional[ast.AST]:
    """A statement in ``worker`` (or a direct same-module callee) that
    mutates module-level state — invisible to other workers and to the
    parent after fork, so a process-boundary hazard (RACE002)."""
    seen: set[str] = set()
    queue = [worker]
    depth = 0
    while queue and depth < 2:
        next_queue: list[FunctionInfo] = []
        for info in queue:
            if info.fq in seen:
                continue
            seen.add(info.fq)
            found = _mutation_in(info)
            if found is not None:
                return found
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    dotted = dotted_name(node.func)
                    if dotted and "." not in dotted:
                        callee = info.module.functions.get(dotted)
                        if callee is not None:
                            next_queue.append(callee)
        queue = next_queue
        depth += 1
    return None


def _mutation_in(info: FunctionInfo) -> Optional[ast.AST]:
    mod = info.module
    declared_global: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    local = {a for a in info.param_names()}
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global:
                        return node
                    local.add(target.id)
                elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name):
                    name = target.value.id
                    if name in mod.mutable_globals and name not in local:
                        return node
        elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute) and \
                node.func.attr in _MUTATOR_METHODS:
            base = node.func.value
            if isinstance(base, ast.Name) and \
                    base.id in mod.mutable_globals and base.id not in local:
                return node
    return None
