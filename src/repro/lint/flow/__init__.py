"""Whole-program flow analysis for ``repro lint``.

The per-module rules (DET/PAR/RES syntax checks) see one file at a time;
this package sees the project: :mod:`repro.lint.flow.graph` builds an
import-resolved module graph and function index over every linted
module, :mod:`repro.lint.flow.taint` runs a forward dataflow/taint
analysis with interprocedural function summaries on top of it, and
:mod:`repro.lint.flow.rules` turns the recorded taint sinks into the
FLOW/RACE/RES rule families (RNG provenance across functions and
process boundaries, unpicklable worker captures, cache/journal write
discipline).

The analysis is deliberately approximate — may-taint, no aliasing, no
container element tracking — and tuned so that everything it *does*
report is a real hazard in this codebase's execution model (seeded
determinism, forked workers, content-addressed cache).
"""

from repro.lint.flow.graph import ProjectGraph
from repro.lint.flow.taint import ProjectAnalysis, analyze_project

__all__ = ["ProjectGraph", "ProjectAnalysis", "analyze_project"]
