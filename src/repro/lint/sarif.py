"""SARIF 2.1.0 rendering of lint findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning, VS Code's SARIF viewer and most CI dashboards ingest, so
``python -m repro lint --output sarif`` makes the simulator-specific
rules first-class citizens next to general-purpose linters.

The mapping is deliberately small and lossless:

* every registered rule becomes a ``tool.driver.rules`` entry carrying
  its code, kebab name and full rationale (shown by viewers on hover);
* every finding becomes a ``result`` with the standard physical
  location (1-based line, 1-based column) and the same stable
  fingerprint the committed baseline uses, under
  ``partialFingerprints["reproLint/v1"]`` — so a SARIF consumer
  deduplicates findings across unrelated edits exactly like the
  baseline does.

Findings already filtered by the baseline are simply absent: the SARIF
document describes what would fail the gate, which is what a code
scanning alert should be.
"""

from __future__ import annotations

import json

from repro.lint.baseline import fingerprints
from repro.lint.engine import Finding, Rule, Severity, all_rules

#: SARIF schema pinned by the output documents.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Key under ``partialFingerprints`` carrying the baseline fingerprint.
FINGERPRINT_KEY = "reproLint/v1"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule: Rule) -> dict:
    first_line = rule.rationale.split("\n", 1)[0] if rule.rationale else ""
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": first_line or rule.name},
        "fullDescription": {"text": rule.rationale or rule.name},
        "help": {"text": f"Suppress inline with "
                         f"`# repro-lint: disable={rule.code}` plus a "
                         f"justification, or grandfather via the "
                         f"committed baseline (docs/STATIC_ANALYSIS.md)."},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _result(finding: Finding, fingerprint: str,
            rule_index: dict[str, int]) -> dict:
    uri = (finding.relpath or finding.path).replace("\\", "/")
    result: dict = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1},
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: fingerprint},
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    return result


def render_sarif(findings: list[Finding]) -> str:
    """A complete SARIF 2.1.0 document for one lint run, as a string."""
    rules = all_rules()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/repro/docs/STATIC_ANALYSIS.md",
                    "rules": [_rule_descriptor(rule) for rule in rules],
                },
            },
            "results": [
                _result(finding, fingerprint, rule_index)
                for finding, fingerprint
                in zip(findings, fingerprints(findings))
            ],
        }],
    }
    return json.dumps(document, indent=2)
