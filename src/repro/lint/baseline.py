"""Committed baseline of grandfathered lint findings.

A baseline lets the lint gate land before every historical finding is
fixed: known findings are fingerprinted into a committed JSON file and
stop failing the build, while anything *new* still does.  Fingerprints
use the rule code, the package-relative path, the stripped source line
and an occurrence index — not the line number — so unrelated edits above
a finding do not invalidate the baseline.

Every entry carries a ``why`` field.  ``--write-baseline`` fills it with
a placeholder that reviewers are expected to replace with an actual
justification; an empty baseline (the goal state) is the file holding
``{"findings": []}``.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.lint.engine import Finding

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_PLACEHOLDER_WHY = "TODO: justify why this finding is grandfathered"


def _key(finding: Finding) -> str:
    path = finding.relpath or finding.path
    return "|".join((finding.rule, path, finding.source_line))


def fingerprints(findings: Iterable[Finding]) -> list[str]:
    """Stable fingerprints, disambiguating repeated identical lines."""
    seen: Counter[str] = Counter()
    result = []
    for finding in findings:
        key = _key(finding)
        result.append(f"{key}|{seen[key]}")
        seen[key] += 1
    return result


@dataclass
class Baseline:
    """The set of grandfathered finding fingerprints."""

    entries: dict[str, str]  # fingerprint -> justification

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries={})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls.empty()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries: dict[str, str] = {}
        for item in data.get("findings", []):
            entries[item["fingerprint"]] = item.get("why", "")
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "comment": ("Grandfathered `repro lint` findings; see "
                        "docs/STATIC_ANALYSIS.md.  Replace every "
                        "placeholder `why` with a real justification."),
            "findings": [{"fingerprint": fp, "why": why}
                         for fp, why in sorted(self.entries.items())],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries={fp: _PLACEHOLDER_WHY
                            for fp in fingerprints(findings)})

    def filter_new(self, findings: list[Finding]) -> list[Finding]:
        """Findings not covered by the baseline, in input order."""
        fps = fingerprints(findings)
        return [finding for finding, fp in zip(findings, fps)
                if fp not in self.entries]
