"""Core of ``repro lint``: rule registry, module model, and the runner.

The engine is deliberately small.  A :class:`Rule` subclass registers
itself with :func:`register` and implements either

``check_module(module)``
    called once per source file with a parsed :class:`ModuleContext`, or

``check_project(project)``
    called once per run with the whole :class:`ProjectContext` — for
    cross-module invariants like config-field drift.

Both yield :class:`Finding` objects.  The runner applies inline
suppressions (``# repro-lint: disable=RULE``), file-level suppressions
(``# repro-lint: disable-file=RULE``), and the committed baseline (see
:mod:`repro.lint.baseline`) before anything reaches the report.

Rules are identified by a short code (``DET001``) and a kebab-case name
(``unseeded-rng``); suppressions accept either spelling.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional


class Severity(enum.Enum):
    """How a finding affects the exit status."""

    ERROR = "error"      # fails the run (unless baselined/suppressed)
    WARNING = "warning"  # reported, never fails the run

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str            # rule code, e.g. "DET001"
    rule_name: str       # kebab-case name, e.g. "unseeded-rng"
    severity: Severity
    path: str            # path as given to the runner
    line: int            # 1-based
    col: int             # 0-based
    message: str
    #: The stripped source line — stable across unrelated edits, used by
    #: the baseline fingerprint instead of the line number.
    source_line: str = ""
    #: Package-relative path — stable across working directories, used by
    #: the baseline fingerprint instead of ``path``.
    relpath: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> dict:
        return {"rule": self.rule, "name": self.rule_name,
                "severity": self.severity.value, "path": self.path,
                "line": self.line, "col": self.col, "message": self.message}


#: Packages whose code runs inside the simulated machine.  Determinism
#: rules only apply here: wall-clock reads in *reporting* code
#: (``experiments/``, ``analysis/``) measure the harness, not the machine.
SIM_PACKAGES = ("core", "sim", "memsys", "cpu", "faults", "workloads")

#: Rule list: codes/names separated by commas, no spaces; anything after
#: the list (e.g. "-- why this is safe") is the justification text.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\-]+)")

#: Parsed-module cache: resolved path -> ((mtime_ns, size), source, tree).
#: Parsing dominates lint wall-clock now that a dozen rules *and* the
#: whole-program flow layer walk the same files; the stat stamp keeps
#: edits visible to long-lived processes (tests, editor integrations).
_AST_CACHE: dict[Path, tuple[tuple[int, int], str, ast.Module]] = {}


def clear_ast_cache() -> None:
    """Drop every cached parse (tests; rarely needed otherwise)."""
    # repro-lint: disable=DET006 -- intentional parse cache: invalidated
    # by (mtime_ns, size), holds no simulation state
    _AST_CACHE.clear()


def _parse_cached(path: Path) -> tuple[str, ast.Module]:
    """Read and parse ``path``, reusing the cached tree when unchanged."""
    key = path.resolve()
    stat = key.stat()
    stamp = (stat.st_mtime_ns, stat.st_size)
    cached = _AST_CACHE.get(key)
    if cached is not None and cached[0] == stamp:
        return cached[1], cached[2]
    source = key.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    # repro-lint: disable=DET006 -- intentional parse cache: invalidated
    # by (mtime_ns, size), holds no simulation state
    _AST_CACHE[key] = (stamp, source, tree)
    return source, tree


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Extract inline and file-level suppressions from source text.

    Returns ``(per_line, file_wide)`` where ``per_line`` maps a 1-based
    line number to the set of rule codes/names disabled on that line, and
    ``file_wide`` is the set disabled for the whole file.  The token
    ``all`` disables every rule.
    """
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    lines = source.splitlines()
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        kind, spec = match.groups()
        rules = {token.strip() for token in spec.split(",") if token.strip()}
        if kind == "disable-file":
            file_wide |= rules
            continue
        target = lineno
        if line.lstrip().startswith("#"):
            # A comment-only suppression covers the next code line
            # (consecutive comment/blank lines carry it forward).
            for j in range(lineno, len(lines)):
                candidate = lines[j].strip()
                if candidate and not candidate.startswith("#"):
                    target = j + 1
                    break
        per_line.setdefault(target, set()).update(rules)
    return per_line, file_wide


@dataclass
class ModuleContext:
    """One parsed source file presented to the rules."""

    path: str                  # path as reported in findings
    relpath: str               # path relative to the package root (posix)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: True when the module belongs to a simulator package (or is a loose
    #: file outside the package, which is linted conservatively).
    in_sim_path: bool = True

    @classmethod
    def parse(cls, path: Path, package_root: Optional[Path] = None,
              display_path: Optional[str] = None) -> "ModuleContext":
        source, tree = _parse_cached(path)
        if package_root is not None:
            root = package_root.resolve()
            resolved = path.resolve()
            try:
                rel = resolved.relative_to(root)
                relpath = rel.as_posix()
                in_sim = rel.parts[:1] in {(p,) for p in SIM_PACKAGES}
            except ValueError:
                # Outside the package: lint conservatively, but keep a
                # repo-relative path when possible so the path-scoped
                # config (benchmarks/, examples/) can address the file.
                try:
                    relpath = resolved.relative_to(
                        root.parent.parent).as_posix()
                except ValueError:
                    relpath = path.name
                in_sim = True
        else:
            relpath = path.name
            in_sim = True
        return cls(path=display_path or str(path), relpath=relpath,
                   source=source, tree=tree,
                   lines=source.splitlines(), in_sim_path=in_sim)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule.code, rule_name=rule.name,
                       severity=rule.severity, path=self.path,
                       line=lineno, col=col, message=message,
                       source_line=self.source_line(lineno),
                       relpath=self.relpath)


@dataclass
class ProjectContext:
    """Every module of one lint run, for cross-module rules."""

    modules: list[ModuleContext]

    def find(self, relpath_suffix: str) -> Optional[ModuleContext]:
        """The module whose package-relative path ends with ``suffix``."""
        for module in self.modules:
            if module.relpath.endswith(relpath_suffix):
                return module
        return None


class Rule:
    """Base class for lint rules.  Subclasses register with @register."""

    code: str = "XXX000"
    name: str = "unnamed-rule"
    severity: Severity = Severity.ERROR
    #: One-paragraph rationale, surfaced by ``--list-rules`` and the docs.
    rationale: str = ""

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of a rule to the registry."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    # repro-lint: disable=DET006 -- the rule registry is write-once at
    # import time; no simulation state flows through it
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in code order (rule modules import on first use)."""
    from repro.lint import rules as _rules  # noqa: F401  (registers rules)
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _rule_identifiers(rule: Rule) -> set[str]:
    return {rule.code, rule.name, "all"}


def _suppressed(finding: Finding, rule: Rule,
                per_line: dict[int, set[str]], file_wide: set[str]) -> bool:
    identifiers = _rule_identifiers(rule)
    if identifiers & file_wide:
        return True
    return bool(identifiers & per_line.get(finding.line, set()))


def select_rules(select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None) -> list[Rule]:
    """Resolve --select/--ignore (codes or names) into rule instances."""
    rules = all_rules()
    known = {ident for rule in rules
             for ident in (rule.code, rule.name)}
    for spec in list(select or []) + list(ignore or []):
        if spec not in known:
            raise ValueError(f"unknown rule {spec!r}; known: "
                             f"{', '.join(sorted(known))}")
    if select:
        wanted = set(select)
        rules = [r for r in rules
                 if r.code in wanted or r.name in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [r for r in rules
                 if r.code not in unwanted and r.name not in unwanted]
    return rules


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand the given paths into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while keeping order deterministic.
    seen: dict[Path, None] = {}
    for f in files:
        seen.setdefault(f.resolve(), None)
    return sorted(seen)


def run_lint(paths: Iterable[Path], package_root: Optional[Path] = None,
             select: Iterable[str] | None = None,
             ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint ``paths`` and return surviving (non-suppressed) findings.

    ``package_root`` is the directory containing the ``repro`` package
    sources; files under it get package-relative scoping (sim path vs.
    reporting path), files outside it are linted conservatively.
    Baseline filtering is the caller's job (see :mod:`repro.lint.cli`).
    """
    from repro.lint.pathconfig import scoped_ignores

    rules = select_rules(select, ignore)
    module_rules = [r for r in rules
                    if type(r).check_module is not Rule.check_module]
    project_rules = [r for r in rules
                     if type(r).check_project is not Rule.check_project]

    modules: list[ModuleContext] = []
    findings: list[Finding] = []
    for file_path in collect_files(paths):
        module = ModuleContext.parse(file_path, package_root=package_root)
        modules.append(module)

    suppressions = {module.path: _parse_suppressions(module.source)
                    for module in modules}
    scoped = {module.path: scoped_ignores(module.relpath)
              for module in modules}

    for module in modules:
        per_line, file_wide = suppressions[module.path]
        for rule in module_rules:
            if _rule_identifiers(rule) & scoped[module.path]:
                continue
            for finding in rule.check_module(module):
                if not _suppressed(finding, rule, per_line, file_wide):
                    findings.append(finding)

    project = ProjectContext(modules=modules)
    by_path = {module.path: module for module in modules}
    for rule in project_rules:
        for finding in rule.check_project(project):
            per_line, file_wide = suppressions.get(
                finding.path, ({}, set()))
            if finding.path in by_path and _suppressed(
                    finding, rule, per_line, file_wide):
                continue
            if _rule_identifiers(rule) & scoped.get(finding.path, set()):
                continue
            findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(source: str, filename: str = "<memory>",
                select: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint a source string (test/fixture helper; sim-path scoping on)."""
    tree = ast.parse(source, filename=filename)
    module = ModuleContext(path=filename, relpath=filename, source=source,
                           tree=tree, lines=source.splitlines(),
                           in_sim_path=True)
    per_line, file_wide = _parse_suppressions(source)
    findings: list[Finding] = []
    for rule in select_rules(select, ignore):
        if type(rule).check_module is Rule.check_module:
            continue
        for finding in rule.check_module(module):
            if not _suppressed(finding, rule, per_line, file_wide):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
