"""``repro lint`` — simulator-specific static analysis.

Generic linters cannot know that this codebase's correctness story rests
on seeded determinism, a cycles-only clock base, and a declared mutation
surface for ULMT/table state.  This package walks the ASTs of
``src/repro`` and enforces exactly those invariants; see
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and
:mod:`repro.lint.engine` for the framework.

Public API::

    from repro.lint import run_lint, lint_source, all_rules
    from repro.lint import Finding, Severity, Baseline
"""

from repro.lint.baseline import Baseline, fingerprints
from repro.lint.engine import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    Severity,
    all_rules,
    lint_source,
    register,
    run_lint,
    select_rules,
)

__all__ = [
    "Baseline",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "Severity",
    "all_rules",
    "fingerprints",
    "lint_source",
    "register",
    "run_lint",
    "select_rules",
]
