"""Command-line front end: ``python -m repro lint``.

Usage::

    python -m repro lint                     # package + benchmarks/examples
    python -m repro lint path/to/file.py     # lint specific files/dirs
    python -m repro lint --output json       # machine-readable output
    python -m repro lint --output sarif      # SARIF 2.1.0 (code scanning)
    python -m repro lint --list-rules        # rule codes + rationales
    python -m repro lint --write-baseline    # grandfather current findings
    python -m repro lint --no-baseline       # ignore the committed baseline

Exit status: 0 when no *new* error-severity finding survives suppression
and baseline filtering; 1 otherwise; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import Finding, Severity, all_rules, run_lint
from repro.lint.sarif import render_sarif


def _package_root() -> Path:
    """Directory of the installed ``repro`` package sources."""
    import repro
    return Path(repro.__file__).resolve().parent


def _default_baseline_path(package_root: Path) -> Path:
    """``lint-baseline.json`` next to the repo's ``src`` directory when
    running from a checkout, else in the current directory."""
    repo_root = package_root.parent.parent
    if (repo_root / "pyproject.toml").exists():
        return repo_root / DEFAULT_BASELINE_NAME
    return Path(DEFAULT_BASELINE_NAME)


def _default_paths(package_root: Path) -> list[Path]:
    """The package plus the repo's ``benchmarks/`` and ``examples/``
    trees when running from a checkout — harness code rides the same
    gate as the simulator, scoped by ``repro.lint.pathconfig``."""
    paths = [package_root]
    repo_root = package_root.parent.parent
    if (repo_root / "pyproject.toml").exists():
        for extra in ("benchmarks", "examples"):
            if (repo_root / extra).is_dir():
                paths.append(repo_root / extra)
    return paths


def _display_path(path: Path) -> Path:
    try:
        return path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        return path


def _render_text(findings: list[Finding], baselined: int) -> str:
    lines = [f"{f.location()}: {f.severity.value} {f.rule} "
             f"[{f.rule_name}] {f.message}" for f in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    summary = (f"{errors} error(s), {warnings} warning(s)"
               + (f", {baselined} baselined" if baselined else ""))
    if not findings:
        summary = "clean: " + summary
    lines.append(summary)
    return "\n".join(lines)


def _render_json(findings: list[Finding], baselined: int) -> str:
    return json.dumps({
        "findings": [f.as_dict() for f in findings],
        "errors": sum(1 for f in findings
                      if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in findings
                        if f.severity is Severity.WARNING),
        "baselined": baselined,
    }, indent=2)


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name}  ({rule.severity.value})")
        for para in rule.rationale.split("\n"):
            lines.append(f"    {para}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulator-specific static analysis (see "
                    "docs/STATIC_ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                             "(default: the repro package)")
    parser.add_argument("--output", "--format", dest="output",
                        choices=("text", "json", "sarif"), default="text",
                        help="output format (--format is an alias)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: lint-baseline.json "
                             "at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather all current findings and exit 0")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE", help="run only these rules")
    parser.add_argument("--ignore", action="append", default=None,
                        metavar="RULE", help="skip these rules")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    package_root = _package_root()
    paths = [_display_path(p) for p in
             (args.paths or _default_paths(package_root))]
    for path in paths:
        if not path.exists():
            print(f"repro lint: no such path: {path}", file=sys.stderr)
            return 2

    try:
        findings = run_lint(paths, package_root=package_root,
                            select=args.select, ignore=args.ignore)
    except (ValueError, SyntaxError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or _default_baseline_path(package_root)
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baselined = 0
    if not args.no_baseline:
        baseline = Baseline.load(baseline_path)
        new_findings = baseline.filter_new(findings)
        baselined = len(findings) - len(new_findings)
        findings = new_findings

    if args.output == "sarif":
        print(render_sarif(findings))
    elif args.output == "json":
        print(_render_json(findings, baselined))
    else:
        print(_render_text(findings, baselined))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0
