"""Path-scoped rule configuration.

Lint now covers ``benchmarks/`` and ``examples/`` in addition to the
``repro`` package, and those trees legitimately use idioms the simulator
rules forbid: a benchmark harness *measures* host wall-clock time, an
example script may demonstrate a deliberately-degraded configuration.
Blanket ``disable-file`` comments would also switch the rules off for
the code the scripts import, and would have to be pasted into every new
benchmark.  Instead, each scope below turns a named rule set off for one
path prefix, with a recorded justification — the same shape as a
baseline entry, but by *role* rather than by individual finding.

Scopes match on the repo-relative posix path prefix (``benchmarks/``,
``examples/``); files inside the ``repro`` package never match because
their relpaths are package-relative (``perf/pool.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PathScope:
    """Rules switched off for every file under one path prefix."""

    prefix: str              # repo-relative posix path prefix
    ignore: frozenset[str]   # rule codes/names disabled under the prefix
    why: str                 # justification, surfaced in docs/--list-rules

    def matches(self, relpath: str) -> bool:
        return relpath.startswith(self.prefix)


#: The committed scopes.  Keep each ``ignore`` set minimal: a scope is a
#: statement that the *role* of the tree makes the rule inapplicable,
#: not a dumping ground for unfixed findings (those go to the baseline,
#: which is kept empty by fixing them).
DEFAULT_SCOPES: tuple[PathScope, ...] = (
    PathScope(
        prefix="benchmarks/",
        ignore=frozenset({"DET003"}),
        why=("benchmark harnesses exist to measure host wall-clock time; "
             "time.perf_counter() here times the simulator instead of "
             "leaking nondeterminism into it")),
    PathScope(
        prefix="examples/",
        ignore=frozenset({"DET003"}),
        why=("example scripts time their own demo runs for display; the "
             "measured values never feed simulation state")),
)


def scoped_ignores(relpath: str,
                   scopes: tuple[PathScope, ...] = DEFAULT_SCOPES,
                   ) -> frozenset[str]:
    """Union of rule identifiers disabled for ``relpath`` by the scopes."""
    disabled: set[str] = set()
    for scope in scopes:
        if scope.matches(relpath):
            disabled |= scope.ignore
    return frozenset(disabled)
