"""The memory processor: the simple general-purpose core hosting the ULMT.

The paper's memory processor is a 2-issue 800 MHz core with a 32 KB L1 and
no floating point, placed either in the North Bridge chip or inside a DRAM
chip (Figure 1-(a)).  Its execution cost is modelled by
:class:`repro.core.cost_model.UlmtCostModel`; this module packages the core,
its cost model, and the hosted ULMT into one component with the placement
baked in, which is what the system simulator instantiates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> cpu)
    from repro.obs.tracer import Tracer

from repro.core.algorithms import UlmtAlgorithm
from repro.core.cost_model import CostConstants, UlmtCostModel
from repro.core.ulmt import Ulmt
from repro.faults.plan import FaultInjector
from repro.faults.watchdog import UlmtWatchdog
from repro.memsys.controller import MemoryController
from repro.params import MemProcessorParams, MemProcLocation, QueueParams


class MemoryProcessor:
    """The in-memory core together with the ULMT it runs."""

    def __init__(self, controller: MemoryController, algorithm: UlmtAlgorithm,
                 verbose: bool = False,
                 core_params: MemProcessorParams | None = None,
                 cost_constants: CostConstants | None = None,
                 queue_params: QueueParams | None = None,
                 fault_injector: FaultInjector | None = None,
                 watchdog: UlmtWatchdog | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self.controller = controller
        self.core_params = core_params or MemProcessorParams()
        self.cost_model = UlmtCostModel(controller, cost_constants)
        self.ulmt = Ulmt(algorithm, self.cost_model,
                         queue_params=queue_params, verbose=verbose,
                         fault_injector=fault_injector, watchdog=watchdog,
                         tracer=tracer)

    @property
    def location(self) -> MemProcLocation:
        return self.controller.location

    @property
    def algorithm(self) -> UlmtAlgorithm:
        return self.ulmt.algorithm

    @property
    def watchdog(self) -> UlmtWatchdog | None:
        return self.ulmt.watchdog

    def observe_miss(self, line_addr: int, now: int,
                     is_processor_prefetch: bool = False):
        """Forward one observed miss to the ULMT (see :class:`Ulmt`)."""
        return self.ulmt.observe_miss(line_addr, now, is_processor_prefetch)

    def drain(self, up_to: int):
        return self.ulmt.drain(up_to)

    def drain_all(self):
        return self.ulmt.drain_all()
