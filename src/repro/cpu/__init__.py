"""Processor models: the main OoO core and the in-memory core."""

from repro.cpu.memproc import MemoryProcessor
from repro.cpu.processor import (
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_MEM,
    AccessResult,
    MainProcessor,
    MemoryInterface,
    ProcessorStats,
)
from repro.cpu.stream_prefetcher import HardwareStreamPrefetcher

__all__ = [
    "MemoryProcessor",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_MEM",
    "AccessResult",
    "MainProcessor",
    "MemoryInterface",
    "ProcessorStats",
    "HardwareStreamPrefetcher",
]
