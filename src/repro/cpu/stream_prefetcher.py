"""Conven4: the processor-side hardware sequential prefetcher (Table 4).

The main processor optionally includes a hardware prefetcher that monitors
L1 miss addresses and can identify and prefetch up to ``NumSeq`` concurrent
unit-stride streams into the L1 cache: when the third miss of a +1/-1
sequence is observed a stream is recognised and the next ``NumPref`` lines
are prefetched; a stream register remembers the next expected address so a
later miss on it extends the stream (paper Section 4).

The stream-recognition machinery is shared with the ULMT software variants
(:class:`repro.core.sequential.StreamDetector`); the difference is purely
*where* it runs (L1 miss stream, prefetching into L1) and that its requests
reaching memory are tagged as processor prefetches — which the ULMT only
sees in Verbose mode.
"""

from __future__ import annotations

from repro.core.sequential import StreamDetector
from repro.params import CONVEN4_PARAMS, SequentialParams


class HardwareStreamPrefetcher:
    """Conven4 (or Conven1/ConvenN): stream prefetching into the L1."""

    def __init__(self, params: SequentialParams | None = None) -> None:
        self.params = params or CONVEN4_PARAMS
        self.detector = StreamDetector(self.params)
        self.prefetches_issued = 0

    @property
    def name(self) -> str:
        return f"conven{self.params.num_seq}"

    def on_l1_miss(self, l1_line: int) -> list[int]:
        """Observe one L1 miss; returns L1 line addresses to prefetch."""
        burst = self.detector.observe(l1_line)
        self.prefetches_issued += len(burst)
        return burst

    def reset(self) -> None:
        self.detector.reset()
