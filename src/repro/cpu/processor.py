"""Trace-driven timing model of the 6-issue out-of-order main processor.

The substitution for the paper's execution-driven superscalar model (see
DESIGN.md): the processor walks a workload trace in order, accumulating the
``Busy`` computation cycles each reference carries, and models the memory
behaviour that matters to prefetching:

* a 16 KB L1 with in-flight fills and the optional Conven4 stream
  prefetcher;
* a miss-overlap window of ``pending_loads`` (8) outstanding load misses —
  independent misses overlap, and the processor blocks when the window
  fills (which is how bandwidth contention surfaces as stall time);
* *dependent* references (pointer chasing) that must wait for the previous
  load to complete before they can issue — these pay the full round trip,
  producing the dominant [200, 280) inter-miss bin of Figure 6;
* stalls attributed to ``UptoL2`` (served by the L2) or ``BeyondL2``
  (served by memory), the two stacked components of Figure 7.

Everything below the L1 is behind the :class:`MemoryInterface` the system
simulator implements; the processor itself never talks to the L2 directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cpu.stream_prefetcher import HardwareStreamPrefetcher
from repro.memsys.cache import Cache
from repro.params import MAIN_L1, MainProcessorParams
from repro.workloads.trace import MemRef, Trace

#: Levels a request can be served from, used for stall attribution.
LEVEL_L1 = "l1"
LEVEL_L2 = "l2"
LEVEL_MEM = "mem"


@dataclass(frozen=True)
class AccessResult:
    """Answer from the L2-and-beyond hierarchy for one L1 miss."""

    completion_time: int
    level: str  # LEVEL_L2 or LEVEL_MEM


class MemoryInterface(Protocol):
    """What the processor needs from everything below its L1."""

    def access(self, l2_line: int, is_write: bool, now: int,
               is_prefetch: bool) -> AccessResult:
        """Service an L1 miss (or an L1 prefetch) for ``l2_line``."""


@dataclass
class ProcessorStats:
    """Execution-time breakdown (the three stacked bars of Figure 7)."""

    busy_cycles: int = 0
    uptol2_stall: int = 0
    beyondl2_stall: int = 0
    refs: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l1_prefetch_hits: int = 0
    finish_time: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.uptol2_stall + self.beyondl2_stall

    def breakdown(self) -> dict[str, float]:
        """Normalised Busy / UptoL2 / BeyondL2 fractions."""
        total = self.total_cycles
        if total == 0:
            return {"busy": 0.0, "uptol2": 0.0, "beyondl2": 0.0}
        return {"busy": self.busy_cycles / total,
                "uptol2": self.uptol2_stall / total,
                "beyondl2": self.beyondl2_stall / total}

    def to_dict(self) -> dict:
        from repro.sim.serialize import flat_to_dict
        return flat_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ProcessorStats":
        from repro.sim.serialize import flat_from_dict
        return flat_from_dict(cls, data)


class _InflightFill:
    """An L1 line travelling toward the cache (demand fill or prefetch)."""

    __slots__ = ("arrival", "level", "is_prefetch")

    def __init__(self, arrival: int, level: str,
                 is_prefetch: bool = False) -> None:
        self.arrival = arrival
        self.level = level
        self.is_prefetch = is_prefetch


#: Public alias: the batch kernel (:mod:`repro.kernel.engine`) creates
#: in-flight fill records with the exact same shape the event engine uses,
#: so a run can in principle switch engines at any quiescent point.
InflightFill = _InflightFill


class MainProcessor:
    """The trace-walking timing model."""

    def __init__(self, memory: MemoryInterface,
                 params: MainProcessorParams | None = None,
                 stream_prefetcher: HardwareStreamPrefetcher | None = None) -> None:
        self.memory = memory
        self.params = params or MainProcessorParams()
        self.stream_prefetcher = stream_prefetcher
        self.l1 = Cache(MAIN_L1)
        self.stats = ProcessorStats()
        self.now = 0
        # Outstanding load misses: (completion_time, level, ref_index),
        # limited both by pending-load capacity and by ROB run-ahead.
        self._load_window: list[tuple[int, str, int]] = []
        self._store_window: list[tuple[int, str, int]] = []
        # L1 lines still in flight (demand fill or stream prefetch), plus
        # the earliest arrival among them: the every-access "anything
        # landed?" poll is then one comparison instead of a dict scan.
        self._l1_inflight: dict[int, _InflightFill] = {}
        self._min_arrival: float = float("inf")
        # Completion/level of the most recent load, for dependent references.
        self._prev_load: tuple[int, str] = (0, LEVEL_L1)

    # -- main loop -------------------------------------------------------------------

    def run(self, trace: Trace) -> ProcessorStats:
        for ref in trace:
            self.step(ref)
        return self.finish()

    def finish(self) -> ProcessorStats:
        """End-of-trace drain: wait out every outstanding access.

        Split out of :meth:`run` so a caller that drives the trace walk
        itself — the multicore interleaver steps several processors
        against a shared clock — terminates each core exactly the way a
        solo run does.
        """
        self._drain_windows()
        self.stats.finish_time = self.now
        return self.stats

    def step(self, ref: MemRef) -> None:
        stats = self.stats
        comp = ref.comp_cycles
        stats.refs += 1
        self.now += comp
        stats.busy_cycles += comp

        if ref.dependent:
            self._wait_for_previous_load()
        if self._load_window:
            self._enforce_rob_limit()

        l1_line = self.l1.line_addr(ref.addr)
        completion, level = self._access_l1(l1_line, ref.is_write)

        if ref.is_write:
            self._track_store(completion, level)
        else:
            self._track_load(completion, level)
            self._prev_load = (completion, level)

    # -- L1 + stream prefetcher --------------------------------------------------------

    def _access_l1(self, l1_line: int, is_write: bool) -> tuple[int, str]:
        self._land_arrived_fills()
        if self.l1.access(l1_line, is_write):
            self.stats.l1_hits += 1
            return self.now, LEVEL_L1

        inflight = self._l1_inflight.get(l1_line)
        if inflight is not None:
            # The line is on its way (demand merge or late-ish prefetch).
            # Consuming a late *prefetch* tells the stream prefetcher to
            # keep that stream's lookahead topped up; demand merges must
            # not touch stream state (they would spuriously extend stale
            # streams during strided phases).
            self.stats.l1_prefetch_hits += 1
            if inflight.is_prefetch and self.stream_prefetcher is not None:
                self._top_up_streams(l1_line)
            return inflight.arrival, inflight.level

        self.stats.l1_misses += 1
        result = self.memory.access(self._l2_line(l1_line), is_write,
                                    self.now, is_prefetch=False)
        self._l1_inflight[l1_line] = _InflightFill(result.completion_time,
                                                   result.level)
        if result.completion_time < self._min_arrival:
            self._min_arrival = result.completion_time
        if self.stream_prefetcher is not None:
            self._issue_stream_prefetches(l1_line)
        return result.completion_time, result.level

    def _top_up_streams(self, consumed_line: int) -> None:
        self._issue_prefetch_lines(
            self.stream_prefetcher.detector.consumed(consumed_line))

    def _issue_stream_prefetches(self, miss_line: int) -> None:
        self._issue_prefetch_lines(
            self.stream_prefetcher.on_l1_miss(miss_line))

    def _issue_prefetch_lines(self, lines) -> None:
        for pf_line in lines:
            if pf_line < 0 or self.l1.contains(pf_line):
                continue
            if pf_line in self._l1_inflight:
                continue
            result = self.memory.access(self._l2_line(pf_line),
                                        is_write=False, now=self.now,
                                        is_prefetch=True)
            self._l1_inflight[pf_line] = _InflightFill(
                result.completion_time, result.level, is_prefetch=True)
            if result.completion_time < self._min_arrival:
                self._min_arrival = result.completion_time

    def _land_arrived_fills(self) -> None:
        if self.now < self._min_arrival:
            return
        inflight = self._l1_inflight
        arrived = [line for line, f in inflight.items()
                   if f.arrival <= self.now]
        for line in arrived:
            del inflight[line]
            self.l1.fill(line)
        self._min_arrival = min(
            (f.arrival for f in inflight.values()), default=float("inf"))

    @staticmethod
    def _l2_line(l1_line: int) -> int:
        # L1 lines are 32 B, L2 lines 64 B: two L1 lines per L2 line.
        return l1_line // 2

    # -- overlap windows ------------------------------------------------------------------

    def _track_load(self, completion: int, level: str) -> None:
        if completion <= self.now or level == LEVEL_L1:
            return
        self._load_window.append((completion, level, self.stats.refs))
        self._retire(self._load_window)
        while len(self._load_window) > self.params.pending_loads:
            self._stall_on_earliest(self._load_window)

    def _track_store(self, completion: int, level: str) -> None:
        if completion <= self.now or level == LEVEL_L1:
            return
        self._store_window.append((completion, level, self.stats.refs))
        self._retire(self._store_window)
        while len(self._store_window) > self.params.pending_stores:
            self._stall_on_earliest(self._store_window)

    def _enforce_rob_limit(self) -> None:
        """Block when the oldest outstanding load falls outside the ROB."""
        self._retire(self._load_window)
        while self._load_window:
            oldest_ref = min(ref_idx for _, _, ref_idx in self._load_window)
            if self.stats.refs - oldest_ref < self.params.rob_refs:
                return
            self._stall_on_earliest(self._load_window)

    def _wait_for_previous_load(self) -> None:
        completion, level = self._prev_load
        if completion > self.now:
            self._stall_until(completion, level)
        self._retire(self._load_window)

    def _retire(self, window: list[tuple[int, str, int]]) -> None:
        window[:] = [entry for entry in window if entry[0] > self.now]

    def _stall_on_earliest(self, window: list[tuple[int, str, int]]) -> None:
        completion, level, _ = min(window)
        self._stall_until(completion, level)
        self._retire(window)

    def _stall_until(self, completion: int, level: str) -> None:
        stall = completion - self.now
        if stall <= 0:
            return
        if level == LEVEL_MEM:
            self.stats.beyondl2_stall += stall
        else:
            self.stats.uptol2_stall += stall
        self.now = completion

    def _drain_windows(self) -> None:
        """Wait for every outstanding access at the end of the trace."""
        for window in (self._load_window, self._store_window):
            while window:
                self._stall_on_earliest(window)
