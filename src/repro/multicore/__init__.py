"""Multicore scale-out: coordinated per-app ULMTs on private tiles.

See :mod:`repro.multicore.system` for the machine model,
:mod:`repro.multicore.coordination` for the resource-arbitration
policies, and ``docs/MULTICORE.md`` for the design contract.
"""

from repro.multicore.coordination import (
    POLICIES,
    Allocation,
    CoreGrant,
    PushBandwidthGate,
    allocate,
    apportion,
    demand_shares,
)
from repro.multicore.driver import (
    parse_bundle,
    run_multicore,
    run_multicore_traced,
)
from repro.multicore.result import (
    MULTICORE_FORMAT_VERSION,
    MulticoreResult,
    MulticoreTraceRun,
)
from repro.multicore.system import MulticoreSystem, merge_event_streams

__all__ = [
    "POLICIES",
    "Allocation",
    "CoreGrant",
    "PushBandwidthGate",
    "allocate",
    "apportion",
    "demand_shares",
    "parse_bundle",
    "run_multicore",
    "run_multicore_traced",
    "MULTICORE_FORMAT_VERSION",
    "MulticoreResult",
    "MulticoreTraceRun",
    "MulticoreSystem",
    "merge_event_streams",
]
