"""Entry points for multicore bundle runs.

A *bundle* names the applications pinned one-per-core, joined with
``+``: ``"tree+cg"`` is tree on core 0 and cg on core 1.  These mirror
:func:`repro.sim.driver.run_simulation` /
:func:`repro.obs.runner.run_traced` for N cores —
:func:`run_simulation` itself dispatches here whenever its config says
``num_cores > 1``, so every existing surface (pool tasks, campaigns,
the CLI) reaches multicore through the same door.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.faults.plan import FaultPlan
from repro.multicore.result import MulticoreResult, MulticoreTraceRun
from repro.multicore.system import MulticoreSystem, merge_event_streams
from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.stats import result_counter_metrics
from repro.workloads.registry import get_trace, list_workloads

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from repro.obs.tracer import Tracer


def parse_bundle(workload: str) -> tuple[str, ...]:
    """Split a bundle name into its per-core applications.

    ``"tree+cg"`` -> ``("tree", "cg")``; a plain application name is a
    1-core bundle.  Every component must be a registered workload, and
    repeats are allowed (``"em3d+em3d"`` runs two independent copies).
    """
    apps = tuple(part.strip() for part in workload.split("+"))
    known = set(list_workloads())
    for app in apps:
        if app not in known:
            raise ValueError(f"unknown application {app!r} in bundle "
                             f"{workload!r} (known: "
                             f"{', '.join(sorted(known))})")
    return apps


def _resolve_config(config: Union[str, SystemConfig],
                    apps: tuple[str, ...]) -> SystemConfig:
    if isinstance(config, str):
        if config == "custom":
            if len(apps) != 1:
                raise ValueError(
                    "the 'custom' preset is per-application; a multicore "
                    "bundle needs an explicit SystemConfig "
                    "(preset(name).with_cores(n))")
            return custom_config(apps[0])
        return preset(config)
    if config.num_cores > 1 and config.name == "custom":
        raise ValueError("per-application 'custom' configs cannot scale "
                         "to a bundle; start from a shared preset")
    return config


def run_multicore(workload: str,
                  config: Union[str, SystemConfig] = "nopref",
                  scale: float = 1.0,
                  tracer: "Optional[Tracer]" = None,
                  seed: Optional[int] = None,
                  fault_plans: "Optional[Mapping[int, FaultPlan]]" = None,
                  ) -> MulticoreResult:
    """Simulate one application bundle under one coordinated config.

    The single-core identity contract: with one app and ``num_cores=1``
    this builds exactly the solo machine — same config bytes, full
    table, no push gate — so the result dict is byte-identical to
    :func:`repro.sim.driver.run_simulation` (the parity suite pins this
    across the whole preset matrix).  ``seed`` regenerates every
    per-app trace under that layout seed, mirroring the solo driver.
    ``fault_plans`` maps core index to a :class:`FaultPlan` override for
    that tile alone (the chaos suite's single-victim knob); cores not in
    the mapping fall back to the config's bundle-level plan, re-seeded
    per core.
    """
    apps = parse_bundle(workload)
    config = _resolve_config(config, apps)
    if config.num_cores != len(apps):
        raise ValueError(f"bundle {workload!r} has {len(apps)} apps but "
                         f"config {config.name!r} has "
                         f"num_cores={config.num_cores}; use "
                         f"SystemConfig.with_cores")
    if seed is None:
        traces = [get_trace(app, scale=scale) for app in apps]
    else:
        traces = [get_trace(app, scale=scale, seed=seed, cache=False)
                  for app in apps]
    lanes = None
    tracers = None
    if tracer is not None:
        if len(apps) == 1:
            # Solo tile: thread the caller's tracer straight through so
            # the traced stream is byte-identical to the solo engines.
            tracers = [tracer]
        else:
            from repro.obs.tracer import CoreTaggedTracer
            lanes = [CoreTaggedTracer(i, metrics=tracer.metrics)
                     for i in range(len(apps))]
            tracers = lanes
    system = MulticoreSystem(config, apps, traces, tracers=tracers,
                             fault_plans=fault_plans)
    result = system.run()
    if tracer is not None and lanes is not None:
        tracer.events.extend(
            merge_event_streams([lane.events for lane in lanes]))
    return result


def run_multicore_traced(workload: str,
                         config: Union[str, SystemConfig] = "nopref",
                         scale: float = 1.0,
                         seed: Optional[int] = None,
                         fault_plans: "Optional[Mapping[int, FaultPlan]]"
                         = None) -> MulticoreTraceRun:
    """One traced bundle cell: merged core-tagged events plus metrics.

    The N-core analogue of :func:`repro.obs.runner.run_traced`: one
    shared metrics registry across the lanes, per-core result counters
    folded in (so the snapshot holds bundle-wide sums), and the merged
    ``(cycle, core, emission)``-ordered event stream the golden digests
    pin.
    """
    from repro.obs.tracer import Tracer
    tracer = Tracer()
    result = run_multicore(workload, config, scale=scale, tracer=tracer,
                           seed=seed, fault_plans=fault_plans)
    registry = tracer.metrics
    for core_result in result.cores:
        for name, value in result_counter_metrics(core_result).items():
            registry.count(name, value)
    return MulticoreTraceRun(result=result, events=tracer.events,
                             metrics=registry.snapshot())
