"""Results of a multicore run, with exact serialisation round trips.

A :class:`MulticoreResult` is the N-core analogue of
:class:`~repro.sim.stats.SimResult`: one full per-core result per tile
(the cores stay individually inspectable — the chaos suite compares a
victim's neighbours byte for byte) plus the grant table the coordination
policy produced.  The aggregate views (makespan, summed counters) are
what the campaign run table consumes, so a bundle cell fills the same
CSV columns a solo cell does.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.multicore.coordination import Allocation
from repro.obs.events import TraceEvent
from repro.sim.stats import RobustnessStats, SimResult

#: Bumped on incompatible layout changes (persistent-cache safety).
MULTICORE_FORMAT_VERSION = 1


@dataclass
class MulticoreResult:
    """Everything one N-core bundle run produced."""

    #: The bundle name, e.g. ``"tree+cg"`` (apps joined by ``+``).
    workload: str
    config_name: str
    num_cores: int
    coordination: str
    allocation: Allocation
    #: Per-core results, index = core; ``cores[i].workload`` is that
    #: core's application.
    cores: tuple[SimResult, ...]

    def core(self, index: int) -> SimResult:
        return self.cores[index]

    # -- aggregate views (the run-table columns) ----------------------------------

    @property
    def execution_time(self) -> int:
        """Makespan: the bundle is done when its slowest core is."""
        return max(r.execution_time for r in self.cores)

    @property
    def demand_misses_to_memory(self) -> int:
        return sum(r.demand_misses_to_memory for r in self.cores)

    @property
    def prefetches_issued_to_memory(self) -> int:
        return sum(r.prefetches_issued_to_memory for r in self.cores)

    def eliminated_misses(self) -> int:
        return sum(r.l2.prefetch_hits + r.l2.delayed_hits
                   for r in self.cores)

    def original_misses(self) -> int:
        return sum(r.l2.original_misses_equivalent for r in self.cores)

    def prefetches_arrived(self) -> int:
        return sum(r.l2.total_prefetches_arrived for r in self.cores)

    def coverage(self) -> float:
        """Bundle-wide Figure 9 coverage: eliminated / original misses."""
        original = self.original_misses()
        return self.eliminated_misses() / original if original else 0.0

    def accuracy(self) -> float:
        arrived = self.prefetches_arrived()
        return self.eliminated_misses() / arrived if arrived else 0.0

    def robustness_totals(self) -> RobustnessStats:
        """Field-wise sum of the per-core degradation counters."""
        totals = RobustnessStats()
        for result in self.cores:
            for f in fields(RobustnessStats):
                setattr(totals, f.name,
                        getattr(totals, f.name)
                        + getattr(result.robustness, f.name))
        return totals

    # -- persistence ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MULTICORE_FORMAT_VERSION,
            "workload": self.workload,
            "config_name": self.config_name,
            "num_cores": self.num_cores,
            "coordination": self.coordination,
            "allocation": self.allocation.to_dict(),
            "cores": [r.to_dict() for r in self.cores],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MulticoreResult":
        """Rebuild from :meth:`to_dict` output.

        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        payloads; the persistent cache treats those as a miss.
        """
        if data["version"] != MULTICORE_FORMAT_VERSION:
            raise ValueError(f"multicore format version {data['version']!r} "
                             f"!= {MULTICORE_FORMAT_VERSION}")
        cores = tuple(SimResult.from_dict(c) for c in data["cores"])
        if len(cores) != int(data["num_cores"]):
            raise ValueError(f"{len(cores)} core results for "
                             f"num_cores={data['num_cores']}")
        return cls(workload=data["workload"],
                   config_name=data["config_name"],
                   num_cores=int(data["num_cores"]),
                   coordination=data["coordination"],
                   allocation=Allocation.from_dict(data["allocation"]),
                   cores=cores)


@dataclass
class MulticoreTraceRun:
    """A traced bundle: the merged per-core event stream plus metrics.

    Every event carries a ``core=<i>`` info tag
    (:class:`repro.obs.tracer.CoreTaggedTracer`); the merge is ordered by
    ``(cycle, core, per-core emission index)``, so the stream is a pure
    function of the cell and the golden digests pin it byte for byte.
    The ``timeline``/``tracediff`` tools key on event *kind* and
    ``(cycle, kind, addr)`` respectively, so tagged streams flow through
    them unchanged.
    """

    result: MulticoreResult
    events: list[TraceEvent]
    metrics: dict[str, Any]

    def event_lines(self) -> list[str]:
        from repro.obs.tracer import event_json_line
        return [event_json_line(e) for e in self.events]

    def jsonl(self) -> str:
        return "".join(line + "\n" for line in self.event_lines())

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MULTICORE_FORMAT_VERSION,
            "result": self.result.to_dict(),
            "events": [e.to_dict() for e in self.events],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MulticoreTraceRun":
        from repro.obs.metrics import validate_snapshot
        if data["version"] != MULTICORE_FORMAT_VERSION:
            raise ValueError(f"multicore format version {data['version']!r} "
                             f"!= {MULTICORE_FORMAT_VERSION}")
        metrics = data["metrics"]
        validate_snapshot(metrics)
        return cls(result=MulticoreResult.from_dict(data["result"]),
                   events=[TraceEvent.from_dict(e) for e in data["events"]],
                   metrics=metrics)
