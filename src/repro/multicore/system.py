"""N processors with private tiles over the coordinated push path.

A :class:`MulticoreSystem` instantiates one full
:class:`~repro.sim.system.System` per core — private L1/L2, memory
controller, and per-app ULMT, the os_support multiprogramming property
realised structurally — and drives the per-app miss streams *interleaved*
against a global clock: at every step the unfinished core whose processor
clock is furthest behind executes its next reference (ties go to the
lower core index).  Cores couple through the
:class:`~repro.multicore.coordination.CoordinationPolicy` grants
(partitioned correlation-table capacity, per-window push-bandwidth
budgets) fixed before the run, never through shared mutable state, which
gives three properties the test satellites pin:

* **determinism** — the arbitration order is a pure function of the
  cell, so serial, pooled, and warm-cache runs are byte-identical;
* **single-core identity** — with one core the scheduler degenerates to
  the plain trace walk, the policy grants the whole table and installs
  no push gate, and the run is byte-identical to
  :meth:`repro.sim.system.System.run` (the parity suite enforces this
  against both engines);
* **fault isolation** — a fault plan on one core provably cannot
  perturb its neighbours (the chaos suite compares them byte for byte).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.multicore.coordination import (
    Allocation,
    PushBandwidthGate,
    allocate,
)
from repro.faults.plan import FaultPlan
from repro.multicore.result import MulticoreResult
from repro.obs.events import TraceEvent
from repro.sim.config import SystemConfig
from repro.sim.stats import SimResult
from repro.sim.system import System
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # annotation-only (obs -> sim cycle guard)
    from repro.obs.tracer import Tracer


class CoreTile:
    """One core: its application, trace, and private system."""

    __slots__ = ("index", "app", "trace", "system", "steps")

    def __init__(self, index: int, app: str, trace: Trace,
                 system: System) -> None:
        self.index = index
        self.app = app
        self.trace = trace
        self.system = system
        #: References executed so far (event-conservation accounting).
        self.steps = 0


def merge_event_streams(
        streams: Sequence[Sequence[TraceEvent]]) -> list[TraceEvent]:
    """Merge per-core event streams into one deterministic stream.

    Ordered by ``(cycle, core, per-core emission index)`` — a stable
    global timeline in which each core's own emission order is preserved
    and same-cycle events across cores land in core order.
    """
    entries = [(event.cycle, core, seq, event)
               for core, stream in enumerate(streams)
               for seq, event in enumerate(stream)]
    entries.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in entries]


class MulticoreSystem:
    """N coordinated simulated machines walking interleaved traces."""

    def __init__(self, config: SystemConfig,
                 apps: Sequence[str],
                 traces: Sequence[Trace],
                 tracers: "Sequence[Tracer] | None" = None,
                 fault_plans: "Mapping[int, FaultPlan] | None" = None,
                 record_schedule: bool = False) -> None:
        if len(apps) != config.num_cores:
            raise ValueError(f"{len(apps)} apps for "
                             f"num_cores={config.num_cores}")
        if len(traces) != len(apps):
            raise ValueError(f"{len(traces)} traces for {len(apps)} apps")
        if tracers is not None and len(tracers) != len(apps):
            raise ValueError(f"{len(tracers)} tracers for {len(apps)} apps")
        self.config = config
        self.apps = tuple(apps)
        self.allocation: Allocation = allocate(config, self.apps, traces)
        #: Arbitration order (core index per step) when recording is on;
        #: the seed-determinism property test replays and compares it.
        self.schedule: Optional[list[int]] = [] if record_schedule else None
        solo = config.num_cores == 1
        self.tiles: list[CoreTile] = []
        for i, (app, trace) in enumerate(zip(self.apps, traces)):
            grant = self.allocation.grant(i)
            plan = self._core_plan(i, solo, fault_plans)
            if solo and (fault_plans is None or i not in fault_plans):
                # Single-core identity: the tile *is* the solo machine —
                # full table (the config's own num_rows, None included),
                # no push gate, the fault plan untouched.
                tile_config = config
            elif solo:
                tile_config = dc_replace(config, fault_plan=plan)
            else:
                tile_config = dc_replace(config, num_rows=grant.num_rows,
                                         fault_plan=plan)
            tracer = None if tracers is None else tracers[i]
            system = System(tile_config, tracer=tracer)
            if not solo:
                system.push_gate = PushBandwidthGate(
                    grant.push_budget, self.allocation.push_window)
            self.tiles.append(CoreTile(i, app, trace, system))

    def _core_plan(self, core: int, solo: bool,
                   fault_plans: "Mapping[int, FaultPlan] | None"
                   ) -> "FaultPlan | None":
        """Final fault plan for one tile.

        An explicit per-core override wins verbatim — the chaos suite
        targets exactly one victim this way.  Otherwise a bundle-level
        plan is re-seeded per core (:meth:`FaultPlan.for_core`) so faults
        strike the cores independently; a solo machine keeps its plan
        untouched for bit parity with the plain engines.
        """
        if fault_plans is not None and core in fault_plans:
            return fault_plans[core]
        plan = self.config.fault_plan
        if plan is None or solo:
            return plan
        return plan.for_core(core)

    def run(self) -> MulticoreResult:
        """Interleave every core's trace walk to completion."""
        tiles = self.tiles
        iterators = [iter(tile.trace) for tile in tiles]
        heads = [next(it, None) for it in iterators]
        active = [i for i, head in enumerate(heads) if head is not None]
        stats = [tile.system.processor.finish() if heads[i] is None else None
                 for i, tile in enumerate(tiles)]
        schedule = self.schedule
        while active:
            # The core furthest behind in time steps next; ties go to the
            # lower index.  Tiles share no mutable state, so this order
            # cannot change any per-core result — it fixes the merged
            # observability timeline and keeps the walk deterministic.
            core = min(active,
                       key=lambda i: (tiles[i].system.processor.now, i))
            if schedule is not None:
                schedule.append(core)
            tile = tiles[core]
            head = heads[core]
            assert head is not None
            tile.system.processor.step(head)
            tile.steps += 1
            heads[core] = next(iterators[core], None)
            if heads[core] is None:
                stats[core] = tile.system.processor.finish()
                active.remove(core)
        results = []
        for tile in tiles:
            processor_stats = stats[tile.index]
            assert processor_stats is not None
            results.append(tile.system.finalize_result(
                tile.trace.name, processor_stats))
        return self._result(results)

    def _result(self, results: list[SimResult]) -> MulticoreResult:
        return MulticoreResult(
            workload="+".join(self.apps),
            config_name=self.config.name,
            num_cores=self.config.num_cores,
            coordination=self.config.coordination,
            allocation=self.allocation,
            cores=tuple(results),
        )
