"""Cross-core arbitration of the shared prefetching resources.

A multicore tile set (:mod:`repro.multicore.system`) couples its cores
through *grants*, not through shared mutable state: before the run, a
:class:`CoordinationPolicy` splits the two contended resources among the
cores —

* **correlation-table capacity** — the paper budgets one software table in
  main memory; with N applications the table rows are partitioned so the
  per-app ULMTs stay disjoint (the os_support protection property) while
  their total stays at the configured budget;
* **push bandwidth** — pushed lines from every core share the bus/DRAM
  path to the L2s, so each core receives a per-window budget of pushes
  (:class:`PushBandwidthGate`); a core that exhausts its window holds its
  queue 3, which backs up into overflow drops and demand cancels exactly
  like a saturated push path would.

Two policies are built in: ``static`` (equal shares) and ``demand``
(shares proportional to each application's trace footprint — a
deterministic stand-in for measured miss pressure).  Both are pure
functions of the (config, workload bundle) cell, so every grant — and
therefore the whole multicore run — is byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.params import CorrelationParams
from repro.sim.config import SystemConfig
from repro.workloads.trace import Trace

#: Recognised coordination policies (``SystemConfig.coordination``).
POLICIES = ("static", "demand")

#: Push-bandwidth arbitration window (main-processor cycles).
PUSH_WINDOW_CYCLES = 2048

#: Total pushes the shared path accepts per window, split across cores.
#: One push is a 64 B line transfer; 64 per 2048-cycle window is roughly
#: the paper's bus at full prefetch tilt, so N cores genuinely contend.
TOTAL_PUSH_BUDGET = 64

#: Table capacity is granted in whole quanta of rows, so every grant is a
#: valid row count for any correlation-table geometry (``num_rows`` must
#: be a multiple of the set associativity; Table 3's variants use 2 or
#: 4-way sets, and 64 covers any power-of-two associativity up to 64).
TABLE_GRANT_QUANTUM = 64


def apportion(total: int, shares: Sequence[int],
              minimum: int = 0) -> list[int]:
    """Split ``total`` integer units proportionally to ``shares``.

    Largest-remainder apportionment with ties broken by index (integer
    arithmetic only, so the split is exact and platform-independent).
    The result always sums to ``total`` — the invariant the multicore
    property suite pins — and every part is at least ``minimum`` (the
    floor is handed out first, the remainder apportioned).
    """
    if total < 0:
        raise ValueError(f"total must be non-negative: {total}")
    if not shares:
        raise ValueError("apportion needs at least one share")
    if any(s < 0 for s in shares):
        raise ValueError(f"shares must be non-negative: {list(shares)}")
    if minimum:
        if minimum * len(shares) > total:
            raise ValueError(
                f"cannot grant {len(shares)} parts a floor of {minimum} "
                f"from {total}")
        rest = apportion(total - minimum * len(shares), shares)
        return [minimum + part for part in rest]
    weight = sum(shares)
    if weight == 0:  # degenerate: fall back to equal shares
        shares = [1] * len(shares)
        weight = len(shares)
    quotas = [total * share // weight for share in shares]
    remainders = [total * share % weight for share in shares]
    leftover = total - sum(quotas)
    # Largest remainder first; equal remainders go to the lower core index.
    order = sorted(range(len(shares)), key=lambda i: (-remainders[i], i))
    for i in order[:leftover]:
        quotas[i] += 1
    return quotas


class PushBandwidthGate:
    """One core's per-window push budget on the shared path.

    ``try_issue(now)`` consumes one unit of the window ``now`` falls in
    (windows reset lazily — time only moves forward).  When the budget is
    spent the caller holds its queue until :meth:`next_window_start`.
    Pure integer state: the deny/grant sequence is a deterministic
    function of the call sequence.
    """

    __slots__ = ("budget", "window", "_win", "_used", "denials")

    def __init__(self, budget: int, window: int = PUSH_WINDOW_CYCLES) -> None:
        if budget < 1:
            raise ValueError(f"push budget must be >= 1: {budget}")
        if window < 1:
            raise ValueError(f"push window must be >= 1: {window}")
        self.budget = budget
        self.window = window
        self._win = 0
        self._used = 0
        #: Pushes held back because the window was spent (observability).
        self.denials = 0

    def try_issue(self, now: int) -> bool:
        """Consume one push slot of ``now``'s window if any remains."""
        win = now // self.window
        if win > self._win:
            self._win = win
            self._used = 0
        if self._used < self.budget:
            self._used += 1
            return True
        self.denials += 1
        return False

    def next_window_start(self) -> int:
        """First cycle of the next window (when a held push may retry)."""
        return (self._win + 1) * self.window


@dataclass(frozen=True)
class CoreGrant:
    """One core's share of the coordinated resources."""

    core: int
    app: str
    #: Correlation-table rows granted to this core's ULMT (0 on a core
    #: whose config runs no ULMT — nothing to grant capacity to).
    num_rows: int
    #: Pushes this core may issue per arbitration window.
    push_budget: int

    def to_dict(self) -> dict[str, Any]:
        return {"core": self.core, "app": self.app,
                "num_rows": self.num_rows,
                "push_budget": self.push_budget}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CoreGrant":
        return cls(core=int(data["core"]), app=str(data["app"]),
                   num_rows=int(data["num_rows"]),
                   push_budget=int(data["push_budget"]))


@dataclass(frozen=True)
class Allocation:
    """The full grant table one policy produced for one bundle."""

    policy: str
    table_total: int
    push_total: int
    push_window: int
    grants: tuple[CoreGrant, ...]

    def grant(self, core: int) -> CoreGrant:
        return self.grants[core]

    def to_dict(self) -> dict[str, Any]:
        return {"policy": self.policy, "table_total": self.table_total,
                "push_total": self.push_total,
                "push_window": self.push_window,
                "grants": [g.to_dict() for g in self.grants]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Allocation":
        return cls(policy=str(data["policy"]),
                   table_total=int(data["table_total"]),
                   push_total=int(data["push_total"]),
                   push_window=int(data["push_window"]),
                   grants=tuple(CoreGrant.from_dict(g)
                                for g in data["grants"]))


def demand_shares(traces: Sequence[Trace]) -> list[int]:
    """Deterministic demand proxy: each application's trace footprint.

    Footprint (distinct 64 B lines touched) tracks how much correlation
    state and push traffic an application can usefully consume; it is a
    pure function of the trace, so demand-proportional grants stay a pure
    function of the cell.  Shares are clamped to >= 1 so no core is ever
    granted an empty table.
    """
    return [max(1, trace.footprint_lines()) for trace in traces]


def allocate(config: SystemConfig, apps: Sequence[str],
             traces: Sequence[Trace]) -> Allocation:
    """Grant table capacity and push bandwidth for one bundle.

    ``config.coordination`` picks the policy; the table budget is
    ``config.num_rows`` (or the Table 3 default) *in total* — the same
    memory a solo machine would spend, now split N ways.  Rows are
    granted in :data:`TABLE_GRANT_QUANTUM` quanta (a budget that is not
    a quantum multiple is truncated to one — every standard budget is a
    power of two, so nothing is lost in practice), and the grants sum
    exactly to the recorded ``table_total``.
    """
    policy = config.coordination
    if policy == "static":
        shares = [1] * len(apps)
    elif policy == "demand":
        shares = demand_shares(traces)
    else:
        raise ValueError(f"unknown coordination policy {policy!r} "
                         f"(expected one of {POLICIES})")
    budget = config.num_rows or CorrelationParams().num_rows
    units = budget // TABLE_GRANT_QUANTUM
    if units < len(apps):
        raise ValueError(
            f"table budget of {budget} rows cannot grant {len(apps)} "
            f"cores at least {TABLE_GRANT_QUANTUM} rows each")
    table_total = units * TABLE_GRANT_QUANTUM
    row_units = apportion(units, shares, minimum=1)
    budgets = apportion(TOTAL_PUSH_BUDGET, shares, minimum=1)
    grants = tuple(
        CoreGrant(core=i, app=app,
                  num_rows=row_units[i] * TABLE_GRANT_QUANTUM,
                  push_budget=budgets[i])
        for i, app in enumerate(apps))
    return Allocation(policy=policy, table_total=table_total,
                      push_total=TOTAL_PUSH_BUDGET,
                      push_window=PUSH_WINDOW_CYCLES, grants=grants)
