"""Architecture and algorithm parameters from the ISCA 2002 ULMT paper.

This module encodes Table 3 (simulated architecture) and Table 4 (prefetch
algorithm parameters) of the paper as frozen dataclasses, plus the latency
decomposition used by the timing model.

All latencies are expressed in 1.6 GHz main-processor cycles, exactly as the
paper reports them.  The paper gives end-to-end round trips; the timing model
needs per-resource components (bank service, channel transfer, bus transfer,
fixed pipe delay).  The decomposition below is calibrated so that the
contention-free round trips reproduce the paper's numbers exactly:

  main processor L2 miss:   96 + 16 + 64 + 32 = 208   (row hit)
                            96 + 51 + 64 + 32 = 243   (row miss)
  memory proc in DRAM:       3 + 16 +  2      =  21   (row hit)
                             3 + 51 +  2      =  56   (row miss)
  memory proc in N.Bridge:  17 + 16 + 32      =  65   (row hit)
                            17 + 51 + 32      = 100   (row miss)

where 96 cycles is the paper's tSystem (60 ns), the 16/51 cycle bank service
corresponds to CAS-only vs. RAS+CAS access, 64 cycles moves a 64 B line over
one 2 B x 800 MHz DRAM channel, and 32 cycles moves it over the 8 B x 400 MHz
memory bus (or a 32 B memory-processor line over a DRAM channel).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum


class MemProcLocation(Enum):
    """Where the memory processor lives (Figure 3 of the paper)."""

    DRAM = "dram"
    NORTH_BRIDGE = "north_bridge"


# ---------------------------------------------------------------------------
# Unit conversions (cycles <-> nanoseconds)
# ---------------------------------------------------------------------------
#
# All simulator timing is in 1.6 GHz main-processor cycles; the paper quotes
# some latencies in nanoseconds (tSystem = 60 ns).  These are the *only*
# sanctioned crossing points between the two unit systems — the lint rule
# UNIT001 flags arithmetic that mixes ``*_cycles`` and ``*_ns`` quantities
# without routing through them.

#: Main-processor clock, GHz (cycles per nanosecond).
MAIN_FREQUENCY_GHZ = 1.6

#: The paper's tSystem in nanoseconds; 60 ns x 1.6 GHz = 96 cycles, the
#: ``main_fixed`` component of :class:`MemoryParams`.
TSYSTEM_NS = 60.0


def ns_to_cycles(duration_ns: float) -> int:
    """Convert nanoseconds to (rounded) 1.6 GHz main-processor cycles."""
    return int(round(duration_ns * MAIN_FREQUENCY_GHZ))


def cycles_to_ns(duration_cycles: float) -> float:
    """Convert 1.6 GHz main-processor cycles to nanoseconds."""
    return duration_cycles / MAIN_FREQUENCY_GHZ


# ---------------------------------------------------------------------------
# Table 3: processor parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MainProcessorParams:
    """6-issue dynamic superscalar at 1.6 GHz (paper Table 3)."""

    issue_width: int = 6
    frequency_ghz: float = 1.6
    int_fus: int = 4
    fp_fus: int = 4
    ldst_fus: int = 2
    pending_loads: int = 8
    pending_stores: int = 16
    branch_penalty: int = 12
    #: Reorder-buffer run-ahead limit expressed in trace references: the
    #: core cannot issue more than this many references past the oldest
    #: outstanding load miss (each trace reference stands for roughly six
    #: to eight instructions, so 8 references approximate a 50-64 entry
    #: instruction window).  This bounds the memory-level parallelism of
    #: independent misses, which is what makes prefetching — whose requests
    #: are not ROB-bound — valuable on streaming code.
    rob_refs: int = 8


@dataclass(frozen=True)
class MemProcessorParams:
    """2-issue dynamic core at 800 MHz in the memory system (paper Table 3)."""

    issue_width: int = 2
    frequency_ghz: float = 0.8
    int_fus: int = 2
    fp_fus: int = 0
    ldst_fus: int = 1
    pending_loads: int = 4
    pending_stores: int = 4
    branch_penalty: int = 6

    @property
    def cycles_per_main_cycle(self) -> int:
        """Main-processor cycles per memory-processor cycle (1.6/0.8 = 2)."""
        return 2


# ---------------------------------------------------------------------------
# Table 3: cache parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheParams:
    """Geometry and hit time of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_cycles: int

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


#: Main processor L1 data cache: write-back, 16 KB, 2-way, 32 B, 3-cycle RT.
MAIN_L1 = CacheParams(size_bytes=16 * 1024, assoc=2, line_bytes=32, hit_cycles=3)

#: Main processor L2 data cache: write-back, 512 KB, 4-way, 64 B, 19-cycle RT.
MAIN_L2 = CacheParams(size_bytes=512 * 1024, assoc=4, line_bytes=64, hit_cycles=19)

#: Memory processor L1: write-back, 32 KB, 2-way, 32 B, 4-cycle RT.
MEMPROC_L1 = CacheParams(size_bytes=32 * 1024, assoc=2, line_bytes=32, hit_cycles=4)


# ---------------------------------------------------------------------------
# Table 3: memory-system latency decomposition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryParams:
    """Latency/bandwidth parameters of the DRAM system and memory bus.

    The round-trip identities documented in the module docstring are asserted
    by the unit tests (``tests/test_params.py``).
    """

    # Per-resource components (1.6 GHz cycles).
    bank_service_row_hit: int = 16
    bank_service_row_miss: int = 51
    channel_transfer_l2_line: int = 64   # 64 B over a 2 B x 800 MHz channel
    channel_transfer_mp_line: int = 32   # 32 B memory-processor line
    bus_transfer_l2_line: int = 32       # 64 B over the 8 B x 400 MHz bus
    bus_request_cycles: int = 4          # address phase on the memory bus

    # Fixed pipe delays (everything not modelled as a contended resource).
    main_fixed: int = 96                 # ns_to_cycles(TSYSTEM_NS), both directions
    memproc_dram_fixed: int = 3
    memproc_dram_transfer: int = 2       # 32 B over the 32 B internal bus
    memproc_nb_fixed: int = 17
    nb_prefetch_request_delay: int = 25  # prefetch request NB -> DRAM

    # One-way delay for a pushed prefetch line travelling to the L2 after it
    # leaves the DRAM bank (controller + bus + L2 fill).
    push_fixed: int = 48

    # Organisation.
    num_channels: int = 2
    banks_per_channel: int = 8
    row_bytes: int = 4096

    def main_round_trip(self, row_hit: bool) -> int:
        """Contention-free L2-miss round trip seen by the main processor."""
        bank = self.bank_service_row_hit if row_hit else self.bank_service_row_miss
        return (self.main_fixed + bank + self.channel_transfer_l2_line
                + self.bus_transfer_l2_line)

    def memproc_round_trip(self, location: MemProcLocation, row_hit: bool) -> int:
        """Contention-free memory round trip seen by the memory processor."""
        bank = self.bank_service_row_hit if row_hit else self.bank_service_row_miss
        if location is MemProcLocation.DRAM:
            return self.memproc_dram_fixed + bank + self.memproc_dram_transfer
        return self.memproc_nb_fixed + bank + self.channel_transfer_mp_line


# ---------------------------------------------------------------------------
# Table 3: queues and filter
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueueParams:
    """Depth of queues 1 through 6 and the Filter module (paper Table 3)."""

    queue_depth: int = 16
    filter_entries: int = 32


# ---------------------------------------------------------------------------
# Table 4: prefetch algorithm parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorrelationParams:
    """Parameters of a pair-based correlation prefetcher."""

    num_succ: int = 2
    assoc: int = 2
    num_levels: int = 3
    num_rows: int = 64 * 1024

    def replaced(self, **changes) -> "CorrelationParams":
        """Return a copy with some fields changed (customisation hook)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SequentialParams:
    """Parameters of a sequential (stream) prefetcher."""

    num_seq: int = 4
    num_pref: int = 6


#: Table 4 defaults, keyed by the names the paper uses.
BASE_PARAMS = CorrelationParams(num_succ=4, assoc=4, num_levels=1)
CHAIN_PARAMS = CorrelationParams(num_succ=2, assoc=2, num_levels=3)
REPL_PARAMS = CorrelationParams(num_succ=2, assoc=2, num_levels=3)
SEQ1_PARAMS = SequentialParams(num_seq=1, num_pref=6)
SEQ4_PARAMS = SequentialParams(num_seq=4, num_pref=6)
CONVEN4_PARAMS = SequentialParams(num_seq=4, num_pref=6)

#: Row sizes in bytes on a 32-bit machine (paper Section 4): used by the
#: Table 2 reproduction to convert NumRows into megabytes.
ROW_BYTES = {"base": 20, "chain": 12, "repl": 28}

MAIN_PROC = MainProcessorParams()
MEM_PROC = MemProcessorParams()
MEMORY = MemoryParams()
QUEUES = QueueParams()
