"""Software correlation tables (Figure 4 of the paper).

The table is an ordinary data structure in main memory — eliminating the
1-7.6 MB hardware SRAM tables of previous correlation prefetchers is one of
the paper's central points.  Two organisations are provided:

* the **conventional** organisation used by the Base and Chain algorithms:
  each row stores the tag of a miss address plus up to ``NumSucc`` immediate
  successors in MRU order (``num_levels == 1``);
* the **replicated** organisation introduced by the paper: each row stores
  ``NumLevels`` levels of successors, each level holding the *true* MRU
  successors at that distance (``num_levels > 1``).

Rows live in a set-associative structure (``NumRows`` rows, ``Assoc`` ways,
LRU row replacement).  Every row has a stable *memory address* so the ULMT
cost model can simulate the memory processor's cache over the table; row
sizes (20/12/28 bytes for Base/Chain/Repl on a 32-bit machine) come from the
paper's Section 4.

Accesses report their work to a *cost sink* (see
:mod:`repro.core.cost_model`): an associative ``find`` charges a tag search,
while pointer-based accesses (Replicated's learning step) touch the row
memory without a search — the distinction Table 1 of the paper draws.
"""

from __future__ import annotations

from typing import Optional, Protocol


class CostSink(Protocol):
    """Receiver for the work a table access performs."""

    def charge_search(self, ways_probed: int, row_addr: int) -> None:
        """An associative lookup probing ``ways_probed`` tags."""

    def charge_row_access(self, row_addr: int) -> None:
        """A direct (pointer-based) read or update of one row."""

    def charge_instructions(self, count: int) -> None:
        """Raw instruction work (e.g. successor-list scanning)."""


class NullCostSink:
    """Cost sink that ignores everything (functional analyses)."""

    def charge_search(self, ways_probed: int, row_addr: int) -> None:  # noqa: D102
        pass

    def charge_row_access(self, row_addr: int) -> None:  # noqa: D102
        pass

    def charge_instructions(self, count: int) -> None:  # noqa: D102
        pass


NULL_SINK = NullCostSink()


class Row:
    """One correlation-table row.

    ``levels[k]`` lists the level-``k+1`` successors of ``tag`` in MRU order
    (index 0 is most recent).  The conventional organisation uses a single
    level.
    """

    __slots__ = ("tag", "levels", "addr")

    def __init__(self, tag: int, num_levels: int, addr: int) -> None:
        self.tag = tag
        self.levels: list[list[int]] = [[] for _ in range(num_levels)]
        self.addr = addr

    def successors(self, level: int = 0) -> list[int]:
        return self.levels[level]


class CorrelationTable:
    """Set-associative software correlation table."""

    #: Designated state-mutating methods — the only places table state may
    #: change (statically enforced by `repro lint` rule PHASE002; aliased
    #: container writes are audited at runtime by the InvariantChecker).
    _STEP_METHODS = ("find", "find_or_alloc", "insert_successor",
                     "remap_page")

    def __init__(self, num_rows: int, assoc: int, num_succ: int,
                 num_levels: int = 1, row_bytes: int = 28,
                 base_addr: int = 0x8000_0000) -> None:
        if num_rows <= 0 or num_rows % assoc != 0:
            raise ValueError(
                f"num_rows ({num_rows}) must be a positive multiple of assoc ({assoc})")
        if num_succ <= 0 or num_levels <= 0:
            raise ValueError("num_succ and num_levels must be positive")
        self.num_rows = num_rows
        self.assoc = assoc
        self.num_succ = num_succ
        self.num_levels = num_levels
        self.row_bytes = row_bytes
        self.base_addr = base_addr
        self.num_sets = num_rows // assoc
        # Each set maps tag -> Row in LRU order (last = MRU); ways are
        # recycled so row addresses stay stable per physical slot.
        self._sets: list[dict[int, Row]] = [{} for _ in range(self.num_sets)]
        self._way_of: list[dict[int, int]] = [{} for _ in range(self.num_sets)]
        self.rows_allocated = 0
        self.row_replacements = 0
        self.successor_insertions = 0

    # -- geometry ---------------------------------------------------------------

    def _set_index(self, tag: int) -> int:
        return tag % self.num_sets

    def _row_addr(self, set_idx: int, way: int) -> int:
        return self.base_addr + (set_idx * self.assoc + way) * self.row_bytes

    @property
    def size_bytes(self) -> int:
        """Total table capacity (NumRows x row size)."""
        return self.num_rows * self.row_bytes

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- access ------------------------------------------------------------------

    def find(self, tag: int, sink: CostSink = NULL_SINK) -> Optional[Row]:
        """Associative lookup; refreshes the row's LRU position."""
        set_idx = self._set_index(tag)
        cset = self._sets[set_idx]
        row = cset.pop(tag, None)
        if row is None:
            # An unsuccessful search still probes every valid way.
            probe_addr = self._row_addr(set_idx, 0)
            sink.charge_search(max(1, len(cset)), probe_addr)
            return None
        cset[tag] = row
        sink.charge_search(len(cset), row.addr)
        return row

    def find_or_alloc(self, tag: int, sink: CostSink = NULL_SINK) -> Row:
        """Lookup, allocating (and possibly replacing) a row on miss."""
        row = self.find(tag, sink)
        if row is not None:
            return row
        set_idx = self._set_index(tag)
        cset = self._sets[set_idx]
        ways = self._way_of[set_idx]
        if len(cset) >= self.assoc:
            victim_tag = next(iter(cset))
            del cset[victim_tag]
            way = ways.pop(victim_tag)
            self.row_replacements += 1
        else:
            way = len(cset)
        row = Row(tag, self.num_levels, self._row_addr(set_idx, way))
        cset[tag] = row
        ways[tag] = way
        self.rows_allocated += 1
        sink.charge_row_access(row.addr)
        return row

    def insert_successor(self, row: Row, level: int, succ: int,
                         sink: CostSink = NULL_SINK) -> None:
        """Record ``succ`` as the MRU level-``level`` successor of ``row``."""
        succs = row.levels[level]
        try:
            succs.remove(succ)
        except ValueError:
            pass
        succs.insert(0, succ)
        del succs[self.num_succ:]
        self.successor_insertions += 1
        sink.charge_row_access(row.addr)

    def peek(self, tag: int) -> Optional[Row]:
        """Lookup without LRU or cost side effects (tests/analyses)."""
        return self._sets[self._set_index(tag)].get(tag)

    # -- operating-system hooks (paper Section 3.4) --------------------------------

    def remap_page(self, old_page: int, new_page: int,
                   page_lines: int) -> int:
        """Relocate table state after an OS page re-mapping.

        Every line of the old physical page is looked up; found rows are
        re-tagged, and successor entries pointing into the old page are
        rewritten.  Returns the number of rows touched.  (Stale successors in
        unvisited rows are tolerated, exactly as the paper describes — the
        table heals through learning.)
        """
        touched = 0
        old_base = old_page * page_lines
        new_base = new_page * page_lines
        for offset in range(page_lines):
            old_tag = old_base + offset
            row = self.peek(old_tag)
            if row is None:
                continue
            set_idx = self._set_index(old_tag)
            del self._sets[set_idx][old_tag]
            self._way_of[set_idx].pop(old_tag, None)
            new_tag = new_base + offset
            row.tag = new_tag
            new_set = self._set_index(new_tag)
            dest = self._sets[new_set]
            if len(dest) >= self.assoc:
                victim = next(iter(dest))
                del dest[victim]
                way = self._way_of[new_set].pop(victim)
                self.row_replacements += 1
            else:
                way = len(dest)
            row.addr = self._row_addr(new_set, way)
            dest[new_tag] = row
            self._way_of[new_set][new_tag] = way
            touched += 1
        # Rewrite successors within relocated rows.
        for cset in self._sets:
            for row in cset.values():
                for succs in row.levels:
                    for i, s in enumerate(succs):
                        if old_base <= s < old_base + page_lines:
                            succs[i] = new_base + (s - old_base)
        return touched

    def replacement_fraction(self) -> float:
        """Fraction of row allocations that replaced an existing row
        (the < 5 % criterion the paper uses to size NumRows in Table 2)."""
        if self.rows_allocated == 0:
            return 0.0
        return self.row_replacements / self.rows_allocated
