"""The paper's contribution: ULMT correlation prefetching."""

from repro.core.adaptive import AdaptiveUlmtPrefetcher, ShadowWindow
from repro.core.conflict import (
    ConflictAwarePrefetcher,
    ConflictDetector,
    ConflictStats,
)
from repro.core.algorithms import (
    TABLE1_TRAITS,
    AlgorithmTraits,
    BasePrefetcher,
    ChainPrefetcher,
    ReplicatedPrefetcher,
    UlmtAlgorithm,
)
from repro.core.combined import CombinedUlmtPrefetcher
from repro.core.cost_model import CostConstants, UlmtCostModel, UlmtObservation
from repro.core.customization import (
    CUSTOMIZATIONS,
    Customization,
    ProfilingAlgorithm,
    build_algorithm,
    customization_for,
)
from repro.core.os_support import RegisteredUlmt, UlmtRegistry
from repro.core.prefetch_filter import PrefetchFilter
from repro.core.sequential import SequentialUlmtPrefetcher, Stream, StreamDetector
from repro.core.table import NULL_SINK, CorrelationTable, CostSink, NullCostSink, Row
from repro.core.ulmt import Ulmt, UlmtPrefetch, UlmtStats

__all__ = [
    "AdaptiveUlmtPrefetcher",
    "ShadowWindow",
    "ConflictAwarePrefetcher",
    "ConflictDetector",
    "ConflictStats",
    "TABLE1_TRAITS",
    "AlgorithmTraits",
    "BasePrefetcher",
    "ChainPrefetcher",
    "ReplicatedPrefetcher",
    "UlmtAlgorithm",
    "CombinedUlmtPrefetcher",
    "CostConstants",
    "UlmtCostModel",
    "UlmtObservation",
    "CUSTOMIZATIONS",
    "Customization",
    "ProfilingAlgorithm",
    "build_algorithm",
    "customization_for",
    "RegisteredUlmt",
    "UlmtRegistry",
    "PrefetchFilter",
    "SequentialUlmtPrefetcher",
    "Stream",
    "StreamDetector",
    "NULL_SINK",
    "CorrelationTable",
    "CostSink",
    "NullCostSink",
    "Row",
    "Ulmt",
    "UlmtPrefetch",
    "UlmtStats",
]
