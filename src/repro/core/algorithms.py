"""The pair-based correlation prefetching algorithms of the paper.

Three algorithms (Figure 4, Table 1):

* **Base** — the conventional algorithm of Joseph & Grunwald: one level of
  immediate successors; prefetches the ``NumSucc`` MRU successors of the
  observed miss.
* **Chain** — same table, but after prefetching the immediate successors it
  follows the MRU successor's row ``NumLevels - 1`` more times, prefetching
  along the MRU *path* (far ahead, but not the true MRU successors of each
  level, and each level costs another associative search).
* **Replicated** — the paper's new organisation: each row replicates
  ``NumLevels`` levels of *true* MRU successors, so the prefetching step
  needs a single row access while the learning step updates ``NumLevels``
  rows through pointers (no searches).

Every algorithm exposes:

``prefetch_step(miss, sink)``
    The time-critical step: look up the table, return line addresses to
    prefetch in issue order (executed *before* learning, Figure 2).
``learn(miss, sink)``
    Update the table with the observed miss.
``predict_levels(max_level)``
    The successor sets currently predicted for levels 1..max_level — used by
    the Figure 5 predictability analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.core.table import NULL_SINK, CorrelationTable, CostSink, Row
from repro.params import ROW_BYTES, CorrelationParams


@dataclass(frozen=True)
class AlgorithmTraits:
    """The qualitative comparison rows of the paper's Table 1."""

    name: str
    levels_prefetched: str
    true_mru_per_level: bool
    prefetch_row_accesses: str   # requires associative SEARCH
    learning_row_accesses: str   # requires NO search
    response_time: str
    space_requirement: str


class UlmtAlgorithm(ABC):
    """A correlation prefetching algorithm run by the ULMT."""

    name: str = "abstract"
    traits: AlgorithmTraits

    @abstractmethod
    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        """Return the line addresses to prefetch for an observed miss."""

    def prefetch_batches(self, miss: int,
                         sink: CostSink = NULL_SINK) -> Iterator[list[int]]:
        """Yield prefetch address batches as they become available.

        A plain algorithm produces one batch; compositions (see
        :class:`repro.core.combined.CombinedUlmtPrefetcher`) yield one batch
        per component so that a low-response component's prefetches are
        issued before a slower component finishes — the ordering the paper's
        CG customisation relies on ("Seq1 before executing Repl").
        """
        yield self.prefetch_step(miss, sink)

    @abstractmethod
    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        """Record the observed miss in the correlation table."""

    @abstractmethod
    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        """Current successor predictions for levels 1..max_level."""

    def reset(self) -> None:
        """Forget transient (non-table) state, e.g. at a context switch."""

    def hard_reset(self) -> None:
        """Discard *all* learned state, table included — the warm-restart
        path after an ULMT crash.  The table is ordinary software state in
        main memory, so a crashed thread restarts with an empty one and
        rebuilds it from the live miss stream."""
        self.reset()


#: Instruction cost of scanning one successor entry of a *conventional*
#: table row during the prefetching step.  The conventional organisation
#: keeps NumSucc entries in LRU order that must be walked, validity-checked
#: and re-ordered on access; the Replicated organisation's flat per-level
#: groups avoid this (its prefetch step is a single plain row read), which
#: is why Figure 10 shows Base/Chain responses several times Repl's.
_CONVENTIONAL_SCAN_INSTR = 7


def _dedup(addresses: list[int], exclude: int | None = None) -> list[int]:
    """Drop duplicates (and the currently missing line itself, which is
    already being fetched on demand)."""
    seen: set[int] = set()
    out: list[int] = []
    for addr in addresses:
        if addr != exclude and addr not in seen:
            seen.add(addr)
            out.append(addr)
    return out


class BasePrefetcher(UlmtAlgorithm):
    """The conventional single-level algorithm (Figure 4-(a))."""

    name = "base"
    traits = AlgorithmTraits(
        name="Base", levels_prefetched="1", true_mru_per_level=True,
        prefetch_row_accesses="1", learning_row_accesses="1",
        response_time="Low", space_requirement="1")

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("learn", "reset", "hard_reset")

    def __init__(self, params: CorrelationParams | None = None,
                 base_addr: int = 0x8000_0000) -> None:
        self.params = params or CorrelationParams(num_succ=4, assoc=4, num_levels=1)
        self.table = CorrelationTable(
            num_rows=self.params.num_rows, assoc=self.params.assoc,
            num_succ=self.params.num_succ, num_levels=1,
            row_bytes=ROW_BYTES["base"], base_addr=base_addr)
        self._last_row: Row | None = None
        self._last_miss: int | None = None

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        row = self.table.find(miss, sink)
        if row is None:
            return []
        successors = row.successors(0)
        sink.charge_instructions(_CONVENTIONAL_SCAN_INSTR * len(successors))
        return _dedup(successors, exclude=miss)

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        if self._last_row is not None and self._last_miss != miss:
            self.table.insert_successor(self._last_row, 0, miss, sink)
        self._last_row = self.table.find_or_alloc(miss, sink)
        self._last_miss = miss

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        if self._last_row is None:
            return [[] for _ in range(max_level)]
        level1 = list(self._last_row.successors(0))
        # Base only predicts immediate successors; deeper levels are empty
        # (the paper marks Base "not applicable" beyond level 1).
        return [level1] + [[] for _ in range(max_level - 1)]

    def reset(self) -> None:
        self._last_row = None
        self._last_miss = None

    def hard_reset(self) -> None:
        self.table = CorrelationTable(
            num_rows=self.params.num_rows, assoc=self.params.assoc,
            num_succ=self.params.num_succ, num_levels=1,
            row_bytes=ROW_BYTES["base"], base_addr=self.table.base_addr)
        self.reset()


class ChainPrefetcher(UlmtAlgorithm):
    """Multi-level prefetching over the conventional table (Figure 4-(b))."""

    name = "chain"
    traits = AlgorithmTraits(
        name="Chain", levels_prefetched="NumLevels", true_mru_per_level=False,
        prefetch_row_accesses="NumLevels", learning_row_accesses="1",
        response_time="High", space_requirement="1")

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("learn", "reset", "hard_reset")

    def __init__(self, params: CorrelationParams | None = None,
                 base_addr: int = 0x8000_0000) -> None:
        self.params = params or CorrelationParams(num_succ=2, assoc=2, num_levels=3)
        self.table = CorrelationTable(
            num_rows=self.params.num_rows, assoc=self.params.assoc,
            num_succ=self.params.num_succ, num_levels=1,
            row_bytes=ROW_BYTES["chain"], base_addr=base_addr)
        self._last_row: Row | None = None
        self._last_miss: int | None = None

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        prefetches: list[int] = []
        row = self.table.find(miss, sink)
        for _ in range(self.params.num_levels):
            if row is None:
                break
            succs = row.successors(0)
            if not succs:
                break
            sink.charge_instructions(_CONVENTIONAL_SCAN_INSTR * len(succs))
            prefetches.extend(succs)
            # Follow the MRU link to the next level (another search).
            row = self.table.find(succs[0], sink)
        return _dedup(prefetches, exclude=miss)

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        if self._last_row is not None and self._last_miss != miss:
            self.table.insert_successor(self._last_row, 0, miss, sink)
        self._last_row = self.table.find_or_alloc(miss, sink)
        self._last_miss = miss

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        predictions: list[list[int]] = []
        row = self._last_row
        for _ in range(max_level):
            if row is None:
                predictions.append([])
                continue
            succs = list(row.successors(0))
            predictions.append(succs)
            row = self.table.peek(succs[0]) if succs else None
        return predictions

    def reset(self) -> None:
        self._last_row = None
        self._last_miss = None

    def hard_reset(self) -> None:
        self.table = CorrelationTable(
            num_rows=self.params.num_rows, assoc=self.params.assoc,
            num_succ=self.params.num_succ, num_levels=1,
            row_bytes=ROW_BYTES["chain"], base_addr=self.table.base_addr)
        self.reset()


class ReplicatedPrefetcher(UlmtAlgorithm):
    """The paper's new replicated-table algorithm (Figure 4-(c))."""

    name = "repl"
    traits = AlgorithmTraits(
        name="Replicated", levels_prefetched="NumLevels", true_mru_per_level=True,
        prefetch_row_accesses="1", learning_row_accesses="NumLevels",
        response_time="Low", space_requirement="NumLevels")

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("learn", "reset", "hard_reset")

    def __init__(self, params: CorrelationParams | None = None,
                 base_addr: int = 0x8000_0000) -> None:
        self.params = params or CorrelationParams(num_succ=2, assoc=2, num_levels=3)
        self.table = CorrelationTable(
            num_rows=self.params.num_rows, assoc=self.params.assoc,
            num_succ=self.params.num_succ, num_levels=self.params.num_levels,
            row_bytes=ROW_BYTES["repl"], base_addr=base_addr)
        # Pointers to the rows of the last NumLevels misses, most recent
        # first: the pointer-based learning updates that avoid searches.
        self._pointers: deque[Row] = deque(maxlen=self.params.num_levels)
        self._last_miss: int | None = None

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        row = self.table.find(miss, sink)
        if row is None:
            return []
        # A single row access yields every level, MRU-first within a level.
        prefetches: list[int] = []
        for level in range(self.params.num_levels):
            prefetches.extend(row.successors(level))
        return _dedup(prefetches, exclude=miss)

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        if self._last_miss != miss:
            for level, row in enumerate(self._pointers):
                self.table.insert_successor(row, level, miss, sink)
        new_row = self.table.find_or_alloc(miss, sink)
        self._pointers.appendleft(new_row)
        self._last_miss = miss

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        if not self._pointers:
            return [[] for _ in range(max_level)]
        row = self._pointers[0]
        predictions = []
        for level in range(max_level):
            if level < self.params.num_levels:
                predictions.append(list(row.successors(level)))
            else:
                predictions.append([])
        return predictions

    def reset(self) -> None:
        self._pointers.clear()
        self._last_miss = None

    def hard_reset(self) -> None:
        self.table = CorrelationTable(
            num_rows=self.params.num_rows, assoc=self.params.assoc,
            num_succ=self.params.num_succ, num_levels=self.params.num_levels,
            row_bytes=ROW_BYTES["repl"], base_addr=self.table.base_addr)
        self.reset()


#: Table 1 of the paper, generated from the algorithm classes themselves.
TABLE1_TRAITS = [BasePrefetcher.traits, ChainPrefetcher.traits,
                 ReplicatedPrefetcher.traits]
