"""Sequential (stream) prefetching implemented in software by the ULMT.

The paper evaluates two software variants, Seq1 and Seq4 (Table 4), that
observe the L2 miss stream and recognise unit-stride streams the same way
the processor-side hardware prefetcher does: the third miss of a +1/-1
stride sequence establishes a stream, a burst of ``NumPref`` lines is
prefetched, and a stream register remembers the next expected miss so a
later miss on it extends the stream.

The detector core (:class:`StreamDetector`) is shared with the hardware
Conven4 prefetcher in :mod:`repro.cpu.stream_prefetcher`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.algorithms import UlmtAlgorithm, _dedup
from repro.core.table import NULL_SINK, CostSink
from repro.params import SequentialParams


@dataclass
class Stream:
    """One recognised stream.

    ``next_pf`` is the first line not yet prefetched; the prefetched window
    is the ``num_pref`` lines behind it.  A miss (or a late-prefetch
    consumption) landing inside the window tops the stream up so that the
    lookahead stays at ``num_pref`` lines — when prefetches are timely the
    stream goes quiet and resumes at the first unprefetched line, which is
    exactly the "miss on the address in the register" of the paper.
    """

    stride: int
    next_pf: int

    def window_distance(self, line_addr: int) -> int | None:
        """How far ahead ``next_pf`` is of ``line_addr``, in strides.

        Returns None when the address is not on this stream's lattice or
        outside the window.
        """
        delta = (self.next_pf - line_addr) * (1 if self.stride > 0 else -1)
        return delta if delta >= 0 else None


class StreamDetector:
    """Recognises unit-stride streams in a line-address miss sequence.

    Candidate sequences are tracked in a bounded table keyed by the next
    address that would continue them; after the third miss in a sequence a
    stream register is allocated (LRU replacement among ``num_seq``
    registers).
    """

    RECOGNITION_COUNT = 3

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("observe", "observe_for_prediction",
                     "_allocate_stream", "_add_candidate")

    #: Candidate-table capacity.  Deliberately small, like the hardware it
    #: models: a genuine stream's second and third misses arrive within a
    #: few observations, while the widely-spaced coincidental +-1 pairs of
    #: strided sweeps (e.g. FT's transposes) get evicted before they can
    #: establish a false stream.
    DEFAULT_CANDIDATES = 16

    def __init__(self, params: SequentialParams,
                 candidate_capacity: int = DEFAULT_CANDIDATES) -> None:
        self.params = params
        self.candidate_capacity = candidate_capacity
        # next_expected_addr -> (stride, misses seen so far)
        self._candidates: OrderedDict[int, tuple[int, int]] = OrderedDict()
        # LRU-ordered stream registers (last = MRU).
        self._streams: OrderedDict[int, Stream] = OrderedDict()
        self._next_stream_id = 0
        self.streams_recognized = 0

    def observe(self, line_addr: int) -> list[int]:
        """Process one miss; returns line addresses to prefetch (maybe [])."""
        # 1. Is the miss inside (or at the edge of) an established stream's
        #    prefetch window?  Top the lookahead back up to num_pref lines.
        topped = self._top_up(line_addr)
        if topped is not None:
            return topped

        # 2. Does it continue a candidate sequence?
        entry = self._candidates.pop(line_addr, None)
        if entry is not None:
            stride, count = entry
            count += 1
            if count >= self.RECOGNITION_COUNT:
                return self._allocate_stream(line_addr, stride)
            self._candidates[line_addr + stride] = (stride, count)
            return []

        # 3. A new potential sequence in both directions.
        self._add_candidate(line_addr + 1, 1)
        self._add_candidate(line_addr - 1, -1)
        return []

    def consumed(self, line_addr: int) -> list[int]:
        """A previously prefetched line was consumed (late, via an MSHR
        merge): keep the stream's lookahead topped up."""
        return self._top_up(line_addr) or []

    def _top_up(self, line_addr: int) -> list[int] | None:
        num_pref = self.params.num_pref
        for sid, stream in self._streams.items():
            distance = stream.window_distance(line_addr)
            if distance is None or distance > num_pref:
                continue
            self._streams.move_to_end(sid)
            count = min(num_pref, num_pref - distance + 1)
            burst = [stream.next_pf + k * stream.stride for k in range(count)]
            stream.next_pf += count * stream.stride
            return burst
        return None

    def _allocate_stream(self, line_addr: int, stride: int) -> list[int]:
        self.streams_recognized += 1
        if len(self._streams) >= self.params.num_seq:
            self._streams.popitem(last=False)  # evict LRU stream
        burst = [line_addr + k * stride
                 for k in range(1, self.params.num_pref + 1)]
        stream = Stream(stride=stride,
                        next_pf=line_addr + (self.params.num_pref + 1) * stride)
        self._streams[self._next_stream_id] = stream
        self._next_stream_id += 1
        return burst

    def _add_candidate(self, next_addr: int, stride: int) -> None:
        while len(self._candidates) >= self.candidate_capacity:
            self._candidates.popitem(last=False)
        self._candidates[next_addr] = (stride, 1)

    # -- prediction interface (Figure 5) ------------------------------------------

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        """Next ``max_level`` miss addresses each stream predicts.

        In observe-only mode nothing is prefetched, so a stream whose
        register holds ``r`` with stride ``s`` predicts ``r, r+s, r+2s, ...``
        as the upcoming misses.
        """
        predictions: list[list[int]] = [[] for _ in range(max_level)]
        for stream in self._streams.values():
            for level in range(max_level):
                predictions[level].append(
                    stream.next_pf + level * stream.stride)
        return predictions

    def observe_for_prediction(self, line_addr: int) -> None:
        """Observe a miss without generating prefetches.

        In prediction mode the stream register simply tracks the actual miss
        stream: a miss matching (or stepping past) a register advances it by
        one stride instead of a full burst.
        """
        for sid, stream in self._streams.items():
            if line_addr == stream.next_pf:
                stream.next_pf = line_addr + stream.stride
                self._streams.move_to_end(sid)
                return
        entry = self._candidates.pop(line_addr, None)
        if entry is not None:
            stride, count = entry
            count += 1
            if count >= self.RECOGNITION_COUNT:
                self.streams_recognized += 1
                if len(self._streams) >= self.params.num_seq:
                    self._streams.popitem(last=False)
                self._streams[self._next_stream_id] = Stream(
                    stride=stride, next_pf=line_addr + stride)
                self._next_stream_id += 1
            else:
                self._candidates[line_addr + stride] = (stride, count)
            return
        self._add_candidate(line_addr + 1, 1)
        self._add_candidate(line_addr - 1, -1)

    @property
    def active_streams(self) -> int:
        return len(self._streams)

    def reset(self) -> None:
        self._candidates.clear()
        self._streams.clear()


class SequentialUlmtPrefetcher(UlmtAlgorithm):
    """Seq1/Seq4 of Table 4: the stream detector run as a ULMT algorithm."""

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("prefetch_step", "learn", "reset")

    def __init__(self, params: SequentialParams) -> None:
        self.params = params
        self.name = f"seq{params.num_seq}"
        self.detector = StreamDetector(params)
        self._pending: list[int] = []

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        # The stream check is a handful of register compares — charge one
        # direct access against the (tiny, always-cached) stream state.
        sink.charge_row_access(0x7F00_0000)
        self._pending = self.detector.observe(miss)
        return list(self._pending)

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        # Stream state was already updated during the prefetch step.
        pass

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        return self.detector.predict_levels(max_level)

    def reset(self) -> None:
        self.detector.reset()
