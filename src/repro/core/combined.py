"""Composition of ULMT algorithms.

The paper's customisation study (Section 5.2, Table 5) extends the ULMT for
CG with a single-stream sequential algorithm executed *before* Replicated,
so the sequential part answers with low response time while Replicated
covers the irregular remainder.  :class:`CombinedUlmtPrefetcher` expresses
that composition generically: components run in order, their prefetches are
concatenated (deduplicated), learning runs in the same order.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.algorithms import UlmtAlgorithm, _dedup
from repro.core.table import NULL_SINK, CostSink


class CombinedUlmtPrefetcher(UlmtAlgorithm):
    """Run several ULMT algorithms over the same observed miss stream."""

    def __init__(self, components: list[UlmtAlgorithm], name: str | None = None) -> None:
        if not components:
            raise ValueError("combined prefetcher needs at least one component")
        self.components = components
        self.name = name or "+".join(c.name for c in components)

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        prefetches: list[int] = []
        for component in self.components:
            prefetches.extend(component.prefetch_step(miss, sink))
        return _dedup(prefetches)

    def prefetch_batches(self, miss: int,
                         sink: CostSink = NULL_SINK) -> Iterator[list[int]]:
        seen: set[int] = set()
        for component in self.components:
            batch = [a for a in component.prefetch_step(miss, sink)
                     if a not in seen]
            seen.update(batch)
            yield batch

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        for component in self.components:
            component.learn(miss, sink)

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        merged: list[list[int]] = [[] for _ in range(max_level)]
        for component in self.components:
            for level, preds in enumerate(component.predict_levels(max_level)):
                merged[level].extend(preds)
        return [_dedup(level) for level in merged]

    def reset(self) -> None:
        for component in self.components:
            component.reset()

    def hard_reset(self) -> None:
        for component in self.components:
            component.hard_reset()
