"""Cache-conflict-aware prefetching (the paper's conclusion / future work).

    "This work is being extended by ... customizing for ... cache conflict
    detection and elimination.  Customization for cache conflict
    elimination should improve Sparse and Tree, the applications with the
    smallest speedups."

The ULMT observes *physical* miss addresses, so it can compute each line's
L2 set and notice sets that miss far more often than average — the
signature of conflict thrashing.  :class:`ConflictAwarePrefetcher` wraps
any inner algorithm with two conflict defences:

* **prefetch gating** — prefetches into currently-thrashing sets are
  suppressed: they would evict live lines and be evicted themselves before
  use (the ``Replaced`` waste of Figure 9);
* **conflict reporting** — the hot-set list is exported so an OS-level
  remedy (page re-colouring via :meth:`CorrelationTable.remap_page`-style
  machinery) can be driven from it.

The detector uses a decayed per-set miss counter, so phases with different
conflict patterns are tracked as the application moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.algorithms import UlmtAlgorithm
from repro.core.table import NULL_SINK, CostSink

#: Default L2 geometry: 512 KB, 4-way, 64 B lines -> 2048 sets.
DEFAULT_L2_SETS = 2048


@dataclass
class ConflictStats:
    prefetches_gated: int = 0
    prefetches_passed: int = 0

    @property
    def gate_rate(self) -> float:
        total = self.prefetches_gated + self.prefetches_passed
        return self.prefetches_gated / total if total else 0.0


class ConflictDetector:
    """Decayed per-set miss counters with a hot-set threshold."""

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("observe",)

    def __init__(self, num_sets: int = DEFAULT_L2_SETS,
                 decay_period: int = 4096,
                 hot_factor: float = 8.0) -> None:
        if num_sets <= 0 or (num_sets & (num_sets - 1)) != 0:
            raise ValueError(f"num_sets must be a power of two: {num_sets}")
        self.num_sets = num_sets
        self.decay_period = decay_period
        self.hot_factor = hot_factor
        self._counts = [0] * num_sets
        self._total = 0

    def set_of(self, line_addr: int) -> int:
        return line_addr & (self.num_sets - 1)

    def observe(self, line_addr: int) -> None:
        self._counts[self.set_of(line_addr)] += 1
        self._total += 1
        if self._total >= self.decay_period:
            self._counts = [c // 2 for c in self._counts]
            self._total //= 2

    def is_hot(self, line_addr: int) -> bool:
        """True when this line's set misses ``hot_factor`` x the average."""
        if self._total < self.num_sets // 8:
            return False  # not enough evidence yet
        average = self._total / self.num_sets
        return self._counts[self.set_of(line_addr)] > self.hot_factor * average

    def hot_sets(self) -> list[int]:
        if self._total < self.num_sets // 8:
            return []
        average = self._total / self.num_sets
        cutoff = self.hot_factor * average
        return [s for s, c in enumerate(self._counts) if c > cutoff]


class ConflictAwarePrefetcher(UlmtAlgorithm):
    """Wrap an algorithm with conflict detection and prefetch gating."""

    #: Designated state-mutating methods (lint rule PHASE002): gating
    #: stats are counted where the gate runs, learning feeds the detector.
    _STEP_METHODS = ("prefetch_step", "prefetch_batches", "learn")

    def __init__(self, inner: UlmtAlgorithm,
                 detector: ConflictDetector | None = None) -> None:
        self.inner = inner
        self.detector = detector or ConflictDetector()
        self.stats = ConflictStats()
        self.name = f"conflict-aware({inner.name})"

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        batch = self.inner.prefetch_step(miss, sink)
        passed = []
        for addr in batch:
            if self.detector.is_hot(addr):
                self.stats.prefetches_gated += 1
            else:
                self.stats.prefetches_passed += 1
                passed.append(addr)
        return passed

    def prefetch_batches(self, miss: int,
                         sink: CostSink = NULL_SINK) -> Iterator[list[int]]:
        for batch in self.inner.prefetch_batches(miss, sink):
            passed = []
            for addr in batch:
                if self.detector.is_hot(addr):
                    self.stats.prefetches_gated += 1
                else:
                    self.stats.prefetches_passed += 1
                    passed.append(addr)
            yield passed

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        self.detector.observe(miss)
        self.inner.learn(miss, sink)

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        return self.inner.predict_levels(max_level)

    def reset(self) -> None:
        self.inner.reset()
