"""The Filter module of Figure 3.

Correlation prefetching may generate the same address several times in a
short window.  The Filter is a fixed-size FIFO list of recently issued
prefetch addresses sitting in front of queue 3: a request whose address is
already on the list is dropped (and the list left unmodified); otherwise the
address is appended to the tail, evicting the oldest entry when full.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> core)
    from repro.obs.metrics import MetricsRegistry


class PrefetchFilter:
    """Fixed-size FIFO of recently issued prefetch line addresses."""

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("admit", "reset")

    def __init__(self, entries: int = 32) -> None:
        if entries <= 0:
            raise ValueError(f"filter size must be positive: {entries}")
        self.entries = entries
        self._fifo: deque[int] = deque(maxlen=entries)
        self._members: set[int] = set()
        self.passed = 0
        self.dropped = 0
        #: Observability hook; None (the default) costs one test per
        #: admit call (the ULMT prefetch path only).
        self.metrics: "MetricsRegistry | None" = None

    def __len__(self) -> int:
        return len(self._fifo)

    def admit(self, line_addr: int) -> bool:
        """True if the prefetch should be issued; False if filtered out."""
        if line_addr in self._members:
            self.dropped += 1
            if self.metrics is not None:
                self.metrics.count("filter.reject")
            return False
        if len(self._fifo) == self.entries:
            evicted = self._fifo[0]
            self._members.discard(evicted)
        self._fifo.append(line_addr)
        self._members.add(line_addr)
        self.passed += 1
        if self.metrics is not None:
            self.metrics.count("filter.accept")
        return True

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._members

    def reset(self) -> None:
        self._fifo.clear()
        self._members.clear()
