"""Operating-system integration for ULMTs (paper Section 3.4).

Four concerns, each realised here:

* **Protection** — a ULMT has its own address space; it observes physical
  miss addresses and issues prefetches for them but can neither read nor
  write the data.  Our ULMTs only ever handle addresses, never contents,
  so the property holds by construction; :class:`UlmtRegistry` additionally
  keeps per-application state fully disjoint.
* **Multiprogrammed environments** — one ULMT (with its own table) per
  application, so tables never interfere and each application can be
  customised independently.  With ~4 MB per table, 8 applications cost
  ~32 MB of main memory — the paper's "modest fraction".
* **Scheduling** — application and ULMT are scheduled and preempted as a
  group; :meth:`UlmtRegistry.switch_to` models the context switch
  (transient stream/pointer state resets; the software table, being plain
  memory, survives).
* **Page re-mapping** — the OS can notify the ULMT of a re-mapping, which
  relocates the affected table rows (a few microseconds of work); stale
  successors elsewhere heal through learning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.algorithms import UlmtAlgorithm
from repro.core.cost_model import UlmtCostModel
from repro.core.customization import build_algorithm, customization_for
from repro.core.table import CorrelationTable
from repro.core.ulmt import Ulmt, UlmtPrefetch
from repro.memsys.controller import MemoryController

#: Lines per 4 KB page with 64 B L2 lines.
PAGE_LINES = 64


@dataclass
class RegisteredUlmt:
    """One application's ULMT and its bookkeeping."""

    app: str
    ulmt: Ulmt
    context_switches: int = 0
    pages_remapped: int = 0


class UlmtRegistry:
    """Per-application ULMTs sharing one memory processor.

    The registry is the OS-visible face of the scheme: applications
    register (picking up their Table 5 customisation automatically unless
    an explicit algorithm is given), the scheduler switches the active
    thread together with the application, and VM code forwards page
    re-mappings.
    """

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("register", "unregister", "switch_to")

    def __init__(self, controller: MemoryController,
                 table_arena_base: int = 0x8000_0000,
                 table_arena_stride: int = 0x0400_0000) -> None:
        self.controller = controller
        self._threads: dict[str, RegisteredUlmt] = {}
        self._active: Optional[str] = None
        self._arena_base = table_arena_base
        self._arena_stride = table_arena_stride

    # -- registration -----------------------------------------------------------

    def register(self, app: str, algorithm: str | UlmtAlgorithm | None = None,
                 verbose: bool | None = None) -> RegisteredUlmt:
        """Create the ULMT for ``app`` with its own table and cost model."""
        if app in self._threads:
            raise ValueError(f"application {app!r} already has a ULMT")
        customization = customization_for(app)
        if algorithm is None:
            algorithm = (customization.algorithm if customization is not None
                         else "repl")
        if verbose is None:
            verbose = (customization.verbose if customization is not None
                       else False)
        if isinstance(algorithm, str):
            base = (self._arena_base
                    + len(self._threads) * self._arena_stride)
            algorithm = build_algorithm(algorithm, base_addr=base)
        ulmt = Ulmt(algorithm, UlmtCostModel(self.controller),
                    verbose=verbose)
        entry = RegisteredUlmt(app=app, ulmt=ulmt)
        self._threads[app] = entry
        if self._active is None:
            self._active = app
        return entry

    def unregister(self, app: str) -> None:
        del self._threads[app]
        if self._active == app:
            self._active = next(iter(self._threads), None)

    def __len__(self) -> int:
        return len(self._threads)

    def get(self, app: str) -> RegisteredUlmt:
        return self._threads[app]

    # -- scheduling --------------------------------------------------------------

    @property
    def active(self) -> Optional[str]:
        return self._active

    def switch_to(self, app: str) -> RegisteredUlmt:
        """Schedule ``app`` (and therefore its ULMT) onto the processor.

        The preempted thread's transient state (stream registers, pointer
        window) is reset — the correlation table itself lives in memory and
        survives the switch untouched.
        """
        if app not in self._threads:
            raise KeyError(f"no ULMT registered for {app!r}")
        if self._active == app:
            return self._threads[app]
        if self._active is not None:
            outgoing = self._threads[self._active]
            outgoing.ulmt.algorithm.reset()
            outgoing.context_switches += 1
        self._active = app
        return self._threads[app]

    def observe_miss(self, line_addr: int, now: int,
                     is_processor_prefetch: bool = False) -> list[UlmtPrefetch]:
        """Route a miss to the *active* application's ULMT."""
        if self._active is None:
            return []
        return self._threads[self._active].ulmt.observe_miss(
            line_addr, now, is_processor_prefetch)

    # -- virtual memory ----------------------------------------------------------

    def remap_page(self, app: str, old_page: int, new_page: int,
                   page_lines: int = PAGE_LINES) -> int:
        """Forward an OS page re-mapping to ``app``'s ULMT.

        Returns the number of table rows relocated (0 when the algorithm
        keeps no correlation table, e.g. a pure sequential ULMT).
        """
        entry = self._threads[app]
        moved = 0
        for table in _tables_of(entry.ulmt.algorithm):
            moved += table.remap_page(old_page, new_page, page_lines)
        entry.pages_remapped += 1
        return moved

    # -- accounting ----------------------------------------------------------------

    def total_table_bytes(self) -> int:
        """Aggregate table memory across applications (the paper's ~32 MB
        for 8 applications figure is the analogous quantity)."""
        return sum(table.size_bytes
                   for entry in self._threads.values()
                   for table in _tables_of(entry.ulmt.algorithm))


def _tables_of(algorithm: UlmtAlgorithm) -> list[CorrelationTable]:
    """Every correlation table an algorithm (or composition) owns."""
    tables: list[CorrelationTable] = []
    table = getattr(algorithm, "table", None)
    if isinstance(table, CorrelationTable):
        tables.append(table)
    for component in getattr(algorithm, "components", []):
        tables.extend(_tables_of(component))
    inner = getattr(algorithm, "inner", None)
    if inner is not None:
        tables.extend(_tables_of(inner))
    return tables
