"""Execution-cost model of the ULMT on the memory processor.

The ULMTs in the paper are hand-optimised C (branches unrolled, parameters
hardwired, no floating point); their cost is dominated by table searches,
row reads/updates, prefetch-issue work, and — crucially — the memory
processor's own cache behaviour on the software correlation table.  We model
exactly those components:

* every table operation reports itself through the :class:`CostSink`
  interface (``charge_search`` / ``charge_row_access``), adding a calibrated
  number of memory-processor *instructions* and touching the row's address
  in a simulated 32 KB memory-processor L1;
* a cache miss on the table stalls the ULMT for a memory round trip obtained
  from the memory controller (21/56 cycles in DRAM, 65/100 in the North
  Bridge — which is why Figure 10's ReplMC bars show more ``Mem`` time);
* instructions convert to cycles through the 2-issue core's effective issue
  rate, then to 1.6 GHz main-processor cycles (x2).

The model yields the two quantities Figure 2 defines: the **response time**
(observation until the prefetch addresses have been generated — the
prefetching step) and the **occupancy time** (prefetching + learning), plus
the IPC annotation of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.cache import Cache
from repro.memsys.controller import MemoryController
from repro.params import MEMPROC_L1


@dataclass(frozen=True)
class CostConstants:
    """Instruction costs of ULMT primitives (memory-processor instructions).

    Calibrated so the default algorithms land near Figure 10: Repl response
    around 30 main cycles, every occupancy below the 200-cycle budget set by
    the inter-miss distances of Figure 6.
    """

    observe_overhead: int = 4      # dequeue miss, mask, hash set index
    search_base: int = 2
    search_per_way: int = 1        # tag compare per probed way
    row_access: int = 3            # pointer-based row read or update
    issue_per_prefetch: int = 2    # format + deposit one address to queue 3
    #: Effective issue rate of the 2-issue in-order-ish core on this code.
    issue_ipc: float = 1.5
    #: Main-processor cycles per memory-processor cycle (1.6 GHz / 800 MHz).
    clock_ratio: int = 2
    #: Memory-processor cycles for an L1 hit folded into the pipeline.
    cache_hit_cycles: int = 1


@dataclass
class UlmtObservation:
    """Timing of processing one observed miss."""

    start: int
    response: int     # main cycles: observation -> prefetch addresses ready
    occupancy: int    # main cycles: observation -> learning finished
    instructions: int
    mem_stall: int    # main cycles stalled on table cache misses


class UlmtCostModel:
    """Implements :class:`repro.core.table.CostSink` with real timing."""

    #: Designated state-mutating methods (lint rule PHASE002): the
    #: CostSink interface plus the begin/mark/end observation lifecycle.
    _STEP_METHODS = ("begin", "charge_search", "charge_row_access",
                     "charge_instructions", "charge_issues",
                     "mark_response", "end", "_touch")

    def __init__(self, controller: MemoryController,
                 constants: CostConstants | None = None) -> None:
        self.controller = controller
        self.constants = constants or CostConstants()
        self.cache = Cache(MEMPROC_L1)
        # Per-observation state.
        self._start = 0
        self._instr = 0
        self._stall = 0
        self._response: int | None = None
        # Aggregates for Figure 10.
        self.observations = 0
        self.total_instructions = 0
        self.total_busy = 0          # main cycles
        self.total_mem_stall = 0     # main cycles
        self.total_response = 0
        self.total_occupancy = 0
        self.response_busy = 0
        self.response_mem = 0

    # -- CostSink interface ----------------------------------------------------

    def charge_search(self, ways_probed: int, row_addr: int) -> None:
        c = self.constants
        self._instr += c.search_base + c.search_per_way * ways_probed
        self._touch(row_addr)

    def charge_row_access(self, row_addr: int) -> None:
        self._instr += self.constants.row_access
        self._touch(row_addr)

    def charge_instructions(self, count: int) -> None:
        self._instr += count

    # -- observation lifecycle ----------------------------------------------------

    def begin(self, now: int) -> None:
        self._start = now
        self._instr = 0
        self._stall = 0
        self._response = None
        self.charge_instructions(self.constants.observe_overhead)

    def charge_issues(self, num_prefetches: int) -> None:
        self._instr += self.constants.issue_per_prefetch * num_prefetches

    def elapsed(self) -> int:
        """Main cycles spent so far on the current observation."""
        return self._elapsed()

    def mark_response(self) -> None:
        """The prefetch addresses are generated; the response clock stops.

        Only the first call per observation counts (a combined algorithm's
        response is the time to its *first* batch of addresses)."""
        if self._response is not None:
            return
        self._response = self._elapsed()
        self.response_busy += self._busy_main()
        self.response_mem += self._stall

    def end(self) -> UlmtObservation:
        occupancy = self._elapsed()
        response = self._response if self._response is not None else occupancy
        obs = UlmtObservation(start=self._start, response=response,
                              occupancy=occupancy, instructions=self._instr,
                              mem_stall=self._stall)
        self.observations += 1
        self.total_instructions += self._instr
        self.total_busy += self._busy_main()
        self.total_mem_stall += self._stall
        self.total_response += response
        self.total_occupancy += occupancy
        return obs

    # -- aggregates (Figure 10) ------------------------------------------------------

    @property
    def avg_response(self) -> float:
        return self.total_response / self.observations if self.observations else 0.0

    @property
    def avg_occupancy(self) -> float:
        return self.total_occupancy / self.observations if self.observations else 0.0

    @property
    def avg_response_busy(self) -> float:
        return self.response_busy / self.observations if self.observations else 0.0

    @property
    def avg_response_mem(self) -> float:
        return self.response_mem / self.observations if self.observations else 0.0

    @property
    def avg_occupancy_busy(self) -> float:
        return self.total_busy / self.observations if self.observations else 0.0

    @property
    def avg_occupancy_mem(self) -> float:
        return self.total_mem_stall / self.observations if self.observations else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per memory-processor cycle, stalls included."""
        total_main = self.total_busy + self.total_mem_stall
        if total_main == 0:
            return 0.0
        return self.total_instructions / (total_main / self.constants.clock_ratio)

    # -- internals -----------------------------------------------------------------

    def _busy_main(self) -> int:
        c = self.constants
        memproc_cycles = self._instr / c.issue_ipc
        return int(round(memproc_cycles * c.clock_ratio))

    def _elapsed(self) -> int:
        return self._busy_main() + self._stall

    def _touch(self, byte_addr: int) -> None:
        cache = self.cache  # hottest ULMT call site: hoist the lookups
        line = byte_addr // cache.params.line_bytes
        if cache.access(line):
            self._instr += self.constants.cache_hit_cycles
            return
        now = self._start + self._elapsed()
        completion = self.controller.memproc_fetch(byte_addr, now)
        self._stall += max(0, completion - now)
        cache.fill(line)
