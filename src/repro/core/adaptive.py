"""Adaptive on-the-fly algorithm selection (paper Section 3.3.3).

    "Another approach is to adaptively decide the algorithm on-the-fly, as
    the application executes.  In fact, this approach can also be used to
    execute different algorithms in different parts of one application."

:class:`AdaptiveUlmtPrefetcher` realises that idea.  It runs a *stable* of
candidate algorithms; all of them learn from every observed miss, but only
the currently selected one issues prefetches.  A lightweight scoreboard
tracks, per candidate, how often the recently observed misses were among
that candidate's predictions (a shadow accuracy measure that needs no
feedback from the cache).  Every ``epoch`` misses the selector switches to
the best-scoring candidate — so an application that alternates between
streaming and pointer-chasing phases gets Seq-style prefetching in one
phase and Replicated in the other.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.algorithms import UlmtAlgorithm, _dedup
from repro.core.table import NULL_SINK, CostSink


@dataclass
class CandidateScore:
    """Shadow-accuracy scoreboard for one candidate algorithm."""

    name: str
    window: deque = field(default_factory=lambda: deque(maxlen=256))

    def record(self, hit: bool) -> None:
        self.window.append(1 if hit else 0)

    @property
    def accuracy(self) -> float:
        if not self.window:
            return 0.0
        return sum(self.window) / len(self.window)


class ShadowWindow:
    """The last N addresses a candidate would have prefetched.

    A candidate is credited when an observed miss is among its *recent*
    predictions — not merely its latest batch — so far-ahead prefetchers
    (whose whole point is predicting misses several steps early) are scored
    fairly.  This mirrors what the Filter window does for real prefetches.
    """

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("add_batch", "clear")

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._fifo: deque[int] = deque()
        self._counts: dict[int, int] = {}

    def add_batch(self, addresses: list[int]) -> None:
        for addr in addresses:
            self._fifo.append(addr)
            self._counts[addr] = self._counts.get(addr, 0) + 1
        while len(self._fifo) > self.capacity:
            old = self._fifo.popleft()
            remaining = self._counts[old] - 1
            if remaining:
                self._counts[old] = remaining
            else:
                del self._counts[old]

    def __contains__(self, addr: int) -> bool:
        return addr in self._counts

    def clear(self) -> None:
        self._fifo.clear()
        self._counts.clear()


class AdaptiveUlmtPrefetcher(UlmtAlgorithm):
    """Chooses among candidate algorithms as the application executes."""

    name = "adaptive"

    #: Designated state-mutating methods (lint rule PHASE002): selection
    #: state only changes inside the epoch-boundary switch logic.
    _STEP_METHODS = ("_score_and_maybe_switch",)

    def __init__(self, candidates: list[UlmtAlgorithm],
                 epoch: int = 512, hysteresis: float = 0.05) -> None:
        """``candidates`` must be non-empty; the first is the initial
        selection.  ``hysteresis`` is the accuracy margin a challenger needs
        over the incumbent, preventing oscillation between near-equal
        algorithms."""
        if not candidates:
            raise ValueError("adaptive prefetcher needs at least one candidate")
        if epoch <= 0:
            raise ValueError(f"epoch must be positive: {epoch}")
        self.candidates = candidates
        self.epoch = epoch
        self.hysteresis = hysteresis
        self._scores = [CandidateScore(c.name) for c in candidates]
        self._selected = 0
        self._misses_seen = 0
        self._shadows = [ShadowWindow() for _ in candidates]
        self.switches = 0
        self.name = "adaptive(" + ",".join(c.name for c in candidates) + ")"

    @property
    def selected(self) -> UlmtAlgorithm:
        return self.candidates[self._selected]

    # -- UlmtAlgorithm interface ---------------------------------------------------

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        self._score_and_maybe_switch(miss)
        # Every candidate computes its (would-be) prefetches — the shadow
        # predictions scored against the next miss — but only the selected
        # candidate's addresses are issued, and only its work is charged
        # (the shadow bookkeeping is a few registers, folded into the
        # selected candidate's costs).
        issued: list[int] = []
        for i, candidate in enumerate(self.candidates):
            candidate_sink = sink if i == self._selected else NULL_SINK
            batch = candidate.prefetch_step(miss, candidate_sink)
            self._shadows[i].add_batch(batch)
            if i == self._selected:
                issued = batch
        return _dedup(issued, exclude=miss)

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        for i, candidate in enumerate(self.candidates):
            candidate_sink = sink if i == self._selected else NULL_SINK
            candidate.learn(miss, candidate_sink)

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        return self.selected.predict_levels(max_level)

    def reset(self) -> None:
        for candidate in self.candidates:
            candidate.reset()
        for shadow in self._shadows:
            shadow.clear()

    # -- selection machinery ----------------------------------------------------------

    def _score_and_maybe_switch(self, miss: int) -> None:
        if self._misses_seen > 0:
            for i, score in enumerate(self._scores):
                score.record(miss in self._shadows[i])
        self._misses_seen += 1
        if self._misses_seen % self.epoch != 0:
            return
        best = max(range(len(self.candidates)),
                   key=lambda i: self._scores[i].accuracy)
        if best != self._selected:
            margin = (self._scores[best].accuracy
                      - self._scores[self._selected].accuracy)
            if margin > self.hysteresis:
                self._selected = best
                self.switches += 1

    def accuracies(self) -> dict[str, float]:
        """Current shadow accuracy per candidate (diagnostics)."""
        return {s.name: s.accuracy for s in self._scores}
