"""Algorithm construction and per-application customisation (Table 5).

A software prefetcher can be customised per application — the paper calls
this the key flexibility advantage of the ULMT approach.  This module is the
registry that realises it:

* :func:`build_algorithm` constructs any named ULMT algorithm
  (``base``, ``chain``, ``repl``, ``seq1``, ``seq4``, compositions like
  ``seq1+repl``, and parameter overrides like ``repl@levels=4``);
* :data:`CUSTOMIZATIONS` records the paper's Table 5 choices — CG runs
  Seq1+Repl in Verbose mode, MST and Mcf run Repl with NumLevels = 4;
* :class:`ProfilingAlgorithm` demonstrates the profiling use of a ULMT
  mentioned in Section 3.3.3 (miss counts, hot pages, page conflicts).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.algorithms import (
    BasePrefetcher,
    ChainPrefetcher,
    ReplicatedPrefetcher,
    UlmtAlgorithm,
)
from repro.core.combined import CombinedUlmtPrefetcher
from repro.core.sequential import SequentialUlmtPrefetcher
from repro.core.table import NULL_SINK, CostSink
from repro.params import (
    BASE_PARAMS,
    CHAIN_PARAMS,
    REPL_PARAMS,
    SEQ1_PARAMS,
    SEQ4_PARAMS,
    CorrelationParams,
    SequentialParams,
)


@dataclass(frozen=True)
class Customization:
    """One Table 5 entry: which algorithm a ULMT runs for an application."""

    algorithm: str
    verbose: bool = False


#: Table 5 of the paper (Conven4 stays on alongside these).
CUSTOMIZATIONS: dict[str, Customization] = {
    "cg": Customization(algorithm="seq1+repl", verbose=True),
    "mst": Customization(algorithm="repl@levels=4", verbose=False),
    "mcf": Customization(algorithm="repl@levels=4", verbose=False),
}


def _parse_overrides(spec: str) -> tuple[str, dict[str, int]]:
    """Split ``"repl@levels=4,rows=8192"`` into a name and override map."""
    if "@" not in spec:
        return spec, {}
    name, _, override_text = spec.partition("@")
    overrides: dict[str, int] = {}
    for item in override_text.split(","):
        key, _, value = item.partition("=")
        if not value:
            raise ValueError(f"malformed algorithm override: {item!r}")
        overrides[key.strip()] = int(value)
    return name, overrides


def _correlation_params(defaults: CorrelationParams, num_rows: int | None,
                        overrides: dict[str, int]) -> CorrelationParams:
    params = defaults
    if num_rows is not None:
        params = params.replaced(num_rows=num_rows)
    if "levels" in overrides:
        params = params.replaced(num_levels=overrides["levels"])
    if "succ" in overrides:
        params = params.replaced(num_succ=overrides["succ"])
    if "rows" in overrides:
        params = params.replaced(num_rows=overrides["rows"])
    return params


def build_algorithm(spec: str, num_rows: int | None = None,
                    base_addr: int = 0x8000_0000) -> UlmtAlgorithm:
    """Construct a ULMT algorithm from a specification string.

    ``spec`` is an algorithm name (``base``, ``chain``, ``repl``, ``seq1``,
    ``seq4``), optionally with overrides (``repl@levels=4``), optionally
    composed with ``+`` (``seq1+repl``).  Two wrapper prefixes realise the
    paper's future-work customisations: ``conflict:<spec>`` adds
    cache-conflict gating, and ``adaptive:<specA>|<specB>|...`` selects
    among candidates on the fly.  ``num_rows`` overrides the table size for
    correlation algorithms (per-application sizing, Table 2).
    """
    from repro.core.adaptive import AdaptiveUlmtPrefetcher
    from repro.core.conflict import ConflictAwarePrefetcher

    spec = spec.strip()
    if spec.startswith("conflict:"):
        inner = build_algorithm(spec[len("conflict:"):], num_rows, base_addr)
        return ConflictAwarePrefetcher(inner)
    if spec.startswith("adaptive:"):
        names = [n.strip() for n in spec[len("adaptive:"):].split("|")
                 if n.strip()]
        if not names:
            raise ValueError(f"adaptive spec needs candidates: {spec!r}")
        candidates = [build_algorithm(n, num_rows,
                                      base_addr + i * 0x0100_0000)
                      for i, n in enumerate(names)]
        return AdaptiveUlmtPrefetcher(candidates)

    parts = [p.strip() for p in spec.split("+") if p.strip()]
    if not parts:
        raise ValueError(f"empty algorithm specification: {spec!r}")
    if len(parts) > 1:
        components = [build_algorithm(p, num_rows, base_addr + i * 0x0100_0000)
                      for i, p in enumerate(parts)]
        return CombinedUlmtPrefetcher(components, name=spec)

    name, overrides = _parse_overrides(parts[0])
    if name in ("base", "chain", "repl"):
        defaults = {"base": BASE_PARAMS, "chain": CHAIN_PARAMS,
                    "repl": REPL_PARAMS}[name]
        cls = {"base": BasePrefetcher, "chain": ChainPrefetcher,
               "repl": ReplicatedPrefetcher}[name]
        params = _correlation_params(defaults, num_rows, overrides)
        algorithm = cls(params, base_addr=base_addr)
        if overrides:
            algorithm.name = parts[0]   # e.g. "repl@levels=4"
        return algorithm
    if name in ("seq1", "seq4"):
        defaults = SEQ1_PARAMS if name == "seq1" else SEQ4_PARAMS
        num_pref = overrides.get("pref", defaults.num_pref)
        num_seq = overrides.get("streams", defaults.num_seq)
        return SequentialUlmtPrefetcher(
            SequentialParams(num_seq=num_seq, num_pref=num_pref))
    raise ValueError(f"unknown ULMT algorithm: {name!r}")


def customization_for(app: str) -> Customization | None:
    """The paper's Table 5 customisation for ``app``, if any."""
    return CUSTOMIZATIONS.get(app.lower())


class ProfilingAlgorithm(UlmtAlgorithm):
    """A ULMT used for application profiling (paper Section 3.3.3).

    Wraps another algorithm (or runs standalone with no prefetching) while
    collecting the higher-level information the paper suggests a ULMT can
    infer from the miss stream: per-page miss counts, the hottest pages,
    and cache-set conflict estimates.
    """

    name = "profiling"

    #: Designated state-mutating methods (lint rule PHASE002).
    _STEP_METHODS = ("learn",)

    def __init__(self, inner: UlmtAlgorithm | None = None,
                 page_lines: int = 64, l2_sets: int = 2048) -> None:
        self.inner = inner
        self.page_lines = page_lines
        self.l2_sets = l2_sets
        self.page_misses: Counter[int] = Counter()
        self.set_misses: Counter[int] = Counter()
        self.total_misses = 0

    def prefetch_step(self, miss: int, sink: CostSink = NULL_SINK) -> list[int]:
        if self.inner is None:
            return []
        return self.inner.prefetch_step(miss, sink)

    def learn(self, miss: int, sink: CostSink = NULL_SINK) -> None:
        self.total_misses += 1
        self.page_misses[miss // self.page_lines] += 1
        self.set_misses[miss % self.l2_sets] += 1
        if self.inner is not None:
            self.inner.learn(miss, sink)

    def predict_levels(self, max_level: int = 3) -> list[list[int]]:
        if self.inner is None:
            return [[] for _ in range(max_level)]
        return self.inner.predict_levels(max_level)

    def hot_pages(self, count: int = 10) -> list[tuple[int, int]]:
        """The ``count`` pages with the most L2 misses."""
        return self.page_misses.most_common(count)

    def conflict_sets(self, threshold_fraction: float = 0.01) -> list[int]:
        """L2 sets absorbing more than ``threshold_fraction`` of all misses —
        candidates for the cache-conflict elimination the paper's conclusion
        proposes as future ULMT customisation."""
        if self.total_misses == 0:
            return []
        cutoff = self.total_misses * threshold_fraction
        return sorted(s for s, n in self.set_misses.items() if n > cutoff)

    def reset(self) -> None:
        if self.inner is not None:
            self.inner.reset()
