"""Top-level entry points: run one simulation or an evaluation matrix."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (perf -> sim)
    from repro.multicore.result import MulticoreResult
    from repro.obs.tracer import Tracer
    from repro.perf.cache import ResultCache

from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.stats import SimResult
from repro.sim.system import System
from repro.workloads.registry import get_trace, list_workloads
from repro.workloads.trace import Trace


def run_simulation(workload: str | Trace,
                   config: str | SystemConfig = "nopref",
                   scale: float = 1.0,
                   tracer: "Tracer | None" = None,
                   seed: "int | None" = None
                   ) -> "SimResult | MulticoreResult":
    """Simulate one application under one system configuration.

    ``workload`` is an application name from
    :func:`repro.workloads.list_workloads` or an explicit :class:`Trace`;
    ``config`` is a preset name from :mod:`repro.sim.config` (or ``custom``
    for the per-application Table 5 customisation) or a full
    :class:`SystemConfig`.  ``tracer`` optionally installs an observability
    :class:`~repro.obs.tracer.Tracer` (see
    :func:`repro.obs.runner.run_traced` for the packaged form).  ``seed``
    overrides the workload trace seed (campaign repetitions sweep it);
    it is ignored for an explicit :class:`Trace`, which is already built.

    A config with ``num_cores > 1`` dispatches to
    :func:`repro.multicore.driver.run_multicore`: ``workload`` is then a
    ``+``-joined bundle (``"tree+cg"``) and the return value a
    :class:`~repro.multicore.result.MulticoreResult`.  Multicore tiles
    always run the event engine — the batch kernel cannot interleave —
    and only reachable through an explicit :class:`SystemConfig`
    (every named preset is single-core).
    """
    if isinstance(config, SystemConfig) and config.num_cores > 1:
        if isinstance(workload, Trace):
            raise ValueError("multicore bundles are named app bundles "
                             "('tree+cg'); explicit Trace objects carry "
                             "no per-core split")
        from repro.multicore.driver import run_multicore
        return run_multicore(workload, config, scale=scale,
                             tracer=tracer, seed=seed)
    if isinstance(workload, Trace):
        trace = workload
        app_name = trace.name or "trace"
    elif seed is not None:
        trace = get_trace(workload, scale=scale, seed=seed, cache=False)
        app_name = workload
    else:
        trace = get_trace(workload, scale=scale)
        app_name = workload
    if isinstance(config, str):
        config = (custom_config(app_name) if config == "custom"
                  else preset(config))
    if config.engine == "batch":
        from repro.kernel.engine import run_batch
        return run_batch(trace, config, tracer=tracer)
    if config.engine != "event":
        raise ValueError(f"unknown simulation engine: {config.engine!r} "
                         f"(expected 'event' or 'batch')")
    system = System(config, tracer=tracer)
    return system.run(trace)


def run_matrix(workloads: Iterable[str] | None = None,
               configs: Iterable[str | SystemConfig] = ("nopref",),
               scale: float = 1.0, jobs: int = 1,
               cache: "ResultCache | None" = None,
               trace: bool = False,
               ) -> Mapping[tuple[str, "str | SystemConfig"], Any]:
    """Run every (workload, config) pair.

    String configs key their results on ``(app, config_name)``.  Explicit
    :class:`SystemConfig` instances key on ``(app, config)`` — the frozen
    config itself — because two ad-hoc configs may share a preset's ``name``
    (e.g. a fault-plan variant of ``"repl"``), and a name-based key would
    silently hand back only one of their results.

    ``jobs > 1`` fans the matrix out across worker processes (result
    collection stays in deterministic matrix order); ``cache`` is an
    optional :class:`repro.perf.cache.ResultCache` consulted and filled
    either way.  With ``trace=True`` every cell runs under the
    observability tracer and the mapping holds
    :class:`repro.obs.runner.TraceRun` values (``.result`` is the
    :class:`SimResult`, identical to an untraced run); per-worker metric
    snapshots merge deterministically because collection stays in matrix
    order and the snapshot merge is order-independent
    (``tests/test_obs_merge.py``).
    """
    apps = list(workloads or list_workloads())
    config_list = list(configs)
    results: dict[tuple[str, str | SystemConfig], Any] = {}

    def _serial_run(app: str, config: "str | SystemConfig") -> Any:
        if trace:
            from repro.obs.runner import run_traced
            return run_traced(app, config, scale=scale)
        return run_simulation(app, config, scale=scale)

    def _install(app: str, config: "str | SystemConfig",
                 result: Any) -> None:
        sim = result.result if trace else result
        key_config = (config if isinstance(config, SystemConfig)
                      else sim.config_name)
        results[(app, key_config)] = result

    if jobs > 1 or cache is not None:
        from repro.perf.pool import run_tasks, sim_task, trace_task
        make_task = trace_task if trace else sim_task
        tasks = [make_task(app, config, scale)
                 for app in apps for config in config_list]
        values = run_tasks(tasks, jobs=jobs, cache=cache)
        for task, value in zip(tasks, values):
            if value is None:  # pool failure: recompute (and surface) here
                value = _serial_run(task.app, task.config)
            _install(task.app, task.config, value)
    else:
        for app in apps:
            for config in config_list:
                _install(app, config, _serial_run(app, config))
    return results


def run_seeds(workload: str, config: str | SystemConfig,
              seeds: Iterable[int], scale: float = 1.0,
              baseline_config: str | SystemConfig = "nopref"
              ) -> "SeedStudy":
    """Robustness check: the same experiment over multiple workload seeds.

    Each seed regenerates the workload trace (different heap layouts and
    random structure, same algorithmic shape) and measures the speedup of
    ``config`` over ``baseline_config``.  Returns mean and spread — used
    to confirm that the reproduced shapes are not artifacts of one layout.
    """
    speedups = []
    for seed in seeds:
        trace = get_trace(workload, scale=scale, seed=seed, cache=False)
        base = run_simulation(trace, baseline_config)
        result = run_simulation(trace, config)
        speedups.append(base.execution_time / result.execution_time)
    return SeedStudy(workload=workload, speedups=speedups)


class SeedStudy:
    """Outcome of :func:`run_seeds`."""

    def __init__(self, workload: str, speedups: list[float]) -> None:
        if not speedups:
            raise ValueError("seed study needs at least one seed")
        self.workload = workload
        self.speedups = speedups

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def spread(self) -> float:
        """Max - min speedup across seeds."""
        return max(self.speedups) - min(self.speedups)

    def __repr__(self) -> str:
        return (f"SeedStudy({self.workload}: mean={self.mean:.2f}, "
                f"spread={self.spread:.2f}, n={len(self.speedups)})")


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (speedup aggregation)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values: {v}")
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper averages application speedups)."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)
