"""Top-level entry points: run one simulation or an evaluation matrix."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.stats import SimResult
from repro.sim.system import System
from repro.workloads.registry import get_trace, list_workloads
from repro.workloads.trace import Trace


def run_simulation(workload: str | Trace,
                   config: str | SystemConfig = "nopref",
                   scale: float = 1.0) -> SimResult:
    """Simulate one application under one system configuration.

    ``workload`` is an application name from
    :func:`repro.workloads.list_workloads` or an explicit :class:`Trace`;
    ``config`` is a preset name from :mod:`repro.sim.config` (or ``custom``
    for the per-application Table 5 customisation) or a full
    :class:`SystemConfig`.
    """
    if isinstance(workload, Trace):
        trace = workload
        app_name = trace.name or "trace"
    else:
        trace = get_trace(workload, scale=scale)
        app_name = workload
    if isinstance(config, str):
        config = (custom_config(app_name) if config == "custom"
                  else preset(config))
    system = System(config)
    return system.run(trace)


def run_matrix(workloads: Iterable[str] | None = None,
               configs: Iterable[str | SystemConfig] = ("nopref",),
               scale: float = 1.0) -> Mapping[tuple[str, str], SimResult]:
    """Run every (workload, config) pair; keys are (app, config-name)."""
    results: dict[tuple[str, str], SimResult] = {}
    for app in (workloads or list_workloads()):
        for config in configs:
            result = run_simulation(app, config, scale=scale)
            results[(app, result.config_name)] = result
    return results


def run_seeds(workload: str, config: str | SystemConfig,
              seeds: Iterable[int], scale: float = 1.0,
              baseline_config: str | SystemConfig = "nopref"
              ) -> "SeedStudy":
    """Robustness check: the same experiment over multiple workload seeds.

    Each seed regenerates the workload trace (different heap layouts and
    random structure, same algorithmic shape) and measures the speedup of
    ``config`` over ``baseline_config``.  Returns mean and spread — used
    to confirm that the reproduced shapes are not artifacts of one layout.
    """
    speedups = []
    for seed in seeds:
        trace = get_trace(workload, scale=scale, seed=seed, cache=False)
        base = run_simulation(trace, baseline_config)
        result = run_simulation(trace, config)
        speedups.append(base.execution_time / result.execution_time)
    return SeedStudy(workload=workload, speedups=speedups)


class SeedStudy:
    """Outcome of :func:`run_seeds`."""

    def __init__(self, workload: str, speedups: list[float]) -> None:
        if not speedups:
            raise ValueError("seed study needs at least one seed")
        self.workload = workload
        self.speedups = speedups

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def spread(self) -> float:
        """Max - min speedup across seeds."""
        return max(self.speedups) - min(self.speedups)

    def __repr__(self) -> str:
        return (f"SeedStudy({self.workload}: mean={self.mean:.2f}, "
                f"spread={self.spread:.2f}, n={len(self.speedups)})")


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (speedup aggregation)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values: {v}")
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper averages application speedups)."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)
