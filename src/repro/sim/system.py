"""Full-system simulator: Figure 3 of the paper wired together.

The :class:`System` implements the :class:`~repro.cpu.processor.MemoryInterface`
the main processor talks to.  Below the processor's L1 it owns:

* the L2 cache with push-prefetch support;
* the memory controller (bus + DRAM) in either placement;
* optionally, the memory processor running the ULMT, with queue 2
  (observation), queue 3 (prefetch requests), the Filter module, and the
  queue 2/3 cross-matching described in Section 3.2.

Time is carried by the main processor's trace walk; the system processes
deferred work (queue-3 issues, prefetch arrivals, ULMT backlog, write-back
drains) lazily whenever the processor presents a new access — equivalent to
an event queue because every deferred item carries its own timestamp and the
processor's clock is monotonic.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim,
    # multicore -> sim)
    from repro.multicore.coordination import PushBandwidthGate
    from repro.obs.tracer import Tracer

from repro.core.ulmt import UlmtPrefetch
from repro.cpu.memproc import MemoryProcessor
from repro.faults.invariants import InvariantChecker, invariants_enabled_in_env
from repro.faults.plan import FaultInjector
from repro.faults.watchdog import UlmtWatchdog
from repro.cpu.processor import (
    LEVEL_L2,
    LEVEL_MEM,
    AccessResult,
    MainProcessor,
    ProcessorStats,
)
from repro.cpu.stream_prefetcher import HardwareStreamPrefetcher
from repro.memsys.controller import MemoryController
from repro.memsys.l2 import DemandKind, L2Cache
from repro.memsys.queues import PrefetchQueue, PrefetchRequest
from repro.core.customization import build_algorithm
from repro.params import (
    MAIN_L2,
    QUEUES,
    MainProcessorParams,
    MemoryParams,
    QueueParams,
)
from repro.sim.config import SystemConfig
from repro.sim.stats import (
    RobustnessStats,
    SimResult,
    UlmtTimingStats,
    distance_bin,
)
from repro.workloads.trace import Trace


class System:
    """One simulated machine: main processor + memory system + ULMT."""

    def __init__(self, config: SystemConfig,
                 memory_params: MemoryParams | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self.config = config
        #: Observability (docs/OBSERVABILITY.md): one tracer threaded
        #: through every Figure-3 subsystem.  None (the default) keeps the
        #: simulation bit-identical and allocation-free on the hot path —
        #: every emission site guards with ``is not None``.
        self.tracer = tracer
        self.l2 = L2Cache(MAIN_L2)
        self.controller = MemoryController(memory_params or MemoryParams(),
                                           location=config.location)
        if tracer is not None:
            self.l2.tracer = tracer
            self.l2.mshrs.metrics = tracer.metrics
            self.controller.tracer = tracer
        queue_params = QueueParams(
            queue_depth=config.queue_depth or QUEUES.queue_depth,
            filter_entries=config.filter_entries or QUEUES.filter_entries)
        #: Fault injection: inactive (and never consulted beyond a flag
        #: test) unless the config carries a non-zero plan.
        self.fault_injector = FaultInjector(config.fault_plan)
        use_watchdog = (config.watchdog if config.watchdog is not None
                        else self.fault_injector.active)
        self.memproc: Optional[MemoryProcessor] = None
        if config.ulmt_algorithm is not None:
            algorithm = build_algorithm(config.ulmt_algorithm,
                                        num_rows=config.num_rows)
            watchdog = (UlmtWatchdog(queue_params.queue_depth)
                        if use_watchdog else None)
            self.memproc = MemoryProcessor(self.controller, algorithm,
                                           verbose=config.verbose,
                                           queue_params=queue_params,
                                           fault_injector=self.fault_injector,
                                           watchdog=watchdog,
                                           tracer=tracer)
        stream = (HardwareStreamPrefetcher(config.conven)
                  if config.conven is not None else None)
        proc_params = (MainProcessorParams(rob_refs=config.rob_refs)
                       if config.rob_refs is not None else None)
        self.processor = MainProcessor(self, params=proc_params,
                                       stream_prefetcher=stream)
        self.dasp = None
        if config.dasp:
            from repro.memsys.dasp import DaspEngine
            self.dasp = DaspEngine(self.controller)

        self.prefetch_queue = PrefetchQueue(queue_params.queue_depth)  # queue 3
        self.prefetch_queue.tracer = tracer
        #: Cross-core push-bandwidth arbitration
        #: (:class:`repro.multicore.coordination.PushBandwidthGate`): None
        #: (the default, and always on a solo machine — a single core owns
        #: the push path) keeps queue-3 issue bit-identical and free; the
        #: multicore driver installs each tile's granted budget here.
        self.push_gate: "Optional[PushBandwidthGate]" = None
        #: in-flight pushed lines: line -> (arrival, demand_merged)
        self._inflight: dict[int, int] = {}
        self._arrivals: list[tuple[int, int, bool]] = []  # heap
        self._merged: set[int] = set()
        #: Windowed coverage/accuracy sampling (tracing only): snapshot of
        #: the L2 classification counters at the last window boundary.
        self._window_misses = 0
        self._window_base: tuple[int, int, int, int] = (0, 0, 0, 0)
        #: One (eliminated, original, arrived) triple per completed
        #: sampling window, in run order (tracing only) — the raw series
        #: behind the chaos sweep's per-window degradation report.
        self.window_log: list[tuple[int, int, int]] = []

        # Figure 6 bookkeeping.
        self._miss_bins = [0, 0, 0, 0]
        self._last_miss_time: Optional[int] = None
        self.demand_misses_to_memory = 0
        self.prefetches_issued = 0
        #: Optional hook called as (line_addr, now, is_prefetch) for every
        #: miss that reaches memory — what queue 2 would observe.  Used by
        #: the Figure 5 predictability analysis.
        self.miss_observer = None

        #: Cross-structure bookkeeping audit (tests/CI); None = no-op path.
        self.invariants: Optional[InvariantChecker] = (
            InvariantChecker()
            if config.invariants or invariants_enabled_in_env() else None)

    # -- MemoryInterface -----------------------------------------------------------

    def access(self, l2_line: int, is_write: bool, now: int,
               is_prefetch: bool) -> AccessResult:
        """Service one L1 miss (demand or Conven4 prefetch)."""
        result = self._access(l2_line, is_write, now, is_prefetch)
        if self.invariants is not None:
            self.invariants.audit(self)
        return result

    def _access(self, l2_line: int, is_write: bool, now: int,
                is_prefetch: bool) -> AccessResult:
        self._advance(now)

        outcome = self.l2.demand_lookup(l2_line, is_write, now)
        while outcome.kind is DemandKind.MISS_MSHR_FULL:
            now = max(now + 1, outcome.earliest_free)
            self._advance(now)
            outcome = self.l2.demand_lookup(l2_line, is_write, now)

        if outcome.kind is DemandKind.HIT:
            return AccessResult(now + self.l2.params.hit_cycles, LEVEL_L2)

        if outcome.kind is DemandKind.PENDING:
            return AccessResult(outcome.completion_time, LEVEL_MEM)

        # A genuine L2 miss.  First: does an in-flight pushed prefetch cover
        # it?  (DelayedHit — the miss waits only for the push to arrive.)
        arrival = self._inflight.get(l2_line)
        if arrival is not None:
            self._merged.add(l2_line)
            del self._inflight[l2_line]
            if arrival > now:
                self.l2.stats.delayed_hits += 1
            else:
                self.l2.stats.prefetch_hits += 1
            if self.tracer is not None:
                self.tracer.emit("push.merge_demand", now, l2_line,
                                 arrival=arrival)
                self.tracer.metrics.count("push.merge_demand")
            return AccessResult(max(arrival, now), LEVEL_MEM)

        # Queue 2/3 cross-match: a queued-but-unissued prefetch for this
        # address is superseded by the demand request.
        self.prefetch_queue.cancel_address(l2_line)

        if self.dasp is not None and not is_prefetch:
            completion = self.dasp.demand_fetch(l2_line, now)
        else:
            completion = self.controller.demand_fetch(
                l2_line * 64, now, low_priority=is_prefetch)
        self.l2.register_demand_miss(l2_line, is_write, now, completion)
        if not is_prefetch:
            self._record_miss_distance(now)
        self.demand_misses_to_memory += 1
        if self.tracer is not None:
            self._window_sample()
        if self.miss_observer is not None:
            self.miss_observer(l2_line, now, is_prefetch)

        if self.memproc is not None:
            issued = self.memproc.observe_miss(l2_line, now,
                                               is_processor_prefetch=is_prefetch)
            self._enqueue_prefetches(issued)
        return AccessResult(completion, LEVEL_MEM)

    # -- deferred work ----------------------------------------------------------------

    def _advance(self, now: int) -> None:
        """Process every deferred item with a timestamp at or before ``now``.

        Runs on every processor access, so each sub-step is guarded by a
        cheap emptiness test — on the NoPref configuration the whole call
        reduces to four comparisons.
        """
        if self.l2.mshrs.any_due(now):
            for wb_line in self.l2.retire(now):
                self.controller.writeback(wb_line * 64, now)
        if self.memproc is not None:
            issued = self.memproc.drain(now)
            if issued:
                self._enqueue_prefetches(issued)
        if len(self.prefetch_queue):
            self._issue_prefetches(now)
        if self._arrivals:
            self._process_arrivals(now)

    def _enqueue_prefetches(self, issued: list[UlmtPrefetch]) -> None:
        inj = self.fault_injector
        faulty = inj.active  # hoisted: constant for the run
        for pf in issued:
            if pf.line_addr in self._inflight:
                continue
            if faulty and inj.reject_queue3():
                # Injected queue-3 overflow pressure: the deposit bounces.
                continue
            self.prefetch_queue.push(PrefetchRequest(pf.line_addr, pf.issue_time))

    #: Demand misses per coverage/accuracy sampling window (tracing only).
    COVERAGE_WINDOW = 256

    def _window_sample(self) -> None:
        """Per-window prefetch coverage/accuracy (tracing enabled only).

        Every :data:`COVERAGE_WINDOW` demand misses to memory, the delta of
        the L2 classification counters over the window becomes one
        histogram sample each of ``l2.window_coverage_pct`` (fraction of
        the window's would-be misses fully or partially eliminated) and
        ``prefetch.window_accuracy_pct`` (useful pushes / pushes arrived).
        """
        self._window_misses += 1
        if self._window_misses < self.COVERAGE_WINDOW:
            return
        self._window_misses = 0
        eliminated, original, arrived = self._window_delta()
        self.window_log.append((eliminated, original, arrived))
        metrics = self.tracer.metrics  # type: ignore[union-attr]
        if original:
            metrics.observe("l2.window_coverage_pct",
                            (100 * eliminated) // original)
        if arrived:
            metrics.observe("prefetch.window_accuracy_pct",
                            (100 * eliminated) // arrived)

    def _window_delta(self) -> tuple[int, int, int]:
        """(eliminated, original, arrived) since the last window boundary
        (and advance the boundary to now)."""
        stats = self.l2.stats
        current = (stats.prefetch_hits, stats.delayed_hits,
                   stats.nonpref_misses, stats.total_prefetches_arrived)
        base = self._window_base
        self._window_base = current
        hits = current[0] - base[0]
        delayed = current[1] - base[1]
        remaining = current[2] - base[2]
        arrived = current[3] - base[3]
        eliminated = hits + delayed
        return eliminated, eliminated + remaining, arrived

    def window_tail(self) -> Optional[tuple[int, int, int]]:
        """The partial window still open at end of run (None if empty).

        Read after :meth:`run`; the tail is *not* folded into the
        histogram metrics (which would retroactively change the golden
        traces) — only the chaos sweep's window series consumes it.
        """
        if self.tracer is None or self._window_misses == 0:
            return None
        return self._window_delta()

    def _issue_prefetches(self, now: int) -> None:
        """Move due queue-3 entries into the memory system."""
        inj = self.fault_injector
        faulty = inj.active  # hoisted: constant for the run
        gate = self.push_gate
        tr = self.tracer
        while True:
            head = self.prefetch_queue.pop()
            if head is None:
                return
            if head.issue_time > now:
                # Not due yet: put it back and stop (entries are in
                # near-increasing issue order).
                self.prefetch_queue.push_front(head)
                return
            if head.line_addr in self._inflight:
                continue
            if gate is not None and not gate.try_issue(now):
                # This window's push-bandwidth grant is spent: hold the
                # head until the next window opens.  Queue 3 backs up
                # behind it, which is how cross-core contention surfaces
                # as overflow drops and demand cancels.
                self.prefetch_queue.push_front(PrefetchRequest(
                    head.line_addr, gate.next_window_start(), head.retries))
                return
            if faulty and inj.lose_push():
                # The push vanished in transit.  Bounded-retry semantics:
                # re-queue it with a backoff until the retry budget is
                # spent, then give it up for good.
                if head.retries < inj.plan.push_retry_limit:
                    inj.stats.pushes_retried += 1
                    retry_at = head.issue_time + inj.plan.push_retry_backoff
                    self.prefetch_queue.push(PrefetchRequest(
                        head.line_addr, retry_at, head.retries + 1))
                else:
                    inj.stats.pushes_abandoned += 1
                continue
            arrival = self.controller.push_prefetch(head.line_addr * 64,
                                                    head.issue_time)
            if faulty:
                # A delayed push arrives late (and may race a demand miss).
                arrival += inj.push_delay()
            self.prefetches_issued += 1
            self._inflight[head.line_addr] = arrival
            heapq.heappush(self._arrivals, (arrival, head.line_addr, False))
            if tr is not None:
                tr.emit("push.issue", head.issue_time, head.line_addr,
                        arrival=arrival)

    def _process_arrivals(self, now: int) -> None:
        tr = self.tracer
        while self._arrivals and self._arrivals[0][0] <= now:
            arrival, line, _ = heapq.heappop(self._arrivals)
            if line in self._merged:
                # A demand miss consumed this push in flight; install the
                # line as a normal (referenced) fill.
                self._merged.discard(line)
                self.l2.fill_demand_merged(line, arrival)
                if tr is not None:
                    tr.emit("push.merge_fill", arrival, line)
                continue
            if line in self._inflight:
                del self._inflight[line]
                if tr is not None:
                    tr.emit("push.arrive", arrival, line)
                self.l2.accept_prefetch(line, arrival)

    def _record_miss_distance(self, now: int) -> None:
        if self._last_miss_time is not None:
            self._miss_bins[distance_bin(now - self._last_miss_time)] += 1
        self._last_miss_time = now

    # -- running ---------------------------------------------------------------------

    def run(self, trace: Trace) -> SimResult:
        processor_stats = self.processor.run(trace)
        return self.finalize_result(trace.name, processor_stats)

    def finalize_result(self, workload: str,
                        processor_stats: ProcessorStats) -> SimResult:
        """Flush end-of-run deferred work and assemble the result.

        Shared by :meth:`run` and the batch kernel
        (:mod:`repro.kernel.engine`), which drives the trace walk itself
        but reuses the oracle's drain + assembly so both engines produce
        structurally identical :class:`SimResult` objects.
        """
        self._finalize(processor_stats)
        return self._result(workload, processor_stats)

    def _finalize(self, processor_stats: ProcessorStats) -> None:
        end = processor_stats.finish_time
        if self.memproc is not None:
            self._enqueue_prefetches(self.memproc.drain_all())
        self._issue_prefetches(end + 10**9)
        self._process_arrivals(end + 10**9)
        self.l2.retire(end + 10**9)
        self.l2.flush_writebacks()
        if self.invariants is not None:
            self.invariants.audit(self)

    def _result(self, workload: str, processor_stats: ProcessorStats) -> SimResult:
        ulmt_stats = None
        timing = None
        if self.memproc is not None:
            ulmt_stats = self.memproc.ulmt.stats
            cm = self.memproc.cost_model
            timing = UlmtTimingStats(
                avg_response=cm.avg_response,
                avg_occupancy=cm.avg_occupancy,
                response_busy=cm.avg_response_busy,
                response_mem=cm.avg_response_mem,
                occupancy_busy=cm.avg_occupancy_busy,
                occupancy_mem=cm.avg_occupancy_mem,
                ipc=cm.ipc,
                observations=cm.observations,
            )
        return SimResult(
            workload=workload,
            config_name=self.config.name,
            processor=processor_stats,
            l2=self.l2.stats,
            bus=self.controller.bus.stats,
            ulmt=ulmt_stats,
            ulmt_timing=timing,
            miss_distance_counts=tuple(self._miss_bins),
            demand_misses_to_memory=self.demand_misses_to_memory,
            prefetches_issued_to_memory=self.prefetches_issued,
            faults=self.fault_injector.stats,
            robustness=self._robustness_stats(),
        )

    def _robustness_stats(self) -> RobustnessStats:
        stats = RobustnessStats(
            queue3_overflow_drops=self.prefetch_queue.dropped_overflow,
            queue3_demand_cancels=self.prefetch_queue.cancelled_by_demand,
            invariant_audits=(self.invariants.audits
                              if self.invariants is not None else 0),
        )
        if self.memproc is not None:
            ulmt = self.memproc.ulmt
            stats.filter_passed = ulmt.filter.passed
            stats.filter_dropped = ulmt.filter.dropped
            stats.queue2_overflow_drops = ulmt.obs_queue.dropped_overflow
            stats.queue2_crossmatch_drops = ulmt.obs_queue.dropped_matched
            stats.ulmt_warm_restarts = ulmt.stats.warm_restarts
            stats.degraded_observations = ulmt.stats.learning_steps_shed
            if ulmt.watchdog is not None:
                stats.watchdog_activations = ulmt.watchdog.activations
                stats.watchdog_recoveries = ulmt.watchdog.recoveries
        return stats
