"""System simulation: configuration, wiring, statistics, drivers."""

from repro.sim.config import PRESETS, SystemConfig, custom_config, preset
from repro.sim.driver import (
    arithmetic_mean,
    geometric_mean,
    run_matrix,
    run_simulation,
)
from repro.sim.stats import (
    MISS_DISTANCE_BINS,
    MISS_DISTANCE_LABELS,
    SimResult,
    UlmtTimingStats,
    distance_bin,
)
from repro.sim.system import System

__all__ = [
    "PRESETS",
    "SystemConfig",
    "custom_config",
    "preset",
    "arithmetic_mean",
    "geometric_mean",
    "run_matrix",
    "run_simulation",
    "MISS_DISTANCE_BINS",
    "MISS_DISTANCE_LABELS",
    "SimResult",
    "UlmtTimingStats",
    "distance_bin",
    "System",
]
